//! A sharded cache of decompressed tablet blocks, shared database-wide.
//!
//! LittleTable's read path spends its CPU budget decompressing 64 kB
//! blocks (§3.2): a point query or short scan that revisits a warm tablet
//! pays the block read *and* the decompression again on every access,
//! even though tablets are write-once and a decompressed block can never
//! go stale. This cache keeps recently used decompressed blocks in
//! memory, keyed by `(tablet id, block index)`, and charges each entry by
//! its decompressed byte size against a fixed budget
//! ([`crate::options::Options::block_cache_bytes`]).
//!
//! Design points:
//!
//! * **Sharded.** Keys hash to one of N shards (N rounded up to a power
//!   of two), each with its own small mutex, so concurrent queries on
//!   different tablets rarely contend. The budget is split evenly across
//!   shards, and each shard enforces its slice strictly — the total can
//!   therefore never exceed the configured budget.
//! * **CLOCK eviction.** Each shard keeps its entries in a slab swept by
//!   a clock hand; a hit sets the entry's reference bit, eviction clears
//!   bits until it finds an unreferenced victim. LRU-quality hit rates
//!   without LRU's per-access list surgery.
//! * **Scan-resistant admission.** Only the single-block read path
//!   ([`crate::tablet::TabletReader::read_block`]) consults or fills the
//!   cache. The ~1 MB buffered run reads that merges and bulk rewrites
//!   use (§3.4.1, [`crate::tablet::TabletReader::read_block_run`]) bypass
//!   it entirely, so a full-table merge pass cannot wipe out the hot set
//!   the way it would with admit-everything caching.
//! * **Write-once keys.** Tablet ids are allocated once per
//!   [`crate::tablet::TabletReader`] and never reused, so an entry can
//!   never alias a different tablet's data. When a reader is dropped
//!   (merge, TTL expiry, bulk delete, table drop), its entries are
//!   invalidated.
//!
//! Locks are held only for map and slab bookkeeping — never across disk
//! reads or decompression. Concurrent misses on the same block may both
//! decompress it; the second insert is dropped, which wastes a little CPU
//! once but never blocks a reader behind another reader's I/O.

use crate::block::Block;
use crate::stats::TableStats;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default number of shards when [`crate::options::Options`] leaves the
/// count at zero.
pub const DEFAULT_SHARDS: usize = 8;

/// Cache key: a never-reused tablet id plus the block's index within it.
type BlockKey = (u64, u32);

struct Slot {
    key: BlockKey,
    block: Arc<Block>,
    charge: usize,
    /// Stats of the table that inserted the entry; evictions are charged
    /// back to it.
    owner: Arc<TableStats>,
    /// CLOCK reference bit: set on hit, cleared by the sweeping hand.
    referenced: bool,
}

#[derive(Default)]
struct ShardInner {
    map: HashMap<BlockKey, usize>,
    /// Slab of entries; `None` holes are reusable via `free`.
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    bytes: usize,
    hand: usize,
}

impl ShardInner {
    /// Evicts unreferenced entries (second-chance order) until `need`
    /// more bytes fit under `capacity`. Returns false when impossible.
    fn evict_until_fits(&mut self, need: usize, capacity: usize) -> bool {
        while self.bytes + need > capacity {
            if self.map.is_empty() {
                return false;
            }
            let n = self.slots.len();
            // Bounded sweep: after one full lap every reference bit is
            // clear, so the second lap must find a victim.
            let mut sweep = 0usize;
            loop {
                sweep += 1;
                if sweep > 2 * n + 1 {
                    return false; // defensive; unreachable in practice
                }
                self.hand = (self.hand + 1) % n;
                let Some(slot) = &mut self.slots[self.hand] else {
                    continue;
                };
                if slot.referenced {
                    slot.referenced = false;
                    continue;
                }
                let victim = self.slots[self.hand].take().expect("checked above");
                self.map.remove(&victim.key);
                self.free.push(self.hand);
                self.bytes -= victim.charge;
                TableStats::add(&victim.owner.cache_evicted_bytes, victim.charge as u64);
                break;
            }
        }
        true
    }

    fn remove_key(&mut self, key: &BlockKey) {
        if let Some(idx) = self.map.remove(key) {
            let slot = self.slots[idx].take().expect("map points at live slot");
            self.bytes -= slot.charge;
            self.free.push(idx);
        }
    }
}

struct Shard {
    inner: Mutex<ShardInner>,
    /// Lock-free mirror of `inner.bytes` for observation.
    bytes: AtomicUsize,
}

/// The sharded, scan-resistant decompressed-block cache. One instance is
/// shared by every table of a [`crate::db::Db`].
pub struct BlockCache {
    shards: Box<[Shard]>,
    shard_capacity: usize,
    shard_mask: u64,
    next_tablet_id: AtomicU64,
}

impl BlockCache {
    /// Creates a cache holding at most `total_bytes` of decompressed
    /// blocks across `shards` shards (0 = [`DEFAULT_SHARDS`]; rounded up
    /// to a power of two).
    pub fn new(total_bytes: usize, shards: usize) -> BlockCache {
        let shards = if shards == 0 { DEFAULT_SHARDS } else { shards }
            .next_power_of_two()
            .min(1 << 10);
        let shard_capacity = total_bytes / shards;
        BlockCache {
            shards: (0..shards)
                .map(|_| Shard {
                    inner: Mutex::new(ShardInner::default()),
                    bytes: AtomicUsize::new(0),
                })
                .collect(),
            shard_capacity,
            shard_mask: shards as u64 - 1,
            next_tablet_id: AtomicU64::new(1),
        }
    }

    /// Allocates a fresh tablet id. Ids are never reused, so entries of a
    /// deleted tablet can never be confused with a newer tablet's.
    pub fn register_tablet(&self) -> u64 {
        self.next_tablet_id.fetch_add(1, Ordering::Relaxed)
    }

    fn shard(&self, key: BlockKey) -> &Shard {
        // splitmix64-style finalizer over the packed key.
        let mut h = key.0.rotate_left(32) ^ key.1 as u64;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        &self.shards[((h ^ (h >> 31)) & self.shard_mask) as usize]
    }

    /// Looks up a block, marking it recently used on a hit.
    pub fn get(&self, tablet_id: u64, block_index: u32) -> Option<Arc<Block>> {
        let key = (tablet_id, block_index);
        let shard = self.shard(key);
        let mut inner = shard.inner.lock();
        let idx = *inner.map.get(&key)?;
        let slot = inner.slots[idx].as_mut().expect("map points at live slot");
        slot.referenced = true;
        Some(slot.block.clone())
    }

    /// Admits a decompressed block, charged by its decompressed size,
    /// evicting colder entries to fit. Blocks larger than one shard's
    /// slice of the budget, and keys already present, are left alone.
    pub fn insert(
        &self,
        tablet_id: u64,
        block_index: u32,
        block: Arc<Block>,
        owner: &Arc<TableStats>,
    ) {
        let charge = block.byte_size();
        if charge > self.shard_capacity {
            return;
        }
        let key = (tablet_id, block_index);
        let shard = self.shard(key);
        let mut inner = shard.inner.lock();
        if let Some(&idx) = inner.map.get(&key) {
            // Lost a race with another miss on the same block.
            inner.slots[idx].as_mut().expect("live slot").referenced = true;
            return;
        }
        if !inner.evict_until_fits(charge, self.shard_capacity) {
            return;
        }
        let idx = match inner.free.pop() {
            Some(idx) => idx,
            None => {
                inner.slots.push(None);
                inner.slots.len() - 1
            }
        };
        // New entries start unreferenced: a block read once and never
        // touched again is the first to go, while anything re-read earns
        // its second chance. This is what makes single-pass traffic that
        // does reach the cache (e.g. a one-off wide query) cheap to absorb.
        inner.slots[idx] = Some(Slot {
            key,
            block,
            charge,
            owner: owner.clone(),
            referenced: false,
        });
        inner.map.insert(key, idx);
        inner.bytes += charge;
        shard.bytes.store(inner.bytes, Ordering::Relaxed);
    }

    /// Drops every cached block of `tablet_id` (the tablet's file is
    /// being deleted). Not counted as eviction in the owner's stats.
    pub fn invalidate_tablet(&self, tablet_id: u64) {
        for shard in self.shards.iter() {
            let mut inner = shard.inner.lock();
            let keys: Vec<BlockKey> = inner
                .map
                .keys()
                .filter(|k| k.0 == tablet_id)
                .copied()
                .collect();
            for key in keys {
                inner.remove_key(&key);
            }
            shard.bytes.store(inner.bytes, Ordering::Relaxed);
        }
    }

    /// Current decompressed bytes held, summed over shards. Each shard's
    /// slice is enforced under its lock, so this can never exceed
    /// [`BlockCache::capacity`].
    pub fn bytes_used(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// The total byte budget (shard slice × shard count; at most the
    /// configured budget).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Number of blocks currently cached.
    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().map.len()).sum()
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity())
            .field("bytes_used", &self.bytes_used())
            .field("entries", &self.entry_count())
            .finish()
    }
}

/// A tablet reader's connection to the shared cache: the cache, the
/// reader's never-reused tablet id, and the owning table's stats.
#[derive(Clone)]
pub(crate) struct CacheHandle {
    pub(crate) cache: Arc<BlockCache>,
    pub(crate) tablet_id: u64,
    pub(crate) stats: Arc<TableStats>,
}

impl CacheHandle {
    /// Builds a handle with a freshly allocated tablet id.
    pub(crate) fn register(cache: Arc<BlockCache>, stats: Arc<TableStats>) -> CacheHandle {
        let tablet_id = cache.register_tablet();
        CacheHandle {
            cache,
            tablet_id,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;

    fn block_of_size(approx: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new();
        let payload = vec![0u8; approx.saturating_sub(32)];
        b.add(b"key", &payload);
        Arc::new(Block::parse(b.finish()).unwrap())
    }

    fn stats() -> Arc<TableStats> {
        Arc::new(TableStats::default())
    }

    #[test]
    fn hit_returns_same_block() {
        let cache = BlockCache::new(1 << 20, 1);
        let st = stats();
        let tid = cache.register_tablet();
        assert!(cache.get(tid, 0).is_none());
        let b = block_of_size(1000);
        cache.insert(tid, 0, b.clone(), &st);
        let hit = cache.get(tid, 0).expect("cached");
        assert!(Arc::ptr_eq(&b, &hit));
        assert_eq!(cache.entry_count(), 1);
        assert_eq!(cache.bytes_used(), b.byte_size());
    }

    #[test]
    fn eviction_respects_budget_and_charges_owner() {
        let cache = BlockCache::new(10_000, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..64u32 {
            cache.insert(tid, i, block_of_size(1000), &st);
            assert!(cache.bytes_used() <= cache.capacity());
        }
        assert!(cache.entry_count() < 64);
        assert!(st.snapshot().cache_evicted_bytes > 0);
    }

    #[test]
    fn clock_keeps_recently_used_entries() {
        // Capacity for ~4 one-KB blocks in one shard.
        let cache = BlockCache::new(4200, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..4u32 {
            cache.insert(tid, i, block_of_size(1000), &st);
        }
        // Keep block 0 hot while streaming new blocks through.
        for i in 4..40u32 {
            assert!(cache.get(tid, 0).is_some(), "hot block evicted at {i}");
            cache.insert(tid, i, block_of_size(1000), &st);
        }
        assert!(cache.get(tid, 0).is_some());
    }

    #[test]
    fn oversize_blocks_are_not_admitted() {
        let cache = BlockCache::new(4096, 4); // 1 kB per shard
        let st = stats();
        let tid = cache.register_tablet();
        cache.insert(tid, 0, block_of_size(100_000), &st);
        assert_eq!(cache.entry_count(), 0);
    }

    #[test]
    fn invalidate_tablet_removes_only_that_tablet() {
        let cache = BlockCache::new(1 << 20, 2);
        let st = stats();
        let (a, b) = (cache.register_tablet(), cache.register_tablet());
        for i in 0..8u32 {
            cache.insert(a, i, block_of_size(500), &st);
            cache.insert(b, i, block_of_size(500), &st);
        }
        cache.invalidate_tablet(a);
        for i in 0..8u32 {
            assert!(cache.get(a, i).is_none());
            assert!(cache.get(b, i).is_some());
        }
        // Invalidation is not an eviction.
        assert_eq!(st.snapshot().cache_evicted_bytes, 0);
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let cache = BlockCache::new(0, 0);
        let st = stats();
        let tid = cache.register_tablet();
        cache.insert(tid, 0, block_of_size(100), &st);
        assert_eq!(cache.entry_count(), 0);
        assert!(cache.get(tid, 0).is_none());
    }

    #[test]
    fn concurrent_inserts_never_exceed_budget() {
        let cache = Arc::new(BlockCache::new(64 << 10, 4));
        let st = stats();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = cache.clone();
            let st = st.clone();
            handles.push(std::thread::spawn(move || {
                let tid = cache.register_tablet();
                for i in 0..200u32 {
                    cache.insert(tid, i, block_of_size(1000), &st);
                    let _ = cache.get(tid, i.wrapping_sub(t as u32));
                    assert!(cache.bytes_used() <= cache.capacity());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.bytes_used() <= cache.capacity());
    }
}
