//! A sharded, two-tier cache of tablet blocks and footers, shared
//! database-wide.
//!
//! LittleTable's read path spends its CPU budget decompressing 64 kB
//! blocks (§3.2): a point query or short scan that revisits a warm tablet
//! pays the block read *and* the decompression again on every access,
//! even though tablets are write-once and a decompressed block can never
//! go stale. This cache keeps recently used blocks in memory, keyed by
//! `(tablet id, block index)`, under one joint byte budget
//! ([`crate::options::Options::block_cache_bytes`]) split across two
//! tiers:
//!
//! * The **upper (decompressed) tier** holds parsed [`Block`]s ready to
//!   serve reads, plus cached [`TabletFooter`]s under their own charge
//!   class — folding the paper's "footers cached almost indefinitely"
//!   into a bounded budget instead of pinning one footer per reader
//!   forever.
//! * The **lower (compressed) tier** holds the *compressed* bytes of
//!   blocks evicted from the upper tier. A re-read of a demoted block
//!   costs one decompress (~tens of µs) instead of a disk seek (~10 ms
//!   on the paper's drive), the read-amplification-vs-memory tradeoff of
//!   the LSM literature. The two tiers are *exclusive*: promotion moves
//!   an entry up, eviction demotes it down, so no block is charged twice.
//!
//! Design points:
//!
//! * **Sharded.** Keys hash to one of N shards (N rounded up to a power
//!   of two, then down while a shard's budget slice would fall below
//!   [`MIN_SHARD_SLICE`]), each with its own small mutex, so concurrent
//!   queries on different tablets rarely contend. Each tier's budget is
//!   split evenly across shards and each shard enforces its slice
//!   strictly — the total can therefore never exceed the joint budget.
//! * **CLOCK eviction.** Each shard keeps its entries in a slab swept by
//!   a clock hand; a hit sets the entry's reference bit, eviction clears
//!   bits until it finds an unreferenced victim. LRU-quality hit rates
//!   without LRU's per-access list surgery.
//! * **Scan-resistant admission.** Only the single-block read path
//!   ([`crate::tablet::TabletReader::read_block`]) consults or fills the
//!   cache. The ~1 MB buffered run reads that merges and bulk rewrites
//!   use (§3.4.1, [`crate::tablet::TabletReader::read_block_run`]) bypass
//!   it entirely, so a full-table merge pass cannot wipe out the hot set
//!   the way it would with admit-everything caching.
//! * **Write-once keys.** Tablet ids are allocated once per
//!   [`crate::tablet::TabletReader`] and never reused, so an entry can
//!   never alias a different tablet's data. When a reader is dropped
//!   (merge, TTL expiry, bulk delete, table drop), its entries — both
//!   tiers and the footer — are invalidated.
//!
//! Locks are held only for map and slab bookkeeping — never across disk
//! reads or decompression, and never one shard inside another (demotions
//! gather their victims under the upper-tier lock, then insert them into
//! the lower tier after releasing it). Concurrent misses on the same
//! block may both decompress it; the second insert is dropped, which
//! wastes a little CPU once but never blocks a reader behind another
//! reader's I/O.

use crate::block::Block;
use crate::stats::TableStats;
use crate::tablet::TabletFooter;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default number of shards when [`crate::options::Options`] leaves the
/// count at zero.
pub const DEFAULT_SHARDS: usize = 8;

/// Minimum useful per-shard slice of a tier's budget. The shard count
/// shrinks (halving, staying a power of two) until every configured
/// tier's slice reaches this floor, so a small budget becomes a
/// single-shard cache instead of silently rounding to zero capacity.
pub const MIN_SHARD_SLICE: usize = 16 << 10;

/// Cache key: a never-reused tablet id plus the block's index within it.
type BlockKey = (u64, u32);

/// Pseudo block index under which a tablet's footer is cached. Real
/// block indexes can never reach it: a tablet would need > 256 TB of
/// 64 kB blocks, three orders of magnitude past `max_tablet_size`.
const FOOTER_SLOT: u32 = u32::MAX;

/// The compressed on-disk form of a block, retained so an eviction from
/// the decompressed tier can be demoted instead of discarded.
#[derive(Clone)]
pub struct CompressedBlock {
    /// The block's compressed bytes, exactly as stored on disk.
    pub bytes: Arc<[u8]>,
    /// Decompressed size, needed to decompress on promotion.
    pub uncompressed_len: u32,
}

/// Value held by an upper-tier slot: a hot decompressed block (with its
/// compressed form kept for demotion) or a tablet footer.
enum UpperValue {
    Block {
        block: Arc<Block>,
        compressed: Option<CompressedBlock>,
    },
    Footer(Arc<TabletFooter>),
}

struct Slot<V> {
    key: BlockKey,
    value: V,
    charge: usize,
    /// Stats of the table that inserted the entry; evictions are charged
    /// back to it.
    owner: Arc<TableStats>,
    /// CLOCK reference bit: set on hit, cleared by the sweeping hand.
    referenced: bool,
}

struct TierInner<V> {
    map: HashMap<BlockKey, usize>,
    /// Slab of entries; `None` holes are reusable via `free`.
    slots: Vec<Option<Slot<V>>>,
    free: Vec<usize>,
    bytes: usize,
    hand: usize,
}

impl<V> Default for TierInner<V> {
    fn default() -> Self {
        TierInner {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            bytes: 0,
            hand: 0,
        }
    }
}

impl<V> TierInner<V> {
    /// Evicts unreferenced entries (second-chance order) until `need`
    /// more bytes fit under `capacity`, pushing victims onto `victims`
    /// for the caller to account (and possibly demote) outside the shard
    /// lock. Returns false when impossible.
    fn evict_until_fits(
        &mut self,
        need: usize,
        capacity: usize,
        victims: &mut Vec<Slot<V>>,
    ) -> bool {
        while self.bytes + need > capacity {
            if self.map.is_empty() {
                return false;
            }
            let n = self.slots.len();
            // Bounded sweep: after one full lap every reference bit is
            // clear, so the second lap must find a victim.
            let mut sweep = 0usize;
            loop {
                sweep += 1;
                if sweep > 2 * n + 1 {
                    return false; // defensive; unreachable in practice
                }
                self.hand = (self.hand + 1) % n;
                let Some(slot) = &mut self.slots[self.hand] else {
                    continue;
                };
                if slot.referenced {
                    slot.referenced = false;
                    continue;
                }
                let victim = self.slots[self.hand].take().expect("checked above");
                self.map.remove(&victim.key);
                self.free.push(self.hand);
                self.bytes -= victim.charge;
                victims.push(victim);
                break;
            }
        }
        true
    }

    /// Places a slot the caller has already made room for.
    fn insert_slot(&mut self, slot: Slot<V>) {
        let key = slot.key;
        let charge = slot.charge;
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[idx] = Some(slot);
        self.map.insert(key, idx);
        self.bytes += charge;
    }

    fn remove_key(&mut self, key: &BlockKey) -> Option<Slot<V>> {
        let idx = self.map.remove(key)?;
        let slot = self.slots[idx].take().expect("map points at live slot");
        self.bytes -= slot.charge;
        self.free.push(idx);
        Some(slot)
    }
}

struct Shard<V> {
    inner: Mutex<TierInner<V>>,
    /// Lock-free mirror of `inner.bytes` for observation.
    bytes: AtomicUsize,
}

fn make_shards<V>(n: usize) -> Box<[Shard<V>]> {
    (0..n)
        .map(|_| Shard {
            inner: Mutex::new(TierInner::default()),
            bytes: AtomicUsize::new(0),
        })
        .collect()
}

/// The sharded, scan-resistant, two-tier block-and-footer cache. One
/// instance is shared by every table of a [`crate::db::Db`].
pub struct BlockCache {
    /// Decompressed blocks and tablet footers.
    upper: Box<[Shard<UpperValue>]>,
    /// Compressed bytes of blocks demoted from the upper tier.
    lower: Box<[Shard<CompressedBlock>]>,
    upper_shard_capacity: usize,
    lower_shard_capacity: usize,
    shard_mask: u64,
    next_tablet_id: AtomicU64,
}

impl BlockCache {
    /// Creates a cache whose upper (decompressed + footer) tier holds at
    /// most `decompressed_bytes` and whose lower (compressed) tier holds
    /// at most `compressed_bytes`, across `shards` shards each
    /// (0 = [`DEFAULT_SHARDS`]; rounded up to a power of two, then down
    /// while any configured tier's slice would fall under
    /// [`MIN_SHARD_SLICE`]).
    pub fn new(decompressed_bytes: usize, compressed_bytes: usize, shards: usize) -> BlockCache {
        let mut shards = if shards == 0 { DEFAULT_SHARDS } else { shards }
            .next_power_of_two()
            .min(1 << 10);
        // Shrink the shard count until the smallest configured tier still
        // gets a useful slice per shard; a budget below the shard count
        // must become a small cache, not a capacity-zero one.
        let floor = [decompressed_bytes, compressed_bytes]
            .into_iter()
            .filter(|&b| b > 0)
            .min()
            .unwrap_or(0);
        while shards > 1 && floor / shards < MIN_SHARD_SLICE {
            shards /= 2;
        }
        BlockCache {
            upper: make_shards(shards),
            lower: make_shards(shards),
            upper_shard_capacity: decompressed_bytes / shards,
            lower_shard_capacity: compressed_bytes / shards,
            shard_mask: shards as u64 - 1,
            next_tablet_id: AtomicU64::new(1),
        }
    }

    /// Allocates a fresh tablet id. Ids are never reused, so entries of a
    /// deleted tablet can never be confused with a newer tablet's.
    pub fn register_tablet(&self) -> u64 {
        self.next_tablet_id.fetch_add(1, Ordering::Relaxed)
    }

    fn shard_idx(&self, key: BlockKey) -> usize {
        // splitmix64-style finalizer over the packed key.
        let mut h = key.0.rotate_left(32) ^ key.1 as u64;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((h ^ (h >> 31)) & self.shard_mask) as usize
    }

    /// Looks up a decompressed block, marking it recently used on a hit.
    pub fn get(&self, tablet_id: u64, block_index: u32) -> Option<Arc<Block>> {
        let key = (tablet_id, block_index);
        let shard = &self.upper[self.shard_idx(key)];
        let mut inner = shard.inner.lock();
        let idx = *inner.map.get(&key)?;
        let slot = inner.slots[idx].as_mut().expect("map points at live slot");
        match &slot.value {
            UpperValue::Block { block, .. } => {
                let block = block.clone();
                slot.referenced = true;
                Some(block)
            }
            UpperValue::Footer(_) => None,
        }
    }

    /// Removes and returns a block's compressed bytes from the lower
    /// tier. The caller decompresses and re-admits the block to the
    /// upper tier (which carries the compressed form along), keeping the
    /// tiers exclusive.
    pub fn take_compressed(&self, tablet_id: u64, block_index: u32) -> Option<CompressedBlock> {
        let key = (tablet_id, block_index);
        let shard = &self.lower[self.shard_idx(key)];
        let mut inner = shard.inner.lock();
        let slot = inner.remove_key(&key)?;
        shard.bytes.store(inner.bytes, Ordering::Relaxed);
        Some(slot.value)
    }

    /// Admits a decompressed block, charged by its decompressed size plus
    /// the retained compressed bytes, evicting colder entries to fit.
    /// Evicted blocks demote their compressed form to the lower tier;
    /// evicted footers count against their owner's `footer_evictions`.
    /// Blocks too large for one shard's slice (and keys already present)
    /// skip the upper tier; their compressed bytes go straight down.
    pub fn insert(
        &self,
        tablet_id: u64,
        block_index: u32,
        block: Arc<Block>,
        compressed: Option<CompressedBlock>,
        owner: &Arc<TableStats>,
    ) {
        let key = (tablet_id, block_index);
        let charge = block.byte_size() + compressed.as_ref().map_or(0, |c| c.bytes.len());
        if charge > self.upper_shard_capacity {
            if let Some(c) = compressed {
                self.insert_compressed(key, c, owner);
            }
            return;
        }
        let shard = &self.upper[self.shard_idx(key)];
        let mut victims = Vec::new();
        let mut rejected = None;
        {
            let mut inner = shard.inner.lock();
            if let Some(&idx) = inner.map.get(&key) {
                // Lost a race with another miss on the same block.
                inner.slots[idx].as_mut().expect("live slot").referenced = true;
            } else if inner.evict_until_fits(charge, self.upper_shard_capacity, &mut victims) {
                // New entries start unreferenced: a block read once and
                // never touched again is the first to go, while anything
                // re-read earns its second chance. This is what makes
                // single-pass traffic that does reach the cache (e.g. a
                // one-off wide query) cheap to absorb.
                inner.insert_slot(Slot {
                    key,
                    value: UpperValue::Block { block, compressed },
                    charge,
                    owner: owner.clone(),
                    referenced: false,
                });
            } else {
                rejected = compressed;
            }
            shard.bytes.store(inner.bytes, Ordering::Relaxed);
        }
        if let Some(c) = rejected {
            self.insert_compressed(key, c, owner);
        }
        self.settle_upper_victims(victims);
    }

    /// Admits a tablet footer under its own charge class, evicting colder
    /// entries (blocks or other footers) to fit. A footer too large for
    /// one shard's slice is not admitted and will reload from disk on
    /// each use — bounded memory wins over pinning at pathological sizes.
    pub fn insert_footer(
        &self,
        tablet_id: u64,
        footer: Arc<TabletFooter>,
        owner: &Arc<TableStats>,
    ) {
        let key = (tablet_id, FOOTER_SLOT);
        let charge = footer.approx_byte_size();
        if charge > self.upper_shard_capacity {
            return;
        }
        let shard = &self.upper[self.shard_idx(key)];
        let mut victims = Vec::new();
        {
            let mut inner = shard.inner.lock();
            if let Some(&idx) = inner.map.get(&key) {
                inner.slots[idx].as_mut().expect("live slot").referenced = true;
            } else if inner.evict_until_fits(charge, self.upper_shard_capacity, &mut victims) {
                inner.insert_slot(Slot {
                    key,
                    value: UpperValue::Footer(footer),
                    charge,
                    owner: owner.clone(),
                    referenced: false,
                });
            }
            shard.bytes.store(inner.bytes, Ordering::Relaxed);
        }
        self.settle_upper_victims(victims);
    }

    /// Looks up a cached footer, marking it recently used on a hit.
    pub fn get_footer(&self, tablet_id: u64) -> Option<Arc<TabletFooter>> {
        let key = (tablet_id, FOOTER_SLOT);
        let shard = &self.upper[self.shard_idx(key)];
        let mut inner = shard.inner.lock();
        let idx = *inner.map.get(&key)?;
        let slot = inner.slots[idx].as_mut().expect("map points at live slot");
        match &slot.value {
            UpperValue::Footer(f) => {
                let f = f.clone();
                slot.referenced = true;
                Some(f)
            }
            UpperValue::Block { .. } => None,
        }
    }

    /// True when `tablet_id`'s footer is currently resident, without
    /// touching its reference bit (observation only).
    pub fn footer_resident(&self, tablet_id: u64) -> bool {
        let key = (tablet_id, FOOTER_SLOT);
        let shard = &self.upper[self.shard_idx(key)];
        shard.inner.lock().map.contains_key(&key)
    }

    /// Charges upper-tier evictions to their owners and demotes evicted
    /// blocks' compressed bytes into the lower tier. Called after the
    /// upper shard lock is released, so tier locks never nest.
    fn settle_upper_victims(&self, victims: Vec<Slot<UpperValue>>) {
        for victim in victims {
            match victim.value {
                UpperValue::Block { block, compressed } => {
                    TableStats::add(&victim.owner.cache_evicted_bytes, block.byte_size() as u64);
                    drop(block);
                    if let Some(c) = compressed {
                        self.insert_compressed(victim.key, c, &victim.owner);
                    }
                }
                UpperValue::Footer(_) => {
                    TableStats::add(&victim.owner.footer_evictions, 1);
                }
            }
        }
    }

    /// Admits compressed block bytes to the lower tier, evicting colder
    /// compressed entries to fit. Lower-tier evictions leave the cache
    /// for good.
    fn insert_compressed(&self, key: BlockKey, value: CompressedBlock, owner: &Arc<TableStats>) {
        let charge = value.bytes.len();
        if charge > self.lower_shard_capacity {
            return;
        }
        let shard = &self.lower[self.shard_idx(key)];
        let mut inner = shard.inner.lock();
        if let Some(&idx) = inner.map.get(&key) {
            inner.slots[idx].as_mut().expect("live slot").referenced = true;
            return;
        }
        let mut dropped = Vec::new();
        if inner.evict_until_fits(charge, self.lower_shard_capacity, &mut dropped) {
            inner.insert_slot(Slot {
                key,
                value,
                charge,
                owner: owner.clone(),
                referenced: false,
            });
        }
        shard.bytes.store(inner.bytes, Ordering::Relaxed);
    }

    /// Drops every cached entry of `tablet_id` — decompressed blocks,
    /// compressed blocks, and its footer (the tablet's file is being
    /// deleted). Not counted as eviction in the owner's stats.
    pub fn invalidate_tablet(&self, tablet_id: u64) {
        for shard in self.upper.iter() {
            let mut inner = shard.inner.lock();
            let keys: Vec<BlockKey> = inner
                .map
                .keys()
                .filter(|k| k.0 == tablet_id)
                .copied()
                .collect();
            for key in keys {
                inner.remove_key(&key);
            }
            shard.bytes.store(inner.bytes, Ordering::Relaxed);
        }
        for shard in self.lower.iter() {
            let mut inner = shard.inner.lock();
            let keys: Vec<BlockKey> = inner
                .map
                .keys()
                .filter(|k| k.0 == tablet_id)
                .copied()
                .collect();
            for key in keys {
                inner.remove_key(&key);
            }
            shard.bytes.store(inner.bytes, Ordering::Relaxed);
        }
    }

    /// Current bytes held across both tiers (decompressed blocks with
    /// their retained compressed forms, footers, and demoted compressed
    /// blocks). Each shard's slice is enforced under its lock, so this
    /// can never exceed [`BlockCache::capacity`].
    pub fn bytes_used(&self) -> usize {
        self.decompressed_bytes_used() + self.compressed_bytes_used()
    }

    /// Current upper-tier bytes (decompressed blocks + footers).
    pub fn decompressed_bytes_used(&self) -> usize {
        self.upper
            .iter()
            .map(|s| s.bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Current lower-tier bytes (demoted compressed blocks).
    pub fn compressed_bytes_used(&self) -> usize {
        self.lower
            .iter()
            .map(|s| s.bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// The total byte budget across both tiers. Per-tier budgets divide
    /// evenly across shards, rounding *down* — so this is at most (never
    /// more than) the configured joint budget, and small budgets shrink
    /// the shard count (see [`MIN_SHARD_SLICE`]) rather than rounding a
    /// shard's slice to zero.
    pub fn capacity(&self) -> usize {
        self.decompressed_capacity() + self.compressed_capacity()
    }

    /// The upper (decompressed + footer) tier's byte budget.
    pub fn decompressed_capacity(&self) -> usize {
        self.upper_shard_capacity * self.upper.len()
    }

    /// The lower (compressed) tier's byte budget.
    pub fn compressed_capacity(&self) -> usize {
        self.lower_shard_capacity * self.lower.len()
    }

    /// Number of upper-tier entries currently cached (blocks + footers).
    pub fn entry_count(&self) -> usize {
        self.upper.iter().map(|s| s.inner.lock().map.len()).sum()
    }

    /// Number of lower-tier (compressed block) entries currently cached.
    pub fn compressed_entry_count(&self) -> usize {
        self.lower.iter().map(|s| s.inner.lock().map.len()).sum()
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.upper.len())
            .field("capacity", &self.capacity())
            .field("decompressed_capacity", &self.decompressed_capacity())
            .field("compressed_capacity", &self.compressed_capacity())
            .field("bytes_used", &self.bytes_used())
            .field("entries", &self.entry_count())
            .field("compressed_entries", &self.compressed_entry_count())
            .finish()
    }
}

/// A tablet reader's connection to the shared cache: the cache, the
/// reader's never-reused tablet id, and the owning table's stats.
#[derive(Clone)]
pub(crate) struct CacheHandle {
    pub(crate) cache: Arc<BlockCache>,
    pub(crate) tablet_id: u64,
    pub(crate) stats: Arc<TableStats>,
}

impl CacheHandle {
    /// Builds a handle with a freshly allocated tablet id.
    pub(crate) fn register(cache: Arc<BlockCache>, stats: Arc<TableStats>) -> CacheHandle {
        let tablet_id = cache.register_tablet();
        CacheHandle {
            cache,
            tablet_id,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;

    fn block_of_size(approx: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new();
        let payload = vec![0u8; approx.saturating_sub(32)];
        b.add(b"key", &payload);
        Arc::new(Block::parse(b.finish()).unwrap())
    }

    /// A stand-in compressed form, `approx` bytes long.
    fn compressed_of_size(approx: usize) -> CompressedBlock {
        CompressedBlock {
            bytes: vec![0u8; approx].into(),
            uncompressed_len: (approx * 3) as u32,
        }
    }

    fn stats() -> Arc<TableStats> {
        Arc::new(TableStats::default())
    }

    #[test]
    fn hit_returns_same_block() {
        let cache = BlockCache::new(1 << 20, 0, 1);
        let st = stats();
        let tid = cache.register_tablet();
        assert!(cache.get(tid, 0).is_none());
        let b = block_of_size(1000);
        cache.insert(tid, 0, b.clone(), None, &st);
        let hit = cache.get(tid, 0).expect("cached");
        assert!(Arc::ptr_eq(&b, &hit));
        assert_eq!(cache.entry_count(), 1);
        assert_eq!(cache.bytes_used(), b.byte_size());
    }

    #[test]
    fn eviction_respects_budget_and_charges_owner() {
        let cache = BlockCache::new(10_000, 0, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..64u32 {
            cache.insert(tid, i, block_of_size(1000), None, &st);
            assert!(cache.bytes_used() <= cache.capacity());
        }
        assert!(cache.entry_count() < 64);
        assert!(st.snapshot().cache_evicted_bytes > 0);
    }

    #[test]
    fn clock_keeps_recently_used_entries() {
        // Capacity for ~4 one-KB blocks in one shard.
        let cache = BlockCache::new(4200, 0, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..4u32 {
            cache.insert(tid, i, block_of_size(1000), None, &st);
        }
        // Keep block 0 hot while streaming new blocks through.
        for i in 4..40u32 {
            assert!(cache.get(tid, 0).is_some(), "hot block evicted at {i}");
            cache.insert(tid, i, block_of_size(1000), None, &st);
        }
        assert!(cache.get(tid, 0).is_some());
    }

    #[test]
    fn oversize_blocks_are_not_admitted() {
        let cache = BlockCache::new(4096, 0, 4); // shard clamp: one 4 kB shard
        let st = stats();
        let tid = cache.register_tablet();
        cache.insert(tid, 0, block_of_size(100_000), None, &st);
        assert_eq!(cache.entry_count(), 0);
    }

    #[test]
    fn small_budgets_still_cache() {
        // A budget below the requested shard count must clamp to fewer
        // shards with real capacity, not floor every shard to zero.
        let cache = BlockCache::new(4096, 0, 64);
        assert_eq!(cache.capacity(), 4096);
        let st = stats();
        let tid = cache.register_tablet();
        cache.insert(tid, 0, block_of_size(1000), None, &st);
        assert!(cache.get(tid, 0).is_some(), "small budget must still cache");
    }

    #[test]
    fn evicted_blocks_demote_to_compressed_tier() {
        // Upper fits ~2 entries (1000 decompressed + 200 compressed each);
        // lower fits all the compressed forms.
        let cache = BlockCache::new(2500, 4096, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..8u32 {
            cache.insert(
                tid,
                i,
                block_of_size(1000),
                Some(compressed_of_size(200)),
                &st,
            );
        }
        assert!(cache.entry_count() <= 2);
        assert!(
            cache.compressed_entry_count() > 0,
            "evictions must demote compressed bytes"
        );
        assert!(cache.bytes_used() <= cache.capacity());
        // Promote one demoted block: its compressed bytes leave the lower
        // tier (exclusive tiers) and the caller re-admits up top.
        let demoted = (0..8u32)
            .find(|&i| cache.get(tid, i).is_none())
            .expect("something was evicted");
        let before = cache.compressed_entry_count();
        let c = cache.take_compressed(tid, demoted).expect("demoted entry");
        assert_eq!(cache.compressed_entry_count(), before - 1);
        cache.insert(tid, demoted, block_of_size(1000), Some(c), &st);
        assert!(cache.get(tid, demoted).is_some());
        assert!(cache.bytes_used() <= cache.capacity());
    }

    #[test]
    fn zero_compressed_budget_discards_evictions() {
        let cache = BlockCache::new(2500, 0, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..8u32 {
            cache.insert(
                tid,
                i,
                block_of_size(1000),
                Some(compressed_of_size(200)),
                &st,
            );
        }
        assert_eq!(cache.compressed_entry_count(), 0);
        assert_eq!(cache.compressed_bytes_used(), 0);
    }

    #[test]
    fn footers_cache_evict_and_count() {
        let schema = crate::schema::Schema::new(
            vec![
                crate::schema::ColumnDef::new("k", crate::value::ColumnType::I64),
                crate::schema::ColumnDef::new("ts", crate::value::ColumnType::Timestamp),
            ],
            &["k", "ts"],
        )
        .unwrap();
        let footer = |nblocks: usize| {
            Arc::new(TabletFooter {
                schema: schema.clone(),
                min_ts: 0,
                max_ts: 1,
                row_count: 10,
                bloom: None,
                format: crate::block::BlockFormat::Row,
                blocks: (0..nblocks)
                    .map(|i| crate::tablet::BlockIndexEntry {
                        offset: i as u64 * 100,
                        compressed_len: 100,
                        uncompressed_len: 300,
                        crc: None,
                        rows: 0,
                        zones: Vec::new(),
                        last_key: vec![0u8; 16],
                    })
                    .collect(),
            })
        };
        let cache = BlockCache::new(4096, 0, 1);
        let st = stats();
        let a = cache.register_tablet();
        cache.insert_footer(a, footer(4), &st);
        assert!(cache.footer_resident(a));
        assert!(cache.get_footer(a).is_some());
        assert!(cache.bytes_used() >= footer(4).approx_byte_size());
        // Flood with more footers than fit; someone gets evicted and the
        // owner is charged a footer eviction (a future 3-seek reload).
        let mut ids = vec![a];
        for _ in 0..40 {
            let t = cache.register_tablet();
            cache.insert_footer(t, footer(4), &st);
            ids.push(t);
        }
        assert!(cache.bytes_used() <= cache.capacity());
        assert!(st.snapshot().footer_evictions > 0);
        assert!(ids.iter().any(|&t| !cache.footer_resident(t)));
    }

    #[test]
    fn invalidate_tablet_removes_only_that_tablet() {
        let cache = BlockCache::new(1 << 20, 1 << 20, 2);
        let st = stats();
        let (a, b) = (cache.register_tablet(), cache.register_tablet());
        for i in 0..8u32 {
            cache.insert(a, i, block_of_size(500), Some(compressed_of_size(100)), &st);
            cache.insert(b, i, block_of_size(500), Some(compressed_of_size(100)), &st);
        }
        cache.insert_compressed((a, 100), compressed_of_size(100), &st);
        cache.insert_compressed((b, 100), compressed_of_size(100), &st);
        cache.invalidate_tablet(a);
        for i in 0..8u32 {
            assert!(cache.get(a, i).is_none());
            assert!(cache.get(b, i).is_some());
        }
        assert!(cache.take_compressed(a, 100).is_none());
        assert!(cache.take_compressed(b, 100).is_some());
        // Invalidation is not an eviction.
        assert_eq!(st.snapshot().cache_evicted_bytes, 0);
        assert_eq!(st.snapshot().footer_evictions, 0);
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let cache = BlockCache::new(0, 0, 0);
        let st = stats();
        let tid = cache.register_tablet();
        cache.insert(
            tid,
            0,
            block_of_size(100),
            Some(compressed_of_size(50)),
            &st,
        );
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.compressed_entry_count(), 0);
        assert!(cache.get(tid, 0).is_none());
    }

    #[test]
    fn concurrent_inserts_never_exceed_budget() {
        let cache = Arc::new(BlockCache::new(64 << 10, 16 << 10, 4));
        let st = stats();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = cache.clone();
            let st = st.clone();
            handles.push(std::thread::spawn(move || {
                let tid = cache.register_tablet();
                for i in 0..200u32 {
                    cache.insert(
                        tid,
                        i,
                        block_of_size(1000),
                        Some(compressed_of_size(250)),
                        &st,
                    );
                    let _ = cache.get(tid, i.wrapping_sub(t as u32));
                    assert!(cache.bytes_used() <= cache.capacity());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.bytes_used() <= cache.capacity());
    }
}
