//! The database: a collection of tables under one VFS root, plus optional
//! background maintenance.
//!
//! LittleTable runs as an independent server process (§3.1); this type is
//! the embeddable engine behind it. Opening a database scans the root for
//! table directories, loads each descriptor, and deletes any tablet files
//! a crash left uncommitted.
//!
//! The table catalog is published the same way each table publishes its
//! tablet set: an immutable [`CatalogSnapshot`] behind a
//! [`SnapshotCell`]. `Db::table()` and `list_tables()` — the calls §2.2
//! assumes are free enough that clients create and query hundreds of
//! tables — are a single atomic snapshot load with no lock, so server
//! worker shards and maintenance sweeps can resolve tables concurrently
//! without queueing on anything. `create_table`/`drop_table` serialize
//! on a small writer mutex and publish copy-on-write snapshots; a
//! dropped table's `Arc<Table>` stays fully usable by in-flight readers
//! while every *new* snapshot excludes it.

use crate::cache::BlockCache;
use crate::error::{Error, Result};
use crate::options::Options;
use crate::resultcache::ResultCache;
use crate::rollup::{self, RollupSpec};
use crate::schema::Schema;
use crate::stats::{DbStats, DbStatsSnapshot, TableStats};
use crate::sync::SnapshotCell;
use crate::table::{MaintenanceReport, Table};
use littletable_vfs::{Clock, Micros, StdVfs, SystemClock, Vfs};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Returns the parent (database root) of a table directory.
pub(crate) fn root_of(dir: &str) -> &str {
    littletable_vfs::parent(dir)
}

fn valid_table_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
        && !name.starts_with('.')
}

/// One immutable, atomically published view of the table catalog.
/// Readers resolve names against whichever snapshot they loaded; writers
/// build a new snapshot copy-on-write and publish it whole. Names are
/// interned as `Arc<str>` so the copy-on-write clone a DDL writer pays
/// is O(n) refcount bumps, not O(n) string allocations.
struct CatalogSnapshot {
    tables: HashMap<Arc<str>, Arc<Table>>,
    /// Precomputed so `list_tables` is one pass over a sorted list
    /// instead of a collect-and-sort per call.
    sorted_names: Vec<Arc<str>>,
}

impl CatalogSnapshot {
    fn new(tables: HashMap<Arc<str>, Arc<Table>>) -> CatalogSnapshot {
        let mut sorted_names: Vec<Arc<str>> = tables.keys().cloned().collect();
        sorted_names.sort();
        CatalogSnapshot {
            tables,
            sorted_names,
        }
    }
}

struct DbInner {
    vfs: Arc<dyn Vfs>,
    cold_vfs: Option<Arc<dyn Vfs>>,
    clock: Arc<dyn Clock>,
    opts: Arc<Options>,
    /// One two-tier block-and-footer cache shared by every table: hot
    /// decompressed blocks and tablet footers in the upper tier,
    /// compressed bytes of demoted blocks in the lower, all under the
    /// joint `Options::block_cache_bytes` budget. `None` when that
    /// budget is 0 (uncached reads, unbounded per-reader footers — the
    /// paper's behavior).
    cache: Option<Arc<BlockCache>>,
    /// The current catalog. Loads are lock-free; stores are serialized
    /// by `catalog_lock`.
    catalog: SnapshotCell<CatalogSnapshot>,
    /// Serializes catalog writers (`create_table`/`drop_table`) — held
    /// across a drop's file deletion too, so recreating the same name
    /// cannot interleave with the old directory's teardown.
    catalog_lock: Mutex<()>,
    stats: DbStats,
    /// Registered rollup definitions (each also durably recorded as a
    /// `ROLLUP` file inside its rollup table's directory). Read by the
    /// maintenance fold pass and the SQL planner; written only by
    /// `create_rollup` / `drop_rollup` / `drop_table`.
    rollups: RwLock<Vec<Arc<RollupSpec>>>,
    /// The query-result cache; `None` when its budget carve-out is 0.
    result_cache: Option<Arc<ResultCache>>,
    shutdown: Arc<AtomicBool>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// A LittleTable database handle. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Db {
    inner: Arc<DbInner>,
}

impl Db {
    /// Opens (or initializes) a database over `vfs`, recovering every
    /// table found under the root.
    pub fn open(vfs: Arc<dyn Vfs>, clock: Arc<dyn Clock>, opts: Options) -> Result<Db> {
        Db::open_with_cold(vfs, None, clock, opts)
    }

    /// As [`Db::open`], with an additional write-once cold store for old
    /// tablets (§6; see [`Table::migrate_to_cold`]).
    pub fn open_with_cold(
        vfs: Arc<dyn Vfs>,
        cold_vfs: Option<Arc<dyn Vfs>>,
        clock: Arc<dyn Clock>,
        opts: Options,
    ) -> Result<Db> {
        let opts = Arc::new(opts);
        let (decompressed, compressed) = opts.cache_tier_budgets();
        let block_budget = decompressed + compressed;
        let cache = (block_budget > 0).then(|| {
            Arc::new(if opts.adaptive_cache_split {
                // The configured split is only the starting point; every
                // maintenance pass retunes it from ghost-list demand.
                let fraction = compressed as f64 / block_budget as f64;
                BlockCache::new_adaptive(block_budget, fraction, opts.block_cache_shards)
            } else {
                BlockCache::new(decompressed, compressed, opts.block_cache_shards)
            })
        });
        let result_cache = {
            let budget = opts.result_cache_budget();
            (budget > 0).then(|| Arc::new(ResultCache::new(budget)))
        };
        let mut tables = HashMap::new();
        for entry in vfs.list_dir("").unwrap_or_default() {
            let desc_path = littletable_vfs::join(&entry, crate::descriptor::DESC_FILE);
            if !vfs.exists(&desc_path) {
                continue;
            }
            let table = Table::open(
                vfs.clone(),
                cold_vfs.clone(),
                clock.clone(),
                opts.clone(),
                cache.clone(),
                entry.clone(),
                entry.clone(),
            )?;
            tables.insert(Arc::from(entry.as_str()), table);
        }
        // Recover rollup definitions: a table directory holding a ROLLUP
        // spec file is a rollup table. Bases get their source flag set
        // before the background worker can start merging.
        let mut rollups: Vec<Arc<RollupSpec>> = Vec::new();
        for (name, table) in &tables {
            let spec_path = littletable_vfs::join(table.dir(), rollup::SPEC_FILE);
            if !vfs.exists(&spec_path) {
                continue;
            }
            let spec = RollupSpec::load(vfs.as_ref(), table.dir())?;
            let dir_name: &str = name;
            if spec.name != dir_name {
                return Err(Error::corrupt(format!(
                    "rollup spec in {:?} names table {:?}",
                    name, spec.name
                )));
            }
            rollups.push(Arc::new(spec));
        }
        for spec in &rollups {
            if let Some(base) = tables.get(spec.base.as_str()) {
                base.set_rollup_source(true);
            }
        }
        let inner = Arc::new(DbInner {
            vfs,
            cold_vfs,
            clock,
            opts,
            cache,
            catalog: SnapshotCell::new(Arc::new(CatalogSnapshot::new(tables))),
            catalog_lock: Mutex::new(()),
            stats: DbStats::default(),
            rollups: RwLock::new(rollups),
            result_cache,
            shutdown: Arc::new(AtomicBool::new(false)),
            worker: Mutex::new(None),
        });
        let db = Db { inner };
        if db.inner.opts.background {
            db.start_background_worker();
        }
        Ok(db)
    }

    /// Opens a database on the local file system with the wall clock.
    pub fn open_local(path: impl Into<std::path::PathBuf>, opts: Options) -> Result<Db> {
        let vfs = Arc::new(StdVfs::new(path)?);
        Db::open(vfs, Arc::new(SystemClock), opts)
    }

    fn start_background_worker(&self) {
        let db = self.clone();
        let shutdown = self.inner.shutdown.clone();
        let interval = std::time::Duration::from_millis(self.inner.opts.maintenance_interval_ms);
        let handle = std::thread::Builder::new()
            .name("littletable-maintenance".into())
            .spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    // Maintenance errors are retried next tick; a real
                    // deployment would log them.
                    let _ = db.maintain();
                }
            })
            .expect("spawn maintenance thread");
        *self.inner.worker.lock() = Some(handle);
    }

    /// The engine clock's current time.
    pub fn now(&self) -> Micros {
        self.inner.clock.now_micros()
    }

    /// The options this database was opened with.
    pub fn options(&self) -> &Options {
        &self.inner.opts
    }

    /// The underlying VFS.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.inner.vfs
    }

    /// The engine clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// The shared decompressed-block cache, or `None` when disabled via
    /// [`Options::block_cache_bytes`].
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.inner.cache.as_ref()
    }

    /// The current catalog snapshot: one lock-free atomic load. The
    /// cell's own enter counters double as the `catalog_loads` stat, so
    /// there is no separate bookkeeping on this path.
    fn load_catalog(&self) -> Arc<CatalogSnapshot> {
        self.inner.catalog.load()
    }

    /// Publishes `tables` as the new catalog. Callers must hold
    /// `catalog_lock`.
    fn publish_catalog_locked(&self, tables: HashMap<Arc<str>, Arc<Table>>) {
        self.inner
            .catalog
            .store(Arc::new(CatalogSnapshot::new(tables)));
        TableStats::add(&self.inner.stats.catalog_publishes, 1);
    }

    /// Creates a table. Fails if the name is taken or invalid.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        ttl: Option<Micros>,
    ) -> Result<Arc<Table>> {
        if !valid_table_name(name) {
            return Err(Error::invalid(format!("invalid table name {name:?}")));
        }
        let _writer = self.inner.catalog_lock.lock();
        let snap = self.inner.catalog.load();
        if snap.tables.contains_key(name) {
            return Err(Error::TableExists(name.to_string()));
        }
        let table = Table::create(
            self.inner.vfs.clone(),
            self.inner.cold_vfs.clone(),
            self.inner.clock.clone(),
            self.inner.opts.clone(),
            self.inner.cache.clone(),
            name.to_string(),
            name.to_string(),
            schema,
            ttl,
        )?;
        let mut tables = snap.tables.clone();
        tables.insert(Arc::from(name), table.clone());
        self.publish_catalog_locked(tables);
        Ok(table)
    }

    /// Looks up a table by name. Lock-free: a pinned access to the
    /// current catalog snapshot — no mutex and no refcount traffic on
    /// the catalog itself, just the returned table's `Arc` clone.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.inner
            .catalog
            .with(|cat| cat.tables.get(name).cloned())
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))
    }

    /// All table names, sorted. Lock-free: the published snapshot keeps
    /// its name list presorted, so this is one pinned access and a clone.
    pub fn list_tables(&self) -> Vec<String> {
        self.inner
            .catalog
            .with(|cat| cat.sorted_names.iter().map(|n| n.to_string()).collect())
    }

    /// Drops a table and deletes its files. Applications drop and recreate
    /// tables freely during feature development (§3.5).
    ///
    /// In-flight readers are unaffected: any `Arc<Table>` or open cursor
    /// obtained before the drop keeps working against the data it can
    /// already see (open file handles survive the unlink). *New* queries
    /// on a stale handle fail with [`Error::NoSuchTable`], and the name
    /// is free for recreation the moment this returns — the writer lock
    /// is held across the file deletion, so a recreated table can never
    /// interleave with its predecessor's teardown.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        // If `name` is itself a rollup table, retire its spec first (and
        // the base's source flag when it was the last rollup over it).
        let removed_spec: Option<Arc<RollupSpec>> = {
            let mut reg = self.inner.rollups.write();
            reg.iter()
                .position(|s| s.name == name)
                .map(|i| reg.remove(i))
        };
        if let Some(spec) = &removed_spec {
            if self.rollup_specs_for(&spec.base).is_empty() {
                if let Ok(base) = self.table(&spec.base) {
                    base.set_rollup_source(false);
                }
            }
        }
        // If `name` is a base with rollups, cascade: the derived tables
        // are meaningless without their source. Specs come out of the
        // registry before any directory is touched so a concurrent
        // maintenance pass cannot fold into a table being deleted.
        let dependents: Vec<Arc<RollupSpec>> = {
            let mut reg = self.inner.rollups.write();
            let deps: Vec<_> = reg.iter().filter(|s| s.base == name).cloned().collect();
            reg.retain(|s| s.base != name);
            deps
        };
        self.drop_table_inner(name)?;
        for dep in &dependents {
            // Best-effort: the dependent may already be gone.
            let _ = self.drop_table_inner(&dep.name);
        }
        Ok(())
    }

    /// Drops exactly one table (no rollup cascade): unpublish, tear down,
    /// delete files, and flush the result cache's entries for it.
    fn drop_table_inner(&self, name: &str) -> Result<()> {
        let _writer = self.inner.catalog_lock.lock();
        let snap = self.inner.catalog.load();
        let table = snap
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))?;
        let mut tables = snap.tables.clone();
        tables.remove(name);
        self.publish_catalog_locked(tables);
        // Belt and braces: result-cache keys embed the generation, so a
        // recreated table can never hit the old entries — this just
        // releases their memory promptly.
        if let Some(rc) = &self.inner.result_cache {
            rc.invalidate_generation(table.generation());
        }
        // Stop the table's own write/maintenance machinery (this waits
        // out any in-flight flush), then delete its files.
        table.mark_dropped();
        let dir = table.dir().to_string();
        for entry in self.inner.vfs.list_dir(&dir).unwrap_or_default() {
            let _ = self.inner.vfs.remove(&littletable_vfs::join(&dir, &entry));
        }
        if let Some(cold) = &self.inner.cold_vfs {
            for entry in cold.list_dir(&dir).unwrap_or_default() {
                let _ = cold.remove(&littletable_vfs::join(&dir, &entry));
            }
        }
        Ok(())
    }

    // --------------------------------------------------------------- rollups

    /// Creates a rollup table over `base` with the given bucket `period`:
    /// a derived table maintaining per-period row counts, per-column
    /// sums/extrema for `value_cols`, and HyperLogLog distinct sketches
    /// for `distinct_cols` (see [`crate::rollup`]).
    ///
    /// The current contents of `base` are backfilled before this returns;
    /// thereafter every maintenance pass folds newly flushed tablets. The
    /// rollup's TTL is the base's TTL plus one period, so a bucket
    /// outlives the youngest raw row that contributed to it.
    pub fn create_rollup(
        &self,
        name: &str,
        base: &str,
        period: Micros,
        value_cols: Vec<String>,
        distinct_cols: Vec<String>,
    ) -> Result<Arc<Table>> {
        let base_table = self.table(base)?;
        if self.inner.rollups.read().iter().any(|s| s.name == base) {
            return Err(Error::invalid("cannot create a rollup over a rollup"));
        }
        let spec = Arc::new(RollupSpec {
            name: name.to_string(),
            base: base.to_string(),
            period,
            value_cols,
            distinct_cols,
        });
        let schema = rollup::rollup_schema(&base_table.schema(), &spec)?;
        let ttl = base_table.ttl().map(|t| t.saturating_add(period));
        let table = self.create_table(name, schema, ttl)?;
        // Backfill every existing disk tablet into *all* of the base's
        // rollups (already-folded pairs are rejected as duplicates), so
        // the rolled_up marks this fold commits stay truthful for the
        // new spec too. A crash before the spec file lands leaves an
        // orphan plain table and an unfolded base — re-running CREATE
        // ROLLUP after dropping the orphan recovers.
        let mut targets = self.rollup_targets_for(base)?;
        targets.push((spec.clone(), table.clone()));
        let backfill = base_table
            .flush_all()
            .and_then(|()| rollup::fold_backfill(&base_table, &targets));
        if let Err(e) = backfill {
            let _ = self.drop_table_inner(name);
            return Err(e);
        }
        spec.save(self.inner.vfs.as_ref(), table.dir())?;
        self.inner.rollups.write().push(spec);
        base_table.set_rollup_source(true);
        Ok(table)
    }

    /// Drops a rollup table and unregisters its definition. The base
    /// table is untouched (and becomes freely mergeable again when this
    /// was its last rollup).
    pub fn drop_rollup(&self, name: &str) -> Result<()> {
        if !self.inner.rollups.read().iter().any(|s| s.name == name) {
            return Err(Error::invalid(format!("no such rollup {name:?}")));
        }
        self.drop_table(name)
    }

    /// The registered rollup definitions over `base`.
    pub fn rollup_specs_for(&self, base: &str) -> Vec<Arc<RollupSpec>> {
        self.inner
            .rollups
            .read()
            .iter()
            .filter(|s| s.base == base)
            .cloned()
            .collect()
    }

    /// Every registered rollup definition.
    pub fn list_rollups(&self) -> Vec<Arc<RollupSpec>> {
        self.inner.rollups.read().clone()
    }

    /// The query-result cache, or `None` when disabled via
    /// [`Options::result_cache_fraction`].
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.inner.result_cache.as_ref()
    }

    /// Resolves `base`'s rollup specs to `(spec, rollup table)` pairs.
    fn rollup_targets_for(&self, base: &str) -> Result<Vec<(Arc<RollupSpec>, Arc<Table>)>> {
        let mut out = Vec::new();
        for spec in self.rollup_specs_for(base) {
            let table = self.table(&spec.name)?;
            out.push((spec, table));
        }
        Ok(out)
    }

    /// Folds `base`'s not-yet-rolled-up tablets into its rollups.
    fn fold_table(&self, base: &str) -> Result<usize> {
        let targets = self.rollup_targets_for(base)?;
        if targets.is_empty() {
            return Ok(0);
        }
        let Ok(base_table) = self.table(base) else {
            return Ok(0);
        };
        rollup::fold_base(&base_table, &targets, false)
    }

    /// Runs one maintenance pass over every table at the current clock
    /// time. Returns the merged report.
    ///
    /// Transient I/O errors ([`Error::is_transient`]) are retried in place
    /// with bounded exponential backoff ([`Options::io_retry_limit`] /
    /// [`Options::io_retry_backoff_ms`]); every retry bumps the table's
    /// `io_retries` counter. An error that survives its retries (or is not
    /// transient to begin with) bumps `maintenance_errors`, and the pass
    /// continues over the remaining tables so one sick table can't starve
    /// the rest — the first such error is returned at the end.
    pub fn maintain(&self) -> Result<MaintenanceReport> {
        let now = self.now();
        let snap = self.load_catalog();
        let mut total = MaintenanceReport::default();
        let mut first_err = None;
        for t in snap.tables.values() {
            match self.maintain_one(t, now) {
                Ok(r) => {
                    total.sealed_by_age += r.sealed_by_age;
                    total.groups_flushed += r.groups_flushed;
                    total.merges += r.merges;
                    total.tablets_expired += r.tablets_expired;
                }
                Err(e) => {
                    TableStats::add(&t.stats().maintenance_errors, 1);
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        // Fold freshly flushed base tablets into their rollup tables.
        // This runs after the per-table pass so a tablet flushed above is
        // folded in the same sweep.
        let bases: Vec<String> = {
            let reg = self.inner.rollups.read();
            let mut bases: Vec<String> = reg.iter().map(|s| s.base.clone()).collect();
            bases.sort();
            bases.dedup();
            bases
        };
        for base in &bases {
            match self.fold_table(base) {
                Ok(n) => total.tablets_folded += n,
                Err(e) => {
                    if let Ok(t) = self.table(base) {
                        TableStats::add(&t.stats().maintenance_errors, 1);
                    }
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        // Retune the cache's tier split from the ghost-list demand that
        // accumulated since the last pass (no-op for static caches).
        self.rebalance_cache();
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Runs one maintenance pass over a single table (same retry
    /// semantics as [`Db::maintain`]). The per-table write shards of the
    /// server's group committer drive this so distinct tables commit
    /// independently instead of through one whole-catalog sweep.
    pub fn maintain_table(&self, name: &str) -> Result<MaintenanceReport> {
        let t = self.table(name)?;
        let now = self.now();
        let mut report = self.maintain_one(&t, now).inspect_err(|_| {
            TableStats::add(&t.stats().maintenance_errors, 1);
        })?;
        report.tablets_folded = self.fold_table(name).inspect_err(|_| {
            TableStats::add(&t.stats().maintenance_errors, 1);
        })?;
        Ok(report)
    }

    /// Rebalances the block cache's tier split from ghost-list demand
    /// (see [`BlockCache::rebalance`]). Returns whether budget moved.
    /// Called from [`Db::maintain`]; exposed for callers that drive
    /// maintenance per table and want the cache retuned on their own
    /// cadence.
    pub fn rebalance_cache(&self) -> bool {
        self.inner.cache.as_ref().is_some_and(|c| c.rebalance())
    }

    /// Database-wide counters: catalog snapshot traffic and the adaptive
    /// cache split's telemetry.
    pub fn stats(&self) -> DbStatsSnapshot {
        // Load counting lives in the snapshot cell itself, so the
        // reported total includes the access this call makes to size
        // the catalog.
        let catalog_loads = self.inner.catalog.loads();
        let tables = self.inner.catalog.with(|cat| cat.tables.len()) as u64;
        let mut snap = DbStatsSnapshot {
            catalog_loads,
            catalog_publishes: self.inner.stats.catalog_publishes.load(Ordering::Relaxed),
            tables,
            ..DbStatsSnapshot::default()
        };
        if let Some(cache) = &self.inner.cache {
            snap.ghost_hits_decompressed = cache.ghost_hits_decompressed();
            snap.ghost_hits_compressed = cache.ghost_hits_compressed();
            snap.cache_rebalances = cache.rebalance_count();
            snap.cache_split_fraction = cache.split_fraction();
        }
        if let Some(rc) = &self.inner.result_cache {
            snap.result_cache_hits = rc.hits();
            snap.result_cache_misses = rc.misses();
            snap.result_cache_entries = rc.entries() as u64;
            snap.result_cache_bytes = rc.bytes() as u64;
        }
        snap
    }

    /// One table's maintenance with the transient-error retry loop.
    fn maintain_one(&self, t: &Arc<Table>, now: Micros) -> Result<MaintenanceReport> {
        let limit = self.inner.opts.io_retry_limit;
        let base_ms = self.inner.opts.io_retry_backoff_ms;
        let mut attempt = 0u32;
        loop {
            match t.maintain(now) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_transient() && attempt < limit => {
                    attempt += 1;
                    crate::stats::TableStats::add(&t.stats().io_retries, 1);
                    let backoff_ms = base_ms
                        .saturating_mul(1 << (attempt - 1).min(16))
                        .min(1_000);
                    if backoff_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs maintenance passes until a pass does no work (useful in tests
    /// and virtual-time benchmarks).
    pub fn maintain_until_quiescent(&self) -> Result<()> {
        loop {
            let r = self.maintain()?;
            if r.sealed_by_age == 0
                && r.groups_flushed == 0
                && r.merges == 0
                && r.tablets_expired == 0
                && r.tablets_folded == 0
            {
                return Ok(());
            }
        }
    }

    /// Flushes every table's in-memory data to disk.
    pub fn flush_all(&self) -> Result<()> {
        let snap = self.load_catalog();
        for t in snap.tables.values() {
            t.flush_all()?;
        }
        Ok(())
    }

    /// Stops the background worker (if any). In keeping with the paper's
    /// durability model, unflushed rows are *not* persisted — they would
    /// be re-collected from the devices after a restart; call
    /// [`Db::flush_all`] first for a polite shutdown.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.inner.worker.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for DbInner {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_name_validation() {
        assert!(valid_table_name("usage_by_device"));
        assert!(valid_table_name("events-2017.raw"));
        assert!(!valid_table_name(""));
        assert!(!valid_table_name(".hidden"));
        assert!(!valid_table_name("a/b"));
        assert!(!valid_table_name(&"x".repeat(200)));
    }
}
