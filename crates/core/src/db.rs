//! The database: a collection of tables under one VFS root, plus optional
//! background maintenance.
//!
//! LittleTable runs as an independent server process (§3.1); this type is
//! the embeddable engine behind it. Opening a database scans the root for
//! table directories, loads each descriptor, and deletes any tablet files
//! a crash left uncommitted.
//!
//! The table catalog is published the same way each table publishes its
//! tablet set: an immutable [`CatalogSnapshot`] behind a
//! [`SnapshotCell`]. `Db::table()` and `list_tables()` — the calls §2.2
//! assumes are free enough that clients create and query hundreds of
//! tables — are a single atomic snapshot load with no lock, so server
//! worker shards and maintenance sweeps can resolve tables concurrently
//! without queueing on anything. `create_table`/`drop_table` serialize
//! on a small writer mutex and publish copy-on-write snapshots; a
//! dropped table's `Arc<Table>` stays fully usable by in-flight readers
//! while every *new* snapshot excludes it.

use crate::cache::BlockCache;
use crate::error::{Error, Result};
use crate::options::Options;
use crate::schema::Schema;
use crate::stats::{DbStats, DbStatsSnapshot, TableStats};
use crate::sync::SnapshotCell;
use crate::table::{MaintenanceReport, Table};
use littletable_vfs::{Clock, Micros, StdVfs, SystemClock, Vfs};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Returns the parent (database root) of a table directory.
pub(crate) fn root_of(dir: &str) -> &str {
    littletable_vfs::parent(dir)
}

fn valid_table_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
        && !name.starts_with('.')
}

/// One immutable, atomically published view of the table catalog.
/// Readers resolve names against whichever snapshot they loaded; writers
/// build a new snapshot copy-on-write and publish it whole. Names are
/// interned as `Arc<str>` so the copy-on-write clone a DDL writer pays
/// is O(n) refcount bumps, not O(n) string allocations.
struct CatalogSnapshot {
    tables: HashMap<Arc<str>, Arc<Table>>,
    /// Precomputed so `list_tables` is one pass over a sorted list
    /// instead of a collect-and-sort per call.
    sorted_names: Vec<Arc<str>>,
}

impl CatalogSnapshot {
    fn new(tables: HashMap<Arc<str>, Arc<Table>>) -> CatalogSnapshot {
        let mut sorted_names: Vec<Arc<str>> = tables.keys().cloned().collect();
        sorted_names.sort();
        CatalogSnapshot {
            tables,
            sorted_names,
        }
    }
}

struct DbInner {
    vfs: Arc<dyn Vfs>,
    cold_vfs: Option<Arc<dyn Vfs>>,
    clock: Arc<dyn Clock>,
    opts: Arc<Options>,
    /// One two-tier block-and-footer cache shared by every table: hot
    /// decompressed blocks and tablet footers in the upper tier,
    /// compressed bytes of demoted blocks in the lower, all under the
    /// joint `Options::block_cache_bytes` budget. `None` when that
    /// budget is 0 (uncached reads, unbounded per-reader footers — the
    /// paper's behavior).
    cache: Option<Arc<BlockCache>>,
    /// The current catalog. Loads are lock-free; stores are serialized
    /// by `catalog_lock`.
    catalog: SnapshotCell<CatalogSnapshot>,
    /// Serializes catalog writers (`create_table`/`drop_table`) — held
    /// across a drop's file deletion too, so recreating the same name
    /// cannot interleave with the old directory's teardown.
    catalog_lock: Mutex<()>,
    stats: DbStats,
    shutdown: Arc<AtomicBool>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// A LittleTable database handle. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Db {
    inner: Arc<DbInner>,
}

impl Db {
    /// Opens (or initializes) a database over `vfs`, recovering every
    /// table found under the root.
    pub fn open(vfs: Arc<dyn Vfs>, clock: Arc<dyn Clock>, opts: Options) -> Result<Db> {
        Db::open_with_cold(vfs, None, clock, opts)
    }

    /// As [`Db::open`], with an additional write-once cold store for old
    /// tablets (§6; see [`Table::migrate_to_cold`]).
    pub fn open_with_cold(
        vfs: Arc<dyn Vfs>,
        cold_vfs: Option<Arc<dyn Vfs>>,
        clock: Arc<dyn Clock>,
        opts: Options,
    ) -> Result<Db> {
        let opts = Arc::new(opts);
        let cache = (opts.block_cache_bytes > 0).then(|| {
            let (decompressed, compressed) = opts.cache_tier_budgets();
            Arc::new(if opts.adaptive_cache_split {
                // The configured split is only the starting point; every
                // maintenance pass retunes it from ghost-list demand.
                let fraction = compressed as f64 / opts.block_cache_bytes as f64;
                BlockCache::new_adaptive(opts.block_cache_bytes, fraction, opts.block_cache_shards)
            } else {
                BlockCache::new(decompressed, compressed, opts.block_cache_shards)
            })
        });
        let mut tables = HashMap::new();
        for entry in vfs.list_dir("").unwrap_or_default() {
            let desc_path = littletable_vfs::join(&entry, crate::descriptor::DESC_FILE);
            if !vfs.exists(&desc_path) {
                continue;
            }
            let table = Table::open(
                vfs.clone(),
                cold_vfs.clone(),
                clock.clone(),
                opts.clone(),
                cache.clone(),
                entry.clone(),
                entry.clone(),
            )?;
            tables.insert(Arc::from(entry.as_str()), table);
        }
        let inner = Arc::new(DbInner {
            vfs,
            cold_vfs,
            clock,
            opts,
            cache,
            catalog: SnapshotCell::new(Arc::new(CatalogSnapshot::new(tables))),
            catalog_lock: Mutex::new(()),
            stats: DbStats::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            worker: Mutex::new(None),
        });
        let db = Db { inner };
        if db.inner.opts.background {
            db.start_background_worker();
        }
        Ok(db)
    }

    /// Opens a database on the local file system with the wall clock.
    pub fn open_local(path: impl Into<std::path::PathBuf>, opts: Options) -> Result<Db> {
        let vfs = Arc::new(StdVfs::new(path)?);
        Db::open(vfs, Arc::new(SystemClock), opts)
    }

    fn start_background_worker(&self) {
        let db = self.clone();
        let shutdown = self.inner.shutdown.clone();
        let interval = std::time::Duration::from_millis(self.inner.opts.maintenance_interval_ms);
        let handle = std::thread::Builder::new()
            .name("littletable-maintenance".into())
            .spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    // Maintenance errors are retried next tick; a real
                    // deployment would log them.
                    let _ = db.maintain();
                }
            })
            .expect("spawn maintenance thread");
        *self.inner.worker.lock() = Some(handle);
    }

    /// The engine clock's current time.
    pub fn now(&self) -> Micros {
        self.inner.clock.now_micros()
    }

    /// The options this database was opened with.
    pub fn options(&self) -> &Options {
        &self.inner.opts
    }

    /// The underlying VFS.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.inner.vfs
    }

    /// The engine clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// The shared decompressed-block cache, or `None` when disabled via
    /// [`Options::block_cache_bytes`].
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.inner.cache.as_ref()
    }

    /// The current catalog snapshot: one lock-free atomic load. The
    /// cell's own enter counters double as the `catalog_loads` stat, so
    /// there is no separate bookkeeping on this path.
    fn load_catalog(&self) -> Arc<CatalogSnapshot> {
        self.inner.catalog.load()
    }

    /// Publishes `tables` as the new catalog. Callers must hold
    /// `catalog_lock`.
    fn publish_catalog_locked(&self, tables: HashMap<Arc<str>, Arc<Table>>) {
        self.inner
            .catalog
            .store(Arc::new(CatalogSnapshot::new(tables)));
        TableStats::add(&self.inner.stats.catalog_publishes, 1);
    }

    /// Creates a table. Fails if the name is taken or invalid.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        ttl: Option<Micros>,
    ) -> Result<Arc<Table>> {
        if !valid_table_name(name) {
            return Err(Error::invalid(format!("invalid table name {name:?}")));
        }
        let _writer = self.inner.catalog_lock.lock();
        let snap = self.inner.catalog.load();
        if snap.tables.contains_key(name) {
            return Err(Error::TableExists(name.to_string()));
        }
        let table = Table::create(
            self.inner.vfs.clone(),
            self.inner.cold_vfs.clone(),
            self.inner.clock.clone(),
            self.inner.opts.clone(),
            self.inner.cache.clone(),
            name.to_string(),
            name.to_string(),
            schema,
            ttl,
        )?;
        let mut tables = snap.tables.clone();
        tables.insert(Arc::from(name), table.clone());
        self.publish_catalog_locked(tables);
        Ok(table)
    }

    /// Looks up a table by name. Lock-free: a pinned access to the
    /// current catalog snapshot — no mutex and no refcount traffic on
    /// the catalog itself, just the returned table's `Arc` clone.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.inner
            .catalog
            .with(|cat| cat.tables.get(name).cloned())
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))
    }

    /// All table names, sorted. Lock-free: the published snapshot keeps
    /// its name list presorted, so this is one pinned access and a clone.
    pub fn list_tables(&self) -> Vec<String> {
        self.inner
            .catalog
            .with(|cat| cat.sorted_names.iter().map(|n| n.to_string()).collect())
    }

    /// Drops a table and deletes its files. Applications drop and recreate
    /// tables freely during feature development (§3.5).
    ///
    /// In-flight readers are unaffected: any `Arc<Table>` or open cursor
    /// obtained before the drop keeps working against the data it can
    /// already see (open file handles survive the unlink). *New* queries
    /// on a stale handle fail with [`Error::NoSuchTable`], and the name
    /// is free for recreation the moment this returns — the writer lock
    /// is held across the file deletion, so a recreated table can never
    /// interleave with its predecessor's teardown.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let _writer = self.inner.catalog_lock.lock();
        let snap = self.inner.catalog.load();
        let table = snap
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))?;
        let mut tables = snap.tables.clone();
        tables.remove(name);
        self.publish_catalog_locked(tables);
        // Stop the table's own write/maintenance machinery (this waits
        // out any in-flight flush), then delete its files.
        table.mark_dropped();
        let dir = table.dir().to_string();
        for entry in self.inner.vfs.list_dir(&dir).unwrap_or_default() {
            let _ = self.inner.vfs.remove(&littletable_vfs::join(&dir, &entry));
        }
        if let Some(cold) = &self.inner.cold_vfs {
            for entry in cold.list_dir(&dir).unwrap_or_default() {
                let _ = cold.remove(&littletable_vfs::join(&dir, &entry));
            }
        }
        Ok(())
    }

    /// Runs one maintenance pass over every table at the current clock
    /// time. Returns the merged report.
    ///
    /// Transient I/O errors ([`Error::is_transient`]) are retried in place
    /// with bounded exponential backoff ([`Options::io_retry_limit`] /
    /// [`Options::io_retry_backoff_ms`]); every retry bumps the table's
    /// `io_retries` counter. An error that survives its retries (or is not
    /// transient to begin with) bumps `maintenance_errors`, and the pass
    /// continues over the remaining tables so one sick table can't starve
    /// the rest — the first such error is returned at the end.
    pub fn maintain(&self) -> Result<MaintenanceReport> {
        let now = self.now();
        let snap = self.load_catalog();
        let mut total = MaintenanceReport::default();
        let mut first_err = None;
        for t in snap.tables.values() {
            match self.maintain_one(t, now) {
                Ok(r) => {
                    total.sealed_by_age += r.sealed_by_age;
                    total.groups_flushed += r.groups_flushed;
                    total.merges += r.merges;
                    total.tablets_expired += r.tablets_expired;
                }
                Err(e) => {
                    TableStats::add(&t.stats().maintenance_errors, 1);
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        // Retune the cache's tier split from the ghost-list demand that
        // accumulated since the last pass (no-op for static caches).
        self.rebalance_cache();
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Runs one maintenance pass over a single table (same retry
    /// semantics as [`Db::maintain`]). The per-table write shards of the
    /// server's group committer drive this so distinct tables commit
    /// independently instead of through one whole-catalog sweep.
    pub fn maintain_table(&self, name: &str) -> Result<MaintenanceReport> {
        let t = self.table(name)?;
        let now = self.now();
        self.maintain_one(&t, now).inspect_err(|_| {
            TableStats::add(&t.stats().maintenance_errors, 1);
        })
    }

    /// Rebalances the block cache's tier split from ghost-list demand
    /// (see [`BlockCache::rebalance`]). Returns whether budget moved.
    /// Called from [`Db::maintain`]; exposed for callers that drive
    /// maintenance per table and want the cache retuned on their own
    /// cadence.
    pub fn rebalance_cache(&self) -> bool {
        self.inner.cache.as_ref().is_some_and(|c| c.rebalance())
    }

    /// Database-wide counters: catalog snapshot traffic and the adaptive
    /// cache split's telemetry.
    pub fn stats(&self) -> DbStatsSnapshot {
        // Load counting lives in the snapshot cell itself, so the
        // reported total includes the access this call makes to size
        // the catalog.
        let catalog_loads = self.inner.catalog.loads();
        let tables = self.inner.catalog.with(|cat| cat.tables.len()) as u64;
        let mut snap = DbStatsSnapshot {
            catalog_loads,
            catalog_publishes: self.inner.stats.catalog_publishes.load(Ordering::Relaxed),
            tables,
            ..DbStatsSnapshot::default()
        };
        if let Some(cache) = &self.inner.cache {
            snap.ghost_hits_decompressed = cache.ghost_hits_decompressed();
            snap.ghost_hits_compressed = cache.ghost_hits_compressed();
            snap.cache_rebalances = cache.rebalance_count();
            snap.cache_split_fraction = cache.split_fraction();
        }
        snap
    }

    /// One table's maintenance with the transient-error retry loop.
    fn maintain_one(&self, t: &Arc<Table>, now: Micros) -> Result<MaintenanceReport> {
        let limit = self.inner.opts.io_retry_limit;
        let base_ms = self.inner.opts.io_retry_backoff_ms;
        let mut attempt = 0u32;
        loop {
            match t.maintain(now) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_transient() && attempt < limit => {
                    attempt += 1;
                    crate::stats::TableStats::add(&t.stats().io_retries, 1);
                    let backoff_ms = base_ms
                        .saturating_mul(1 << (attempt - 1).min(16))
                        .min(1_000);
                    if backoff_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs maintenance passes until a pass does no work (useful in tests
    /// and virtual-time benchmarks).
    pub fn maintain_until_quiescent(&self) -> Result<()> {
        loop {
            let r = self.maintain()?;
            if r.sealed_by_age == 0
                && r.groups_flushed == 0
                && r.merges == 0
                && r.tablets_expired == 0
            {
                return Ok(());
            }
        }
    }

    /// Flushes every table's in-memory data to disk.
    pub fn flush_all(&self) -> Result<()> {
        let snap = self.load_catalog();
        for t in snap.tables.values() {
            t.flush_all()?;
        }
        Ok(())
    }

    /// Stops the background worker (if any). In keeping with the paper's
    /// durability model, unflushed rows are *not* persisted — they would
    /// be re-collected from the devices after a restart; call
    /// [`Db::flush_all`] first for a polite shutdown.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.inner.worker.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for DbInner {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_name_validation() {
        assert!(valid_table_name("usage_by_device"));
        assert!(valid_table_name("events-2017.raw"));
        assert!(!valid_table_name(""));
        assert!(!valid_table_name(".hidden"));
        assert!(!valid_table_name("a/b"));
        assert!(!valid_table_name(&"x".repeat(200)));
    }
}
