//! Engine tuning options.

use crate::block::BlockFormat;
use crate::mergepolicy::MergePolicy;
use littletable_vfs::Micros;

/// Tuning knobs for a [`crate::db::Db`]. Defaults are the paper's
/// production settings.
#[derive(Debug, Clone)]
pub struct Options {
    /// Flush an in-memory tablet once it holds this many bytes (16 MB:
    /// large enough to sustain ~95% of a spinning disk's peak write rate,
    /// §3.3).
    pub flush_size: usize,
    /// Flush an in-memory tablet no later than this long after its first
    /// insert (10 minutes), bounding data lost in a crash (§3.4.1).
    pub flush_age: Micros,
    /// Uncompressed tablet block size (64 kB, §3.2).
    pub block_size: usize,
    /// Maximum merged tablet size (128 MB, §5.1.3).
    pub max_tablet_size: u64,
    /// Wait this long after a tablet is written before merging it (90 s,
    /// §5.1.3), maximizing the tablets available to any one merge.
    pub merge_delay: Micros,
    /// Master switch for background merging (ablation).
    pub merge_enabled: bool,
    /// Bin in-memory tablets and bound merges by time period (§3.4.2);
    /// disabling is the clustering ablation.
    pub respect_periods: bool,
    /// Store Bloom filters in tablet footers (§3.4.5 extension).
    pub bloom_filters: bool,
    /// Use the descriptor/index fast paths for insert-time uniqueness
    /// checks (§3.4.4); disabling forces the point-query slow path.
    pub uniqueness_fast_paths: bool,
    /// Seed for the period-rollover merge jitter (§3.4.2); `None`
    /// disables jitter (useful in deterministic tests).
    pub rollover_jitter_seed: Option<u64>,
    /// The server's own cap on rows returned per query; results that hit
    /// it carry a `more_available` flag and the client re-submits (§3.5).
    pub server_row_limit: usize,
    /// Maximum tablets sealed-but-unflushed before inserts flush inline,
    /// bounding memory (the 100-tablet limit of §5.1.3).
    pub max_sealed_backlog: usize,
    /// Spawn a background maintenance thread (flush by age, merge, TTL).
    /// Disable for deterministic tests and virtual-time benchmarks, which
    /// drive [`crate::db::Db::maintain`] manually.
    pub background: bool,
    /// Background maintenance cadence in milliseconds.
    pub maintenance_interval_ms: u64,
    /// Joint budget, in bytes, for the shared block cache that serves
    /// point-lookup and query block reads (§3.2 keeps footers cached;
    /// this extends the idea to hot data blocks and bounds footer
    /// memory). The budget covers *both* tiers — decompressed blocks
    /// plus cached tablet footers in the upper tier, compressed block
    /// bytes in the lower tier — so the cache's total memory use never
    /// exceeds it. `0` disables the cache entirely, reproducing the
    /// uncached read path bit-for-bit (and the paper's unbounded
    /// per-reader footer caching).
    pub block_cache_bytes: usize,
    /// Number of independently-locked cache shards; `0` picks a default
    /// suited to a handful of query threads. Rounded up to a power of
    /// two, then *down* while a shard's slice of the budget would fall
    /// below a useful minimum (see [`crate::cache::MIN_SHARD_SLICE`]).
    pub block_cache_shards: usize,
    /// Fraction of [`Options::block_cache_bytes`] reserved for the
    /// compressed tier, which holds the compressed bytes of blocks
    /// evicted from the decompressed tier so they come back with a cheap
    /// decompress instead of a disk seek. Clamped to `[0.0, 1.0]`; `0.0`
    /// reproduces the single-tier cache.
    pub compressed_cache_fraction: f64,
    /// Explicit byte budget for the compressed tier, overriding
    /// [`Options::compressed_cache_fraction`] when set. Clamped to
    /// [`Options::block_cache_bytes`]; the decompressed tier gets the
    /// remainder, so the joint budget is still respected.
    pub compressed_cache_bytes: Option<usize>,
    /// Retune the cache's tier split at maintenance time from ARC-style
    /// ghost-list hit estimation (see [`crate::cache::BlockCache::rebalance`])
    /// instead of pinning it at the configured fraction forever. The
    /// configured split (fraction or explicit bytes) is still the
    /// starting point; thereafter each [`crate::db::Db::maintain`] pass
    /// moves a bounded slice of the joint budget toward the tier with
    /// more byte-weighted would-have-hits. Disable to reproduce the
    /// static two-tier cache exactly (ablation, deterministic tests).
    pub adaptive_cache_split: bool,
    /// Fail [`crate::db::Db::open`] outright when a referenced tablet is
    /// missing or fails footer/CRC validation, instead of quarantining the
    /// file (rename to `*.quarantine`, drop from the descriptor) and
    /// serving the rest of the table. Quarantine is the default because a
    /// telemetry store that refuses to start over one bad file loses more
    /// data than it protects.
    pub strict_open: bool,
    /// How many times background maintenance retries an operation that
    /// failed with a transient I/O error ([`crate::Error::is_transient`])
    /// before giving up for this cycle.
    pub io_retry_limit: u32,
    /// Base backoff between maintenance retries, in milliseconds; doubles
    /// per attempt, capped at one second.
    pub io_retry_backoff_ms: u64,
    /// Block layout for newly written tablets. [`BlockFormat::Columnar`]
    /// (the default) writes footer-v3 tablets whose blocks hold
    /// per-column codec-compressed slices with zone maps, enabling
    /// aggregate pushdown; [`BlockFormat::Row`] writes the classic
    /// footer-v2 row layout. Either way, tablets of both layouts read
    /// back transparently, and merges rewrite mixed inputs into the
    /// configured format.
    pub block_format: BlockFormat,
    /// Fraction of [`Options::block_cache_bytes`] carved out for the
    /// query-result cache (finished aggregate result sets keyed by table
    /// generation, bounding box, and insert sequence). The carve-out
    /// comes off the top of the joint budget before the block tiers are
    /// split, so total cache memory is unchanged. Clamped to
    /// `[0.0, 1.0]`; `0.0` disables the result cache.
    pub result_cache_fraction: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            flush_size: 16 << 20,
            flush_age: 10 * 60 * 1_000_000,
            block_size: 64 << 10,
            max_tablet_size: 128 << 20,
            merge_delay: 90 * 1_000_000,
            merge_enabled: true,
            respect_periods: true,
            bloom_filters: true,
            uniqueness_fast_paths: true,
            rollover_jitter_seed: None,
            server_row_limit: 1 << 20,
            max_sealed_backlog: 100,
            background: false,
            maintenance_interval_ms: 1_000,
            block_cache_bytes: 64 << 20,
            block_cache_shards: 0,
            compressed_cache_fraction: 0.25,
            compressed_cache_bytes: None,
            adaptive_cache_split: true,
            strict_open: false,
            io_retry_limit: 3,
            io_retry_backoff_ms: 10,
            block_format: BlockFormat::Columnar,
            result_cache_fraction: 1.0 / 16.0,
        }
    }
}

impl Options {
    /// The merge-policy view of these options.
    pub fn merge_policy(&self) -> MergePolicy {
        MergePolicy {
            max_tablet_size: self.max_tablet_size,
            merge_delay: self.merge_delay,
            respect_periods: self.respect_periods,
            rollover_jitter_seed: self.rollover_jitter_seed,
        }
    }

    /// Bytes carved out of [`Options::block_cache_bytes`] for the
    /// query-result cache. `0` disables it.
    pub fn result_cache_budget(&self) -> usize {
        let f = self.result_cache_fraction.clamp(0.0, 1.0);
        (self.block_cache_bytes as f64 * f) as usize
    }

    /// Resolves the joint cache budget into `(decompressed_bytes,
    /// compressed_bytes)` tier budgets for the block cache, after the
    /// query-result carve-out. Block tiers plus the result cache always
    /// sum to at most [`Options::block_cache_bytes`].
    pub fn cache_tier_budgets(&self) -> (usize, usize) {
        let total = self.block_cache_bytes - self.result_cache_budget();
        let compressed = match self.compressed_cache_bytes {
            Some(b) => b.min(total),
            None => {
                let f = self.compressed_cache_fraction.clamp(0.0, 1.0);
                (total as f64 * f) as usize
            }
        };
        (total - compressed, compressed)
    }

    /// Small sizes suited to unit tests: 64 kB flushes, 4 kB blocks.
    pub fn small_for_tests() -> Self {
        Options {
            flush_size: 64 << 10,
            block_size: 4 << 10,
            max_tablet_size: 1 << 20,
            merge_delay: 0,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = Options::default();
        assert_eq!(o.flush_size, 16 << 20);
        assert_eq!(o.block_size, 64 << 10);
        assert_eq!(o.max_tablet_size, 128 << 20);
        assert_eq!(o.merge_delay, 90_000_000);
        assert_eq!(o.flush_age, 600_000_000);
        assert_eq!(o.max_sealed_backlog, 100);
        assert_eq!(o.block_cache_bytes, 64 << 20);
        assert_eq!(o.block_cache_shards, 0);
        assert_eq!(o.compressed_cache_fraction, 0.25);
        assert_eq!(o.compressed_cache_bytes, None);
        assert!(o.adaptive_cache_split);
        assert!(!o.strict_open);
        assert_eq!(o.io_retry_limit, 3);
        assert_eq!(o.io_retry_backoff_ms, 10);
        assert_eq!(o.block_format, BlockFormat::Columnar);
        assert_eq!(o.result_cache_fraction, 1.0 / 16.0);
    }

    #[test]
    fn tier_budgets_sum_to_joint_budget() {
        let mut o = Options {
            block_cache_bytes: 64 << 20,
            ..Options::default()
        };
        // The result cache takes 1/16 of the joint budget off the top;
        // the block tiers split the remaining 60 MB.
        let result = o.result_cache_budget();
        assert_eq!(result, 4 << 20);
        let (d, c) = o.cache_tier_budgets();
        assert_eq!(d + c + result, 64 << 20);
        assert_eq!(c, 15 << 20); // default 25% split of the remainder

        o.compressed_cache_bytes = Some(1 << 20);
        let (d, c) = o.cache_tier_budgets();
        assert_eq!(c, 1 << 20);
        assert_eq!(d + c + result, 64 << 20);

        // The explicit knob can never push past the joint budget.
        o.compressed_cache_bytes = Some(usize::MAX);
        let (d, c) = o.cache_tier_budgets();
        assert_eq!(d, 0);
        assert_eq!(c, 60 << 20);

        // Out-of-range fractions clamp instead of misbehaving.
        o.compressed_cache_bytes = None;
        o.compressed_cache_fraction = 7.0;
        let (d, c) = o.cache_tier_budgets();
        assert_eq!(d, 0);
        assert_eq!(c, 60 << 20);

        // Disabling the result cache restores the full block budget.
        o.compressed_cache_fraction = 0.25;
        o.result_cache_fraction = 0.0;
        assert_eq!(o.result_cache_budget(), 0);
        let (d, c) = o.cache_tier_budgets();
        assert_eq!(d + c, 64 << 20);
        assert_eq!(c, 16 << 20);
    }

    #[test]
    fn merge_policy_mirrors_options() {
        let o = Options::default();
        let p = o.merge_policy();
        assert_eq!(p.max_tablet_size, o.max_tablet_size);
        assert_eq!(p.merge_delay, o.merge_delay);
        assert!(p.respect_periods);
    }
}
