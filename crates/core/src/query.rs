//! Query specification: the two-dimensional bounding box (§3.1).
//!
//! Every LittleTable query is an ordered scan of rows inside a bounding
//! box: a range of primary keys (or prefixes thereof) in one dimension and
//! a range of timestamps in the other, each bound inclusive or exclusive.
//! Results stream in primary-key order, ascending or descending, with an
//! optional row limit.

use crate::error::Result;
use crate::keyenc::{encode_prefix, KeyRange};
use crate::schema::Schema;
use crate::value::Value;
use littletable_vfs::Micros;

/// One bound on a key prefix: the component values and whether the bound
/// is inclusive of the whole prefix subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixBound {
    /// Key component values (a prefix of the key columns, in key order).
    pub values: Vec<Value>,
    /// Inclusive?
    pub inclusive: bool,
}

/// One bound on the timestamp dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsBound {
    /// Bound value in micros.
    pub ts: Micros,
    /// Inclusive?
    pub inclusive: bool,
}

/// A query: key bounds × time bounds, direction, and limit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// Lower key-prefix bound, or `None` for unbounded.
    pub key_min: Option<PrefixBound>,
    /// Upper key-prefix bound, or `None` for unbounded.
    pub key_max: Option<PrefixBound>,
    /// Lower timestamp bound, or `None` for unbounded.
    pub ts_min: Option<TsBound>,
    /// Upper timestamp bound, or `None` for unbounded.
    pub ts_max: Option<TsBound>,
    /// Return rows in descending key order.
    pub descending: bool,
    /// Client-requested row limit.
    pub limit: Option<usize>,
}

impl Query {
    /// A query over the entire table.
    pub fn all() -> Self {
        Query::default()
    }

    /// Restricts to rows whose key starts with `prefix` (both bounds).
    pub fn with_prefix(mut self, prefix: Vec<Value>) -> Self {
        self.key_min = Some(PrefixBound {
            values: prefix.clone(),
            inclusive: true,
        });
        self.key_max = Some(PrefixBound {
            values: prefix,
            inclusive: true,
        });
        self
    }

    /// Sets an inclusive lower key-prefix bound.
    pub fn with_key_min(mut self, values: Vec<Value>, inclusive: bool) -> Self {
        self.key_min = Some(PrefixBound { values, inclusive });
        self
    }

    /// Sets an inclusive upper key-prefix bound.
    pub fn with_key_max(mut self, values: Vec<Value>, inclusive: bool) -> Self {
        self.key_max = Some(PrefixBound { values, inclusive });
        self
    }

    /// Restricts to rows with `ts_min ≤ ts < ts_max` (half-open, the most
    /// common shape).
    pub fn with_ts_range(mut self, min: Micros, max: Micros) -> Self {
        self.ts_min = Some(TsBound {
            ts: min,
            inclusive: true,
        });
        self.ts_max = Some(TsBound {
            ts: max,
            inclusive: false,
        });
        self
    }

    /// Sets the lower timestamp bound.
    pub fn with_ts_min(mut self, ts: Micros, inclusive: bool) -> Self {
        self.ts_min = Some(TsBound { ts, inclusive });
        self
    }

    /// Sets the upper timestamp bound.
    pub fn with_ts_max(mut self, ts: Micros, inclusive: bool) -> Self {
        self.ts_max = Some(TsBound { ts, inclusive });
        self
    }

    /// Returns rows in descending key order.
    pub fn descending(mut self) -> Self {
        self.descending = true;
        self
    }

    /// Caps the number of returned rows.
    pub fn with_limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// The timestamp bounds normalized to a closed interval
    /// `[min, max]` in micros.
    pub fn ts_interval(&self) -> (Micros, Micros) {
        let lo = match self.ts_min {
            None => Micros::MIN,
            Some(TsBound {
                ts,
                inclusive: true,
            }) => ts,
            Some(TsBound {
                ts,
                inclusive: false,
            }) => ts.saturating_add(1),
        };
        let hi = match self.ts_max {
            None => Micros::MAX,
            Some(TsBound {
                ts,
                inclusive: true,
            }) => ts,
            Some(TsBound {
                ts,
                inclusive: false,
            }) => ts.saturating_sub(1),
        };
        (lo, hi)
    }

    /// Encodes the key bounds into a byte range under `schema`.
    pub fn key_range(&self, schema: &Schema) -> Result<KeyRange> {
        let types = schema.key_types();
        let enc = |b: &PrefixBound| -> Result<(Vec<u8>, bool)> {
            Ok((encode_prefix(&b.values, &types)?, b.inclusive))
        };
        let min = self.key_min.as_ref().map(enc).transpose()?;
        let max = self.key_max.as_ref().map(enc).transpose()?;
        Ok(KeyRange::from_bounds(min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("net", ColumnType::I64),
                ColumnDef::new("dev", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["net", "dev", "ts"],
        )
        .unwrap()
    }

    #[test]
    fn ts_interval_normalizes_bounds() {
        let q = Query::all().with_ts_range(100, 200);
        assert_eq!(q.ts_interval(), (100, 199));
        let q = Query::all().with_ts_min(100, false).with_ts_max(200, true);
        assert_eq!(q.ts_interval(), (101, 200));
        assert_eq!(Query::all().ts_interval(), (Micros::MIN, Micros::MAX));
    }

    #[test]
    fn prefix_query_builds_subtree_range() {
        let s = schema();
        let q = Query::all().with_prefix(vec![Value::I64(7)]);
        let r = q.key_range(&s).unwrap();
        let full = crate::keyenc::encode_prefix(
            &[Value::I64(7), Value::I64(3), Value::Timestamp(9)],
            &s.key_types(),
        )
        .unwrap();
        assert!(r.contains(&full));
        let other = crate::keyenc::encode_prefix(
            &[Value::I64(8), Value::I64(0), Value::Timestamp(0)],
            &s.key_types(),
        )
        .unwrap();
        assert!(!r.contains(&other));
    }

    #[test]
    fn mistyped_prefix_fails() {
        let s = schema();
        let q = Query::all().with_prefix(vec![Value::Str("x".into())]);
        assert!(q.key_range(&s).is_err());
    }

    #[test]
    fn builder_chains() {
        let q = Query::all()
            .with_key_min(vec![Value::I64(1)], true)
            .with_key_max(vec![Value::I64(9)], false)
            .with_ts_range(0, 10)
            .descending()
            .with_limit(5);
        assert!(q.descending);
        assert_eq!(q.limit, Some(5));
        assert!(!q.key_max.as_ref().unwrap().inclusive);
    }
}
