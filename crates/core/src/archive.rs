//! Continuous archival to a warm spare (§2.2, §3.5).
//!
//! Every shard has a spare in another datacenter; Dashboard keeps the
//! spare's LittleTable data consistent by running rsync from shard to
//! spare every ten minutes, "repeatedly until a sync completes without
//! copying any files, indicating that shard and spare have identical
//! contents. This approach works because an rsync that copies no files is
//! quick relative to the rate of new tablets being written to disk."
//!
//! This module is that rsync: a one-way file-level synchronizer over any
//! two [`Vfs`] instances. Two properties make the copied state safe for a
//! failover [`crate::db::Db::open`]:
//!
//! * within each table directory, tablet files are copied **before** the
//!   descriptor, so a descriptor never references a tablet the spare
//!   lacks (extraneous tablets are cleaned as orphans on open);
//! * tablets are write-once, so a same-size file never needs re-copying —
//!   only the descriptor changes in place.
//!
//! The archiver covers the shard's local (hot) tier. Cold-tier tablets
//! (see [`crate::table::Table::migrate_to_cold`]) live in S3-like storage
//! that is durable and shared by design, so they are not re-replicated.

use crate::descriptor::{TableDescriptor, DESC_FILE, DESC_TMP};
use crate::error::Result;
use littletable_vfs::{join, Vfs};

/// Statistics from one synchronization pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Files copied (created or replaced).
    pub files_copied: u64,
    /// Bytes copied.
    pub bytes_copied: u64,
    /// Files removed from the spare (deleted on the primary).
    pub files_removed: u64,
    /// Tables whose *spare* descriptor is newer than the primary's — the
    /// split-brain signature left by an un-fenced failover (the spare was
    /// promoted, accepted writes, and the old primary came back believing
    /// it still owns the shard). Diverged tables are left untouched:
    /// overwriting them would silently destroy acknowledged data.
    pub diverged: u64,
}

impl SyncReport {
    /// True when the pass found nothing to do — primary and spare were
    /// identical, the archiver's stopping condition. A quiescent pass may
    /// still have `diverged > 0`; see [`SyncReport::clean`].
    pub fn quiescent(&self) -> bool {
        self.files_copied == 0 && self.files_removed == 0
    }

    /// True when the pass was quiescent *and* no table was diverged —
    /// the spare really is a faithful replica of the primary.
    pub fn clean(&self) -> bool {
        self.quiescent() && self.diverged == 0
    }
}

/// Decodes a directory's descriptor without touching anything, or `None`
/// when it is absent or unreadable (a half-copied spare descriptor reads
/// as "no opinion", never as divergence).
fn peek_descriptor(vfs: &dyn Vfs, dir: &str) -> Option<TableDescriptor> {
    TableDescriptor::peek(vfs, dir).ok()
}

/// True when the spare's descriptor for `table` is strictly newer than
/// the primary's. `next_tablet_id` is monotonic over a table's life and
/// survives merges (ids are never reused), so the spare being *ahead*
/// can only mean it flushed tablets the primary never wrote.
fn spare_is_newer(src: &dyn Vfs, dst: &dyn Vfs, table: &str) -> bool {
    match (peek_descriptor(src, table), peek_descriptor(dst, table)) {
        (Some(p), Some(s)) => s.next_tablet_id > p.next_tablet_id,
        _ => false,
    }
}

fn copy_file(src: &dyn Vfs, dst: &dyn Vfs, path: &str, len: u64) -> Result<u64> {
    let f = src.open(path)?;
    let mut buf = vec![0u8; len as usize];
    f.read_exact_at(0, &mut buf)?;
    let mut w = dst.create(path, len)?;
    w.append(&buf)?;
    w.sync()?;
    Ok(len)
}

/// True when `dst` already has an identical-enough copy: same size, and
/// either a write-once tablet file or byte-identical contents (the
/// descriptor is small, so comparing it is cheap — rsync's checksum).
fn up_to_date(src: &dyn Vfs, dst: &dyn Vfs, path: &str, src_len: u64) -> Result<bool> {
    if !dst.exists(path) {
        return Ok(false);
    }
    let dst_len = dst.file_size(path)?;
    if dst_len != src_len {
        return Ok(false);
    }
    if path.ends_with(".lt") {
        // Tablet files are immutable once written; same name + same size
        // means same content.
        return Ok(true);
    }
    let a = src.open(path)?;
    let b = dst.open(path)?;
    let mut ab = vec![0u8; src_len as usize];
    let mut bb = vec![0u8; src_len as usize];
    a.read_exact_at(0, &mut ab)?;
    b.read_exact_at(0, &mut bb)?;
    Ok(ab == bb)
}

/// Runs one rsync-like pass from `src` to `dst`. Tablet files sync before
/// each table's descriptor; files that vanished from the primary are
/// removed from the spare.
pub fn sync_once(src: &dyn Vfs, dst: &dyn Vfs) -> Result<SyncReport> {
    let mut report = SyncReport::default();
    // A pass that cannot read the primary has no standing to report
    // anything — least of all quiescence. Degrading an unreadable source
    // to an empty listing would make a dead primary look fully synced,
    // and the fleet client trims its replay buffer on that signal.
    let tables = src.list_dir("")?;
    for table in &tables {
        let entries = match src.list_dir(table) {
            Ok(e) => e,
            // A plain file at the root, or a table dropped while we were
            // listing; real I/O errors must surface.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e.into()),
        };
        if spare_is_newer(src, dst, table) {
            // Split-brain guard: surface the divergence and leave the
            // table exactly as it is. The fleet driver resolves it with
            // [`rollback_diverged`] once the old primary is fenced.
            report.diverged += 1;
            continue;
        }
        dst.mkdir_all(table)?;
        // Tablets first, descriptor last.
        let mut names: Vec<&String> = entries.iter().filter(|n| *n != DESC_FILE).collect();
        names.extend(entries.iter().filter(|n| *n == DESC_FILE));
        for name in names {
            if name == DESC_TMP {
                continue; // in-flight temp files never replicate
            }
            let path = join(table, name);
            let len = match src.file_size(&path) {
                Ok(len) => len,
                // Deleted while we were listing (merge or TTL reap).
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            if !up_to_date(src, dst, &path, len)? {
                report.bytes_copied += copy_file(src, dst, &path, len)?;
                report.files_copied += 1;
            }
        }
        dst.sync_dir(table)?;
        // Remove spare files the primary no longer has (merged-away or
        // TTL-reaped tablets).
        for name in dst.list_dir(table).unwrap_or_default() {
            let path = join(table, &name);
            // Deleting from the spare needs positive evidence that the
            // primary no longer has the file; an unreadable primary must
            // never be mistaken for one that dropped everything.
            let vanished = match src.file_size(&path) {
                Ok(_) => false,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => !src.exists(&path),
                Err(e) => return Err(e.into()),
            };
            if name == DESC_TMP || vanished {
                let _ = dst.remove(&path);
                report.files_removed += 1;
            }
        }
        dst.sync_dir(table)?;
    }
    // Drop spare table directories for tables dropped on the primary.
    for table in dst.list_dir("").unwrap_or_default() {
        if !tables.contains(&table) && dst.list_dir(&table).is_ok() {
            for name in dst.list_dir(&table).unwrap_or_default() {
                let _ = dst.remove(&join(&table, &name));
                report.files_removed += 1;
            }
        }
    }
    dst.sync_dir("")?;
    Ok(report)
}

/// Runs [`sync_once`] repeatedly until a pass copies nothing — the
/// paper's stopping condition — or `max_passes` is hit (primary writing
/// faster than the archiver can copy). Returns the pass reports.
pub fn sync_until_quiescent(
    src: &dyn Vfs,
    dst: &dyn Vfs,
    max_passes: usize,
) -> Result<Vec<SyncReport>> {
    let mut reports = Vec::new();
    for _ in 0..max_passes.max(1) {
        let r = sync_once(src, dst)?;
        let done = r.quiescent();
        reports.push(r);
        if done {
            break;
        }
    }
    Ok(reports)
}

/// Discards a diverged spare's state so it can re-sync from the primary:
/// for every table whose spare descriptor is newer than the primary's,
/// all spare-side files are removed (durably). Returns the number of
/// tables rolled back.
///
/// This deliberately destroys the spare's extra writes — only call it
/// after the cluster has decided `src` is the authoritative primary and
/// the node behind `dst` is *fenced* (demoted, no longer accepting
/// writes). The fleet failback path does exactly that: the returning
/// old primary is demoted to spare, rolled back here, then re-synced
/// with [`sync_until_quiescent`].
pub fn rollback_diverged(src: &dyn Vfs, dst: &dyn Vfs) -> Result<u64> {
    let mut rolled_back = 0;
    for table in src.list_dir("")? {
        match src.list_dir(&table) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e.into()),
        }
        if !spare_is_newer(src, dst, &table) {
            continue;
        }
        for name in dst.list_dir(&table).unwrap_or_default() {
            let _ = dst.remove(&join(&table, &name));
        }
        dst.sync_dir(&table)?;
        rolled_back += 1;
    }
    if rolled_back > 0 {
        dst.sync_dir("")?;
    }
    Ok(rolled_back)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;
    use crate::options::Options;
    use crate::query::Query;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{ColumnType, Value};
    use littletable_vfs::{Clock as _, SimClock, SimVfs};
    use std::sync::Arc;

    const START: i64 = 1_700_000_000_000_000;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    fn primary() -> (Db, SimVfs, SimClock) {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        let db = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        (db, vfs, clock)
    }

    fn rows(n: std::ops::Range<i64>) -> Vec<Vec<Value>> {
        n.map(|i| vec![Value::I64(i), Value::Timestamp(START + i)])
            .collect()
    }

    #[test]
    fn spare_can_fail_over_with_identical_data() {
        let (db, vfs, clock) = primary();
        let spare_vfs = SimVfs::instant();
        let t = db.create_table("t", schema(), None).unwrap();
        t.insert(rows(0..500)).unwrap();
        db.flush_all().unwrap();
        let reports = sync_until_quiescent(&vfs, &spare_vfs, 10).unwrap();
        assert!(reports.last().unwrap().quiescent());
        // Failover: open the spare and serve.
        let spare = Db::open(
            Arc::new(spare_vfs),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let got = spare.table("t").unwrap().query_all(&Query::all()).unwrap();
        assert_eq!(got.len(), 500);
    }

    #[test]
    fn dead_source_errors_instead_of_reporting_quiescence() {
        // Regression: a primary that dies right before a pass used to
        // read as an empty table list, so the pass reported quiescent —
        // and the fleet client, told the spare was a faithful replica,
        // trimmed the replay buffer it would have needed at failover.
        let (db, vfs, _clock) = primary();
        let spare = SimVfs::instant();
        db.create_table("t", schema(), None)
            .unwrap()
            .insert(rows(0..100))
            .unwrap();
        db.flush_all().unwrap();
        vfs.power_off();
        assert!(
            sync_once(&vfs, &spare).is_err(),
            "a dead primary must surface as an error, not a clean pass"
        );
        assert!(
            sync_until_quiescent(&vfs, &spare, 4).is_err(),
            "the multi-pass driver must propagate the same error"
        );
        // The spare keeps whatever it already had; nothing is deleted on
        // the word of an unreadable primary.
        assert!(rollback_diverged(&vfs, &spare).is_err());
    }

    #[test]
    fn second_pass_copies_nothing() {
        let (db, vfs, _clock) = primary();
        let spare = SimVfs::instant();
        db.create_table("t", schema(), None)
            .unwrap()
            .insert(rows(0..100))
            .unwrap();
        db.flush_all().unwrap();
        let r1 = sync_once(&vfs, &spare).unwrap();
        assert!(r1.files_copied > 0);
        let r2 = sync_once(&vfs, &spare).unwrap();
        assert!(r2.quiescent(), "{r2:?}");
    }

    #[test]
    fn merged_away_tablets_are_removed_from_spare() {
        let (db, vfs, clock) = primary();
        let spare = SimVfs::instant();
        let t = db.create_table("t", schema(), None).unwrap();
        for chunk in 0..4 {
            t.insert(rows(chunk * 100..(chunk + 1) * 100)).unwrap();
            t.flush_all().unwrap();
        }
        sync_until_quiescent(&vfs, &spare, 10).unwrap();
        let before = spare.list_dir("t").unwrap().len();
        while t.run_merge_once(clock.now_micros()).unwrap() {}
        let reports = sync_until_quiescent(&vfs, &spare, 10).unwrap();
        assert!(reports.iter().any(|r| r.files_removed > 0));
        assert!(spare.list_dir("t").unwrap().len() < before);
        // The spare still opens cleanly and has all rows.
        let spare_db = Db::open(
            Arc::new(spare),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        assert_eq!(
            spare_db
                .table("t")
                .unwrap()
                .query_all(&Query::all())
                .unwrap()
                .len(),
            400
        );
    }

    #[test]
    fn interrupted_sync_leaves_spare_openable() {
        // A sync that copied tablets but not yet the descriptor (our
        // ordering guarantees this is the only intermediate state) still
        // yields a consistent spare: the old descriptor + old tablets.
        let (db, vfs, clock) = primary();
        let spare = SimVfs::instant();
        let t = db.create_table("t", schema(), None).unwrap();
        t.insert(rows(0..100)).unwrap();
        db.flush_all().unwrap();
        sync_until_quiescent(&vfs, &spare, 10).unwrap();
        // More data on the primary.
        t.insert(rows(100..200)).unwrap();
        db.flush_all().unwrap();
        // Simulate the interrupted pass: copy only the new tablet files,
        // not the descriptor (exactly what sync_once does first).
        for name in vfs.list_dir("t").unwrap() {
            if name.ends_with(".lt") {
                let path = join("t", &name);
                let len = vfs.file_size(&path).unwrap();
                if !up_to_date(&vfs, &spare, &path, len).unwrap() {
                    copy_file(&vfs, &spare, &path, len).unwrap();
                }
            }
        }
        let spare_db = Db::open(
            Arc::new(spare),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        // The spare serves the last fully synced state (100 rows), not a
        // corrupt intermediate.
        assert_eq!(
            spare_db
                .table("t")
                .unwrap()
                .query_all(&Query::all())
                .unwrap()
                .len(),
            100
        );
    }

    #[test]
    fn diverged_spare_is_surfaced_not_overwritten() {
        // Un-fenced failover: the spare is promoted, accepts writes, and
        // then the old primary (behind, but alive) re-runs the archiver
        // against it. The sync must refuse to clobber the spare's extra
        // data and flag the divergence instead.
        let (db, vfs, clock) = primary();
        let spare_vfs = SimVfs::instant();
        let t = db.create_table("t", schema(), None).unwrap();
        t.insert(rows(0..100)).unwrap();
        db.flush_all().unwrap();
        sync_until_quiescent(&vfs, &spare_vfs, 10).unwrap();
        // Promote the spare and let it accept new writes.
        let promoted = Db::open(
            Arc::new(spare_vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        promoted.table("t").unwrap().insert(rows(100..250)).unwrap();
        promoted.flush_all().unwrap();
        // The un-fenced old primary tries to archive over it.
        let r = sync_once(&vfs, &spare_vfs).unwrap();
        assert_eq!(r.diverged, 1);
        assert!(r.quiescent() && !r.clean(), "{r:?}");
        // Nothing on the spare was touched: all 250 rows still there.
        let check = Db::open(
            Arc::new(spare_vfs),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        assert_eq!(
            check
                .table("t")
                .unwrap()
                .query_all(&Query::all())
                .unwrap()
                .len(),
            250
        );
    }

    #[test]
    fn rollback_diverged_lets_fenced_spare_resync() {
        let (db, vfs, clock) = primary();
        let spare_vfs = SimVfs::instant();
        let t = db.create_table("t", schema(), None).unwrap();
        t.insert(rows(0..100)).unwrap();
        db.flush_all().unwrap();
        sync_until_quiescent(&vfs, &spare_vfs, 10).unwrap();
        // Divergence: spare flushes writes of its own.
        {
            let promoted = Db::open(
                Arc::new(spare_vfs.clone()),
                Arc::new(clock.clone()),
                Options::small_for_tests(),
            )
            .unwrap();
            promoted.table("t").unwrap().insert(rows(500..600)).unwrap();
            promoted.flush_all().unwrap();
        }
        assert_eq!(sync_once(&vfs, &spare_vfs).unwrap().diverged, 1);
        // Failback: the diverged node is fenced, rolled back, re-synced.
        // (Rollback must run while the divergence is still visible — once
        // the primary's tablet ids advance past the spare's the signal is
        // masked and a plain sync would clobber the spare anyway.)
        assert_eq!(rollback_diverged(&vfs, &spare_vfs).unwrap(), 1);
        // Meanwhile the primary moves ahead on its own timeline.
        t.insert(rows(100..120)).unwrap();
        db.flush_all().unwrap();
        let reports = sync_until_quiescent(&vfs, &spare_vfs, 10).unwrap();
        assert!(reports.last().unwrap().clean());
        let spare_db = Db::open(
            Arc::new(spare_vfs),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let got = spare_db
            .table("t")
            .unwrap()
            .query_all(&Query::all())
            .unwrap();
        // Exactly the primary's 120 rows; the spare's divergent 100 are gone.
        assert_eq!(got.len(), 120);
    }

    #[test]
    fn dropped_tables_disappear_from_spare() {
        let (db, vfs, _clock) = primary();
        let spare = SimVfs::instant();
        db.create_table("gone", schema(), None)
            .unwrap()
            .insert(rows(0..10))
            .unwrap();
        db.flush_all().unwrap();
        sync_until_quiescent(&vfs, &spare, 10).unwrap();
        assert!(spare.exists("gone/DESC"));
        db.drop_table("gone").unwrap();
        sync_until_quiescent(&vfs, &spare, 10).unwrap();
        assert!(!spare.exists("gone/DESC"));
    }
}
