//! On-disk tablets: write-once files of sorted, blocked, compressed rows.
//!
//! Layout (§3.2, §3.5 of the paper):
//!
//! ```text
//! [compressed block 0][compressed block 1]…[compressed footer][trailer]
//! ```
//!
//! The footer holds the schema the tablet was written under, its timespan,
//! row count, optional Bloom filter, and the block index (file offset,
//! sizes, and last key of every block). The fixed-size trailer at the very
//! end of the file records the footer's decompressed size and offset — the
//! paper's "final two words" — plus a compressed size, a CRC, and a magic
//! number for corruption detection. Reading a cold tablet's footer costs
//! three seeks: inode, trailer, footer body.

use crate::block::{Block, BlockBuilder, BlockFormat, ColumnarBlockBuilder};
use crate::bloom::{BloomBuilder, BloomFilter};
use crate::cache::{CacheHandle, CompressedBlock};
use crate::error::{Error, Result};
use crate::keyenc::component_boundaries;
use crate::row::{encode_payload, Row};
use crate::schema::{decode_value, encode_value, Schema};
use crate::stats::TableStats;
use crate::util::{crc32, hash_bytes, put_varint, Reader};
use crate::value::Value;
use littletable_vfs::{Micros, RandomAccessFile, Vfs, WritableFile};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

thread_local! {
    /// Scratch buffer for compressed block bytes, reused across
    /// [`TabletReader::read_block`] calls on the same thread.
    static COMPRESSED_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Largest capacity [`COMPRESSED_SCRATCH`] keeps between reads. One
/// oversized block (a giant row) must not pin its high-water mark on
/// every reader thread forever; anything above this is released after
/// the read that needed it.
const SCRATCH_RETAIN_MAX: usize = 256 << 10;

/// Magic number ending every tablet file.
const TRAILER_MAGIC: u64 = 0x4C54_5441_424C_3031; // "LTTABL01"
/// Trailer byte size: three u64 words, a u32 CRC, and the magic.
const TRAILER_LEN: u64 = 8 + 8 + 8 + 4 + 8;
/// Footer version for row-layout tablets. Version 2 added a per-block
/// CRC32 to each index entry; version-1 tablets (no CRCs) still decode.
const FOOTER_VERSION_ROW: u8 = 2;
/// Footer version for columnar tablets (v3): blocks hold per-column
/// codec-compressed slices, and each index entry additionally records
/// the block's row count and per-column zone maps.
const FOOTER_VERSION_COLUMNAR: u8 = 3;

/// Checks a block's compressed bytes against the CRC recorded in its
/// index entry, catching corruption that would survive decompression —
/// e.g. a flipped bit that still yields output of the expected length.
fn verify_block_crc(compressed: &[u8], crc: Option<u32>) -> Result<()> {
    match crc {
        Some(expected) if crc32(compressed) != expected => {
            Err(Error::corrupt("tablet block checksum mismatch"))
        }
        _ => Ok(()),
    }
}

/// Index entry for one block inside a tablet.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockIndexEntry {
    /// File offset of the compressed block.
    pub offset: u64,
    /// Compressed size in bytes.
    pub compressed_len: u32,
    /// Uncompressed size in bytes.
    pub uncompressed_len: u32,
    /// CRC32 of the compressed bytes, verified on every disk read.
    /// `None` for tablets written before footer version 2: corruption
    /// there is still caught by decompression framing, but a flipped
    /// bit that survives decompression to the right length is not.
    pub crc: Option<u32>,
    /// Rows in the block. Persisted in v3 footers, where it lets
    /// `COUNT` be answered from the index alone; decodes as 0 from
    /// v1/v2 footers (row blocks carry their count in the block header).
    pub rows: u32,
    /// Per-schema-column zone maps `(min, max)`, persisted in v3
    /// footers; empty for v1/v2. `None` marks a column with no
    /// computable zone: strings, blobs, and float slices containing NaN
    /// (a NaN row satisfies no comparison, so a zone over it could
    /// prove predicates that some rows fail).
    pub zones: Vec<Option<(Value, Value)>>,
    /// The last (largest) key in the block.
    pub last_key: Vec<u8>,
}

/// The decoded tablet footer.
#[derive(Debug, Clone)]
pub struct TabletFooter {
    /// Schema version the rows were written under.
    pub schema: Schema,
    /// Smallest row timestamp in the tablet.
    pub min_ts: Micros,
    /// Largest row timestamp in the tablet.
    pub max_ts: Micros,
    /// Total number of rows.
    pub row_count: u64,
    /// Optional Bloom filter over key prefixes.
    pub bloom: Option<BloomFilter>,
    /// Which block layout the tablet's blocks use; determined by the
    /// footer version on disk.
    pub format: BlockFormat,
    /// Per-block index, in key order.
    pub blocks: Vec<BlockIndexEntry>,
}

impl TabletFooter {
    fn encode(&self) -> Vec<u8> {
        let ver = match self.format {
            BlockFormat::Row => FOOTER_VERSION_ROW,
            BlockFormat::Columnar => FOOTER_VERSION_COLUMNAR,
        };
        let mut out = Vec::new();
        out.push(ver);
        self.schema.encode(&mut out);
        put_varint(&mut out, crate::util::zigzag(self.min_ts));
        put_varint(&mut out, crate::util::zigzag(self.max_ts));
        put_varint(&mut out, self.row_count);
        match &self.bloom {
            Some(b) => {
                out.push(1);
                b.encode(&mut out);
            }
            None => out.push(0),
        }
        put_varint(&mut out, self.blocks.len() as u64);
        for b in &self.blocks {
            put_varint(&mut out, b.offset);
            put_varint(&mut out, b.compressed_len as u64);
            put_varint(&mut out, b.uncompressed_len as u64);
            // Presence byte, so re-encoding a version-1 footer (entries
            // without CRCs) never fabricates a checksum of 0.
            match b.crc {
                Some(crc) => {
                    out.push(1);
                    put_varint(&mut out, crc as u64);
                }
                None => out.push(0),
            }
            if ver >= FOOTER_VERSION_COLUMNAR {
                put_varint(&mut out, b.rows as u64);
                for z in &b.zones {
                    match z {
                        Some((lo, hi)) => {
                            out.push(1);
                            encode_value(&mut out, lo);
                            encode_value(&mut out, hi);
                        }
                        None => out.push(0),
                    }
                }
            }
            crate::util::put_len_prefixed(&mut out, &b.last_key);
        }
        out
    }

    fn decode(data: &[u8]) -> Result<TabletFooter> {
        let mut r = Reader::new(data);
        let ver = r.u8()?;
        let format = match ver {
            1 | FOOTER_VERSION_ROW => BlockFormat::Row,
            FOOTER_VERSION_COLUMNAR => BlockFormat::Columnar,
            _ => return Err(Error::corrupt(format!("unknown footer version {ver}"))),
        };
        let schema = Schema::decode(&mut r)?;
        let min_ts = crate::util::unzigzag(r.varint()?);
        let max_ts = crate::util::unzigzag(r.varint()?);
        let row_count = r.varint()?;
        let bloom = match r.u8()? {
            0 => None,
            1 => Some(BloomFilter::decode(&mut r)?),
            t => return Err(Error::corrupt(format!("bad bloom tag {t}"))),
        };
        let nblocks = r.varint()? as usize;
        let mut blocks = Vec::with_capacity(nblocks.min(1 << 20));
        for _ in 0..nblocks {
            let offset = r.varint()?;
            let compressed_len = r.varint()? as u32;
            let uncompressed_len = r.varint()? as u32;
            let crc = if ver >= 2 {
                match r.u8()? {
                    0 => None,
                    1 => Some(r.varint()? as u32),
                    t => return Err(Error::corrupt(format!("bad block crc tag {t}"))),
                }
            } else {
                None
            };
            let (rows, zones) = if ver >= FOOTER_VERSION_COLUMNAR {
                let rows = r.varint()? as u32;
                let mut zones = Vec::with_capacity(schema.columns().len());
                for col in schema.columns() {
                    zones.push(match r.u8()? {
                        0 => None,
                        1 => {
                            let lo = decode_value(&mut r, col.ty)?;
                            let hi = decode_value(&mut r, col.ty)?;
                            Some((lo, hi))
                        }
                        t => return Err(Error::corrupt(format!("bad zone tag {t}"))),
                    });
                }
                (rows, zones)
            } else {
                (0, Vec::new())
            };
            blocks.push(BlockIndexEntry {
                offset,
                compressed_len,
                uncompressed_len,
                crc,
                rows,
                zones,
                last_key: r.len_prefixed()?.to_vec(),
            });
        }
        if !r.is_empty() {
            return Err(Error::corrupt("trailing bytes after footer"));
        }
        Ok(TabletFooter {
            schema,
            min_ts,
            max_ts,
            row_count,
            bloom,
            format,
            blocks,
        })
    }

    /// Approximate resident size in bytes — what caching this footer
    /// costs in memory. Used as its charge in the shared block cache.
    pub fn approx_byte_size(&self) -> usize {
        let mut sz = std::mem::size_of::<TabletFooter>();
        sz += self.schema.columns().len() * 64;
        if let Some(b) = &self.bloom {
            sz += b.byte_size();
        }
        sz += self
            .blocks
            .iter()
            .map(|b| std::mem::size_of::<BlockIndexEntry>() + b.last_key.len() + b.zones.len() * 48)
            .sum::<usize>();
        sz
    }
}

/// Streams sorted rows into a tablet file.
pub struct TabletWriter {
    file: Box<dyn WritableFile>,
    format: BlockFormat,
    block: BlockBuilder,
    /// Columnar block under construction; `Some` iff `format` is
    /// [`BlockFormat::Columnar`].
    colblock: Option<ColumnarBlockBuilder>,
    blocks: Vec<BlockIndexEntry>,
    block_size: usize,
    bloom: Option<BloomBuilder>,
    key_types: Vec<crate::value::ColumnType>,
    schema: Schema,
    min_ts: Micros,
    max_ts: Micros,
    row_count: u64,
    offset: u64,
    last_key: Vec<u8>,
    scratch: Vec<u8>,
    payload_scratch: Vec<u8>,
}

impl TabletWriter {
    /// Starts a tablet at `file`. `block_size` is the uncompressed block
    /// target (64 kB in the paper); `with_bloom` enables the Bloom-filter
    /// extension; `format` picks the row (footer v2) or columnar
    /// (footer v3) block layout.
    pub fn new(
        file: Box<dyn WritableFile>,
        schema: Schema,
        block_size: usize,
        with_bloom: bool,
        format: BlockFormat,
    ) -> Self {
        TabletWriter {
            file,
            format,
            block: BlockBuilder::new(),
            colblock: matches!(format, BlockFormat::Columnar)
                .then(|| ColumnarBlockBuilder::new(&schema)),
            blocks: Vec::new(),
            block_size,
            bloom: with_bloom.then(BloomBuilder::new),
            key_types: schema.key_types(),
            schema,
            min_ts: Micros::MAX,
            max_ts: Micros::MIN,
            row_count: 0,
            offset: 0,
            last_key: Vec::new(),
            scratch: Vec::new(),
            payload_scratch: Vec::new(),
        }
    }

    /// Appends a row under its encoded primary key `key`. Keys must
    /// arrive in strictly ascending order, and `key` must be the
    /// encoding of `row`'s key columns.
    pub fn add_row(&mut self, key: &[u8], row: &Row) -> Result<()> {
        let ts = row.ts(&self.schema)?;
        if (!self.last_key.is_empty() || self.row_count > 0) && key <= self.last_key.as_slice() {
            return Err(Error::invalid(
                "tablet rows must be written in strictly ascending key order",
            ));
        }
        match &mut self.colblock {
            Some(cb) => cb.add(key, row)?,
            None => {
                self.payload_scratch.clear();
                encode_payload(&mut self.payload_scratch, row, &self.schema);
                self.block.add(key, &self.payload_scratch);
            }
        }
        self.row_count += 1;
        self.min_ts = self.min_ts.min(ts);
        self.max_ts = self.max_ts.max(ts);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        if let Some(bloom) = &mut self.bloom {
            for &end in &component_boundaries(key, &self.key_types)? {
                bloom.add_hash(hash_bytes(&key[..end]));
            }
        }
        let est = match &self.colblock {
            Some(cb) => cb.size_estimate(),
            None => self.block.size_estimate(),
        };
        if est >= self.block_size {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        let (raw, last_key, rows, zones) = match &mut self.colblock {
            Some(cb) => {
                if cb.is_empty() {
                    return Ok(());
                }
                let last_key = cb.last_key().to_vec();
                let (raw, zones, rows) = cb.finish();
                (raw, last_key, rows, zones)
            }
            None => {
                if self.block.is_empty() {
                    return Ok(());
                }
                let last_key = self.block.last_key().to_vec();
                let rows = self.block.len() as u32;
                (self.block.finish(), last_key, rows, Vec::new())
            }
        };
        self.scratch.clear();
        littletable_compress::compress_into(&raw, &mut self.scratch);
        self.file.append(&self.scratch)?;
        self.blocks.push(BlockIndexEntry {
            offset: self.offset,
            compressed_len: self.scratch.len() as u32,
            uncompressed_len: raw.len() as u32,
            crc: Some(crc32(&self.scratch)),
            rows,
            zones,
            last_key,
        });
        self.offset += self.scratch.len() as u64;
        Ok(())
    }

    /// Number of rows written so far.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Bytes written to the file so far (excluding the buffered block).
    pub fn bytes_written(&self) -> u64 {
        self.offset
    }

    /// Finishes the tablet: flushes the last block, writes footer and
    /// trailer, and syncs. Returns `(min_ts, max_ts, row_count, file_len)`.
    pub fn finish(mut self) -> Result<(Micros, Micros, u64, u64)> {
        self.flush_block()?;
        let footer = TabletFooter {
            schema: self.schema.clone(),
            min_ts: self.min_ts,
            max_ts: self.max_ts,
            row_count: self.row_count,
            bloom: self.bloom.take().map(|b| b.build(10)),
            format: self.format,
            blocks: std::mem::take(&mut self.blocks),
        };
        let raw = footer.encode();
        let mut compressed = Vec::new();
        littletable_compress::compress_into(&raw, &mut compressed);
        let footer_off = self.offset;
        self.file.append(&compressed)?;
        let mut trailer = Vec::with_capacity(TRAILER_LEN as usize);
        trailer.extend_from_slice(&(raw.len() as u64).to_le_bytes());
        trailer.extend_from_slice(&(compressed.len() as u64).to_le_bytes());
        trailer.extend_from_slice(&footer_off.to_le_bytes());
        trailer.extend_from_slice(&crc32(&compressed).to_le_bytes());
        trailer.extend_from_slice(&TRAILER_MAGIC.to_le_bytes());
        self.file.append(&trailer)?;
        self.file.sync()?;
        let file_len = footer_off + compressed.len() as u64 + TRAILER_LEN;
        Ok((self.min_ts, self.max_ts, self.row_count, file_len))
    }
}

/// Parses an uncompressed block under the layout its tablet's footer
/// declares.
fn parse_block(footer: &TabletFooter, raw: Vec<u8>) -> Result<Block> {
    match footer.format {
        BlockFormat::Row => Block::parse(raw),
        BlockFormat::Columnar => Block::parse_columnar(raw, &footer.schema),
    }
}

/// A readable on-disk tablet. The footer is loaded lazily on first use.
/// When the reader is attached to the shared cache, the footer lives
/// there under its own charge class, bounded by the joint cache budget
/// and reclaimable under memory pressure; without a cache it is pinned
/// for the lifetime of the reader — LittleTable keeps footers in memory
/// "almost indefinitely" (§3.2); after a restart (or an eviction) they
/// reload on demand (§3.5).
pub struct TabletReader {
    vfs: Arc<dyn Vfs>,
    path: String,
    file: Mutex<Option<Arc<dyn RandomAccessFile>>>,
    /// Per-reader footer pin, used only when no shared cache is
    /// attached (the paper's unbounded behavior, faithful but unbounded
    /// at very high tablet counts).
    footer_local: OnceLock<Arc<TabletFooter>>,
    /// Connection to the shared two-tier block cache; `None` runs
    /// every block read straight off disk.
    cache: Option<CacheHandle>,
}

impl TabletReader {
    /// Creates a lazy reader for the tablet at `path`. No I/O happens until
    /// the footer or a block is first requested.
    pub fn new(vfs: Arc<dyn Vfs>, path: String) -> Self {
        TabletReader {
            vfs,
            path,
            file: Mutex::new(None),
            footer_local: OnceLock::new(),
            cache: None,
        }
    }

    /// As [`TabletReader::new`], attached to the shared block cache under
    /// a freshly allocated tablet id.
    pub(crate) fn with_cache(vfs: Arc<dyn Vfs>, path: String, cache: Option<CacheHandle>) -> Self {
        TabletReader {
            vfs,
            path,
            file: Mutex::new(None),
            footer_local: OnceLock::new(),
            cache,
        }
    }

    /// The tablet's path within the VFS.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Annotates a corruption error with this tablet's path — and the
    /// block index when one is in play — so quarantine logs name the
    /// damaged file instead of just the symptom.
    fn ctx(&self, block: Option<usize>, e: Error) -> Error {
        match (e, block) {
            (Error::Corrupt(msg), Some(bi)) => {
                Error::Corrupt(format!("{} block {bi}: {msg}", self.path))
            }
            (Error::Corrupt(msg), None) => Error::Corrupt(format!("{}: {msg}", self.path)),
            (e, _) => e,
        }
    }

    fn file(&self) -> Result<Arc<dyn RandomAccessFile>> {
        let mut guard = self.file.lock();
        if let Some(f) = &*guard {
            return Ok(f.clone());
        }
        let f: Arc<dyn RandomAccessFile> = Arc::from(self.vfs.open(&self.path)?);
        *guard = Some(f.clone());
        Ok(f)
    }

    /// The footer, loading (3 seeks) and caching it on first call. With
    /// a shared cache attached the footer is cached there — bounded by
    /// the joint budget and reloadable after eviction; otherwise it is
    /// pinned in this reader for its lifetime.
    pub fn footer(&self) -> Result<Arc<TabletFooter>> {
        if let Some(cache) = &self.cache {
            if let Some(f) = cache.cache.get_footer(cache.tablet_id) {
                return Ok(f);
            }
            let loaded = Arc::new(self.load_footer()?);
            cache
                .cache
                .insert_footer(cache.tablet_id, loaded.clone(), &cache.stats);
            return Ok(loaded);
        }
        if let Some(f) = self.footer_local.get() {
            return Ok(f.clone());
        }
        let loaded = Arc::new(self.load_footer()?);
        Ok(self.footer_local.get_or_init(|| loaded).clone())
    }

    /// True when the footer is currently resident in memory (in the
    /// shared cache, or pinned locally when no cache is attached).
    pub fn footer_cached(&self) -> bool {
        match &self.cache {
            Some(c) => c.cache.footer_resident(c.tablet_id),
            None => self.footer_local.get().is_some(),
        }
    }

    fn load_footer(&self) -> Result<TabletFooter> {
        self.load_footer_inner().map_err(|e| self.ctx(None, e))
    }

    fn load_footer_inner(&self) -> Result<TabletFooter> {
        let file = self.file()?;
        let len = file.len()?;
        if len < TRAILER_LEN {
            return Err(Error::corrupt("tablet shorter than its trailer"));
        }
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact_at(len - TRAILER_LEN, &mut trailer)?;
        let mut r = Reader::new(&trailer);
        let uncompressed_len = r.u64()?;
        let compressed_len = r.u64()?;
        let footer_off = r.u64()?;
        let crc = r.u32()?;
        let magic = r.u64()?;
        if magic != TRAILER_MAGIC {
            return Err(Error::corrupt("bad tablet magic"));
        }
        // All three words come off disk: a corrupt trailer must yield a
        // corruption error, never an overflow panic in debug builds.
        let expected_len = footer_off
            .checked_add(compressed_len)
            .and_then(|n| n.checked_add(TRAILER_LEN));
        if expected_len != Some(len) {
            return Err(Error::corrupt("tablet trailer geometry mismatch"));
        }
        if uncompressed_len > (1 << 31) || compressed_len > (1 << 31) {
            return Err(Error::corrupt("implausible footer size"));
        }
        let mut compressed = vec![0u8; compressed_len as usize];
        file.read_exact_at(footer_off, &mut compressed)?;
        if crc32(&compressed) != crc {
            return Err(Error::corrupt("tablet footer checksum mismatch"));
        }
        let raw = littletable_compress::decompress(&compressed, uncompressed_len as usize)?;
        TabletFooter::decode(&raw)
    }

    /// Reads and decompresses a *run* of consecutive blocks starting at
    /// `start`, fetching up to `max_bytes` of compressed data in one
    /// contiguous read. §3.4.1 of the paper: to spend at most half its
    /// time seeking, LittleTable must read about 1 MB at a time; merges
    /// read through tablets with exactly such buffers.
    pub fn read_block_run(&self, start: usize, max_bytes: usize) -> Result<Vec<Block>> {
        let footer = self.footer()?;
        if start >= footer.blocks.len() {
            return Err(self.ctx(Some(start), Error::corrupt("block index out of range")));
        }
        let first_off = footer.blocks[start].offset;
        let mut spans = Vec::new();
        let mut total = 0usize;
        for e in &footer.blocks[start..] {
            if !spans.is_empty() && total + e.compressed_len as usize > max_bytes {
                break;
            }
            total += e.compressed_len as usize;
            spans.push((
                e.compressed_len as usize,
                e.uncompressed_len as usize,
                e.crc,
            ));
        }
        let file = self.file()?;
        let mut buf = vec![0u8; total];
        file.read_exact_at(first_off, &mut buf)?;
        let mut blocks = Vec::with_capacity(spans.len());
        let mut off = 0usize;
        for (bi, (clen, ulen, crc)) in spans.into_iter().enumerate() {
            let block = (|| {
                verify_block_crc(&buf[off..off + clen], crc)?;
                let raw = littletable_compress::decompress(&buf[off..off + clen], ulen)?;
                parse_block(&footer, raw)
            })()
            .map_err(|e| self.ctx(Some(start + bi), e))?;
            blocks.push(block);
            off += clen;
        }
        Ok(blocks)
    }

    /// Reads and decompresses block `i`, consulting the shared two-tier
    /// cache when this reader is attached to one. Decompressed-tier hits
    /// return the cached `Arc` without touching disk; compressed-tier
    /// hits pay one decompress (never a seek) and promote the block back
    /// up; full misses read, decompress (no cache lock held for either),
    /// then admit the block with its compressed bytes retained for a
    /// future demotion.
    pub fn read_block(&self, i: usize) -> Result<Arc<Block>> {
        let Some(cache) = &self.cache else {
            return Ok(Arc::new(self.read_block_from_disk(i)?));
        };
        let bi = i as u32;
        if let Some(block) = cache.cache.get(cache.tablet_id, bi) {
            TableStats::add(&cache.stats.cache_hits, 1);
            return Ok(block);
        }
        if let Some(c) = cache.cache.take_compressed(cache.tablet_id, bi) {
            TableStats::add(&cache.stats.cache_compressed_hits, 1);
            let footer = self.footer()?;
            let block = (|| {
                let raw = littletable_compress::decompress(&c.bytes, c.uncompressed_len as usize)?;
                parse_block(&footer, raw)
            })()
            .map_err(|e| self.ctx(Some(i), e))?;
            let block = Arc::new(block);
            cache
                .cache
                .insert(cache.tablet_id, bi, block.clone(), Some(c), &cache.stats);
            return Ok(block);
        }
        TableStats::add(&cache.stats.cache_misses, 1);
        let (block, compressed) = self.read_block_keeping_compressed(i)?;
        let block = Arc::new(block);
        cache.cache.insert(
            cache.tablet_id,
            bi,
            block.clone(),
            Some(compressed),
            &cache.stats,
        );
        Ok(block)
    }

    /// Copies block `i`'s index scalars out under the footer borrow
    /// instead of cloning the whole entry (whose last_key would
    /// allocate). Returns `(offset, compressed_len, uncompressed_len, crc)`.
    fn block_extent(footer: &TabletFooter, i: usize) -> Result<(u64, usize, usize, Option<u32>)> {
        let e = footer
            .blocks
            .get(i)
            .ok_or_else(|| Error::corrupt("block index out of range"))?;
        Ok((
            e.offset,
            e.compressed_len as usize,
            e.uncompressed_len as usize,
            e.crc,
        ))
    }

    /// The uncached read path: reuses a thread-local scratch buffer so
    /// steady-state reads allocate nothing for the compressed bytes.
    fn read_block_from_disk(&self, i: usize) -> Result<Block> {
        let footer = self.footer()?;
        let (offset, compressed_len, uncompressed_len, crc) =
            Self::block_extent(&footer, i).map_err(|e| self.ctx(Some(i), e))?;
        let file = self.file()?;
        COMPRESSED_SCRATCH
            .with(|scratch| {
                let mut compressed = scratch.borrow_mut();
                compressed.resize(compressed_len, 0);
                let block = (|| {
                    file.read_exact_at(offset, &mut compressed)?;
                    verify_block_crc(&compressed, crc)?;
                    let raw = littletable_compress::decompress(&compressed, uncompressed_len)?;
                    parse_block(&footer, raw)
                })();
                // Cap the retained capacity: one oversized block must not pin
                // its high-water mark on this thread forever.
                if compressed.capacity() > SCRATCH_RETAIN_MAX {
                    compressed.clear();
                    compressed.shrink_to(SCRATCH_RETAIN_MAX);
                }
                block
            })
            .map_err(|e| self.ctx(Some(i), e))
    }

    /// The cached miss path: reads into a fresh buffer that becomes the
    /// cache's retained compressed copy (so the allocation is the cache
    /// fill, not churn).
    fn read_block_keeping_compressed(&self, i: usize) -> Result<(Block, CompressedBlock)> {
        let footer = self.footer()?;
        let (offset, compressed_len, uncompressed_len, crc) =
            Self::block_extent(&footer, i).map_err(|e| self.ctx(Some(i), e))?;
        let file = self.file()?;
        let mut compressed = vec![0u8; compressed_len];
        file.read_exact_at(offset, &mut compressed)?;
        let block = (|| {
            verify_block_crc(&compressed, crc)?;
            let raw = littletable_compress::decompress(&compressed, uncompressed_len)?;
            parse_block(&footer, raw)
        })()
        .map_err(|e| self.ctx(Some(i), e))?;
        Ok((
            block,
            CompressedBlock {
                bytes: compressed.into(),
                uncompressed_len: uncompressed_len as u32,
            },
        ))
    }

    /// Index of the first block that could contain `key` (i.e. the first
    /// block whose last key is ≥ `key`). Returns `num_blocks` when `key` is
    /// beyond every block.
    pub fn seek_block(&self, key: &[u8]) -> Result<usize> {
        let footer = self.footer()?;
        let blocks = &footer.blocks;
        let mut lo = 0usize;
        let mut hi = blocks.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if blocks[mid].last_key.as_slice() < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

impl Drop for TabletReader {
    /// Invalidation point for the block cache: a reader is dropped
    /// exactly when its tablet leaves service (merged away, TTL-expired,
    /// bulk-deleted, migrated, or the table is dropped) and no cursor
    /// still holds it.
    fn drop(&mut self) {
        if let Some(cache) = &self.cache {
            cache.cache.invalidate_tablet(cache.tablet_id);
        }
    }
}

impl std::fmt::Debug for TabletReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabletReader")
            .field("path", &self.path)
            .field("footer_cached", &self.footer_cached())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::ColumnDef;
    use crate::value::{ColumnType, Value};
    use littletable_vfs::SimVfs;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("v", ColumnType::Str),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    fn write_tablet_as(
        vfs: &SimVfs,
        path: &str,
        n: i64,
        bloom: bool,
        format: BlockFormat,
    ) -> Schema {
        let s = schema();
        let file = vfs.create(path, 0).unwrap();
        let mut w = TabletWriter::new(file, s.clone(), 4096, bloom, format);
        for i in 0..n {
            let row = Row::new(vec![
                Value::I64(i),
                Value::Timestamp(1000 + i),
                Value::Str(format!("val-{i}")),
            ]);
            let key = row.encode_key(&s).unwrap();
            w.add_row(&key, &row).unwrap();
        }
        let (min_ts, max_ts, rows, len) = w.finish().unwrap();
        assert_eq!(min_ts, 1000);
        assert_eq!(max_ts, 1000 + n - 1);
        assert_eq!(rows, n as u64);
        assert_eq!(len, vfs.file_size(path).unwrap());
        s
    }

    fn write_tablet(vfs: &SimVfs, path: &str, n: i64, bloom: bool) -> Schema {
        write_tablet_as(vfs, path, n, bloom, BlockFormat::Row)
    }

    #[test]
    fn write_read_round_trip() {
        let vfs = SimVfs::instant();
        let s = write_tablet(&vfs, "t.lt", 500, true);
        let r = TabletReader::new(Arc::new(vfs), "t.lt".into());
        let footer = r.footer().unwrap();
        assert_eq!(footer.row_count, 500);
        assert!(footer.blocks.len() > 1, "should span multiple blocks");
        assert_eq!(footer.schema, s);
        // Read every row back through the blocks.
        let mut seen = 0i64;
        for i in 0..footer.blocks.len() {
            let blk = r.read_block(i).unwrap();
            for j in 0..blk.len() {
                let (key, payload) = blk.entry(j).unwrap();
                let row = crate::row::decode_row(key, payload, &s).unwrap();
                assert_eq!(row.values[0], Value::I64(seen));
                seen += 1;
            }
        }
        assert_eq!(seen, 500);
    }

    #[test]
    fn out_of_order_add_fails() {
        let vfs = SimVfs::instant();
        let s = schema();
        let mut w = TabletWriter::new(
            vfs.create("t", 0).unwrap(),
            s.clone(),
            4096,
            false,
            BlockFormat::Columnar,
        );
        let row_at = |i: i64| {
            Row::new(vec![
                Value::I64(i),
                Value::Timestamp(i),
                Value::Str(String::new()),
            ])
        };
        let key_at = |i: i64| row_at(i).encode_key(&s).unwrap();
        w.add_row(&key_at(2), &row_at(2)).unwrap();
        assert!(w.add_row(&key_at(1), &row_at(1)).is_err());
        assert!(w.add_row(&key_at(2), &row_at(2)).is_err()); // equal also fails
    }

    #[test]
    fn seek_block_locates_keys() {
        let vfs = SimVfs::instant();
        let s = write_tablet(&vfs, "t.lt", 1000, false);
        let r = TabletReader::new(Arc::new(vfs), "t.lt".into());
        let nblocks = r.footer().unwrap().blocks.len();
        // A key in the middle must land in a valid block containing it.
        let row = Row::new(vec![
            Value::I64(500),
            Value::Timestamp(1500),
            Value::Str(String::new()),
        ]);
        let key = row.encode_key(&s).unwrap();
        let bi = r.seek_block(&key).unwrap();
        assert!(bi < nblocks);
        let blk = r.read_block(bi).unwrap();
        let idx = blk.seek_ge(&key).unwrap();
        let (found, _) = blk.entry(idx).unwrap();
        assert_eq!(found, key.as_slice());
        // A key beyond everything seeks past the last block.
        let big = Row::new(vec![
            Value::I64(i64::MAX),
            Value::Timestamp(0),
            Value::Str(String::new()),
        ]);
        assert_eq!(r.seek_block(&big.encode_key(&s).unwrap()).unwrap(), nblocks);
    }

    #[test]
    fn bloom_filter_covers_prefixes() {
        let vfs = SimVfs::instant();
        let s = write_tablet(&vfs, "t.lt", 100, true);
        let r = TabletReader::new(Arc::new(vfs), "t.lt".into());
        let bloom = r.footer().unwrap().bloom.clone().unwrap();
        // The full prefix (n=50) must be present.
        let p = crate::keyenc::encode_prefix(&[Value::I64(50)], &s.key_types()).unwrap();
        assert!(bloom.may_contain(hash_bytes(&p)));
        // A prefix that never occurred should (almost surely) be absent.
        let p = crate::keyenc::encode_prefix(&[Value::I64(123_456)], &s.key_types()).unwrap();
        assert!(!bloom.may_contain(hash_bytes(&p)));
    }

    #[test]
    fn corrupt_trailer_is_detected() {
        let vfs = SimVfs::instant();
        write_tablet(&vfs, "t.lt", 10, false);
        // Truncate the file: rewrite without the last byte.
        let f = vfs.open("t.lt").unwrap();
        let len = f.len().unwrap();
        let mut all = vec![0u8; len as usize];
        f.read_exact_at(0, &mut all).unwrap();
        let mut w = vfs.create("bad.lt", 0).unwrap();
        all[len as usize - 10] ^= 0xFF; // flip a magic byte
        w.append(&all).unwrap();
        drop(w);
        let r = TabletReader::new(Arc::new(vfs), "bad.lt".into());
        assert!(r.footer().is_err());
    }

    #[test]
    fn corrupt_trailer_geometry_overflow_is_detected() {
        // A trailer whose footer_off is near u64::MAX used to overflow
        // the geometry sum (a panic under debug overflow checks); it must
        // be a corruption error.
        let vfs = SimVfs::instant();
        write_tablet(&vfs, "t.lt", 10, false);
        let f = vfs.open("t.lt").unwrap();
        let len = f.len().unwrap() as usize;
        let mut all = vec![0u8; len];
        f.read_exact_at(0, &mut all).unwrap();
        // Trailer layout: [ulen u64][clen u64][footer_off u64][crc][magic].
        let off_pos = len - TRAILER_LEN as usize + 16;
        all[off_pos..off_pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut w = vfs.create("bad.lt", 0).unwrap();
        w.append(&all).unwrap();
        drop(w);
        let r = TabletReader::new(Arc::new(vfs), "bad.lt".into());
        assert!(matches!(r.footer(), Err(Error::Corrupt(_))));
    }

    #[test]
    fn scratch_capacity_is_capped_after_oversized_reads() {
        let vfs = SimVfs::instant();
        let s = schema();
        let mut w = TabletWriter::new(
            vfs.create("big.lt", 0).unwrap(),
            s.clone(),
            4096,
            false,
            BlockFormat::Row,
        );
        // One incompressible megabyte-sized row, forcing a block whose
        // compressed form far exceeds the scratch retention cap.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut payload = String::with_capacity(1 << 20);
        for _ in 0..(1 << 20) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            payload.push((b' ' + (state >> 57) as u8 % 95) as char);
        }
        let row = Row::new(vec![
            Value::I64(0),
            Value::Timestamp(1000),
            Value::Str(payload),
        ]);
        let key = row.encode_key(&s).unwrap();
        w.add_row(&key, &row).unwrap();
        w.finish().unwrap();
        let r = TabletReader::new(Arc::new(vfs), "big.lt".into());
        let footer = r.footer().unwrap();
        assert!(
            footer.blocks[0].compressed_len as usize > SCRATCH_RETAIN_MAX,
            "test needs a block larger than the retention cap"
        );
        r.read_block(0).unwrap();
        COMPRESSED_SCRATCH.with(|scratch| {
            assert!(
                scratch.borrow().capacity() <= SCRATCH_RETAIN_MAX,
                "scratch must shed an oversized read's capacity"
            );
        });
    }

    #[test]
    fn corrupt_footer_checksum_is_detected() {
        let vfs = SimVfs::instant();
        write_tablet(&vfs, "t.lt", 10, false);
        let f = vfs.open("t.lt").unwrap();
        let len = f.len().unwrap() as usize;
        let mut all = vec![0u8; len];
        f.read_exact_at(0, &mut all).unwrap();
        // Flip a byte inside the footer (just before the trailer).
        all[len - TRAILER_LEN as usize - 2] ^= 0x01;
        let mut w = vfs.create("bad.lt", 0).unwrap();
        w.append(&all).unwrap();
        drop(w);
        let r = TabletReader::new(Arc::new(vfs), "bad.lt".into());
        assert!(matches!(r.footer(), Err(Error::Corrupt(_))));
    }

    #[test]
    fn footer_loads_lazily_and_caches() {
        let vfs = SimVfs::instant();
        write_tablet(&vfs, "t.lt", 10, false);
        let r = TabletReader::new(Arc::new(vfs), "t.lt".into());
        assert!(!r.footer_cached());
        r.footer().unwrap();
        assert!(r.footer_cached());
    }

    #[test]
    fn empty_tablet_round_trips() {
        let vfs = SimVfs::instant();
        let s = schema();
        let w = TabletWriter::new(
            vfs.create("e.lt", 0).unwrap(),
            s,
            4096,
            true,
            BlockFormat::Columnar,
        );
        let (_, _, rows, _) = w.finish().unwrap();
        assert_eq!(rows, 0);
        let r = TabletReader::new(Arc::new(vfs), "e.lt".into());
        let footer = r.footer().unwrap();
        assert_eq!(footer.row_count, 0);
        assert_eq!(footer.format, BlockFormat::Columnar);
        assert!(footer.blocks.is_empty());
    }

    #[test]
    fn columnar_write_read_round_trip() {
        let vfs = SimVfs::instant();
        let s = write_tablet_as(&vfs, "c.lt", 500, true, BlockFormat::Columnar);
        let r = TabletReader::new(Arc::new(vfs), "c.lt".into());
        let footer = r.footer().unwrap();
        assert_eq!(footer.format, BlockFormat::Columnar);
        assert_eq!(footer.row_count, 500);
        assert!(footer.blocks.len() > 1, "should span multiple blocks");
        let mut seen = 0i64;
        for (bi, entry) in footer.blocks.iter().enumerate() {
            let blk = r.read_block(bi).unwrap();
            assert_eq!(blk.len(), entry.rows as usize);
            // Zones cover the numeric columns of this block exactly.
            assert_eq!(entry.zones.len(), 3);
            assert_eq!(
                entry.zones[0],
                Some((Value::I64(seen), Value::I64(seen + blk.len() as i64 - 1)))
            );
            assert_eq!(
                entry.zones[1],
                Some((
                    Value::Timestamp(1000 + seen),
                    Value::Timestamp(1000 + seen + blk.len() as i64 - 1)
                ))
            );
            assert_eq!(entry.zones[2], None); // string column: no zone
            for j in 0..blk.len() {
                let row = blk.row(j, &s).unwrap();
                assert_eq!(row.values[0], Value::I64(seen));
                assert_eq!(row.values[2], Value::Str(format!("val-{seen}")));
                seen += 1;
            }
            // Columnar blocks hand out typed slices without row
            // materialization, and refuse the row-entry accessor.
            assert!(blk.column(1).is_some());
            assert!(blk.entry(0).is_err());
        }
        assert_eq!(seen, 500);
    }

    #[test]
    fn columnar_seek_block_and_key() {
        let vfs = SimVfs::instant();
        let s = write_tablet_as(&vfs, "c.lt", 1000, false, BlockFormat::Columnar);
        let r = TabletReader::new(Arc::new(vfs), "c.lt".into());
        let row = Row::new(vec![
            Value::I64(500),
            Value::Timestamp(1500),
            Value::Str(String::new()),
        ]);
        let key = row.encode_key(&s).unwrap();
        let bi = r.seek_block(&key).unwrap();
        let blk = r.read_block(bi).unwrap();
        let idx = blk.seek_ge(&key).unwrap();
        assert_eq!(blk.key(idx).unwrap(), key.as_slice());
        assert_eq!(blk.row(idx, &s).unwrap().values[0], Value::I64(500));
    }

    #[test]
    fn corrupt_block_errors_name_tablet_and_block() {
        let vfs = SimVfs::instant();
        write_tablet_as(&vfs, "t.lt", 200, false, BlockFormat::Columnar);
        let f = vfs.open("t.lt").unwrap();
        let len = f.len().unwrap() as usize;
        let mut all = vec![0u8; len];
        f.read_exact_at(0, &mut all).unwrap();
        all[3] ^= 0x40; // inside block 0's compressed bytes
        let mut w = vfs.create("bad.lt", 0).unwrap();
        w.append(&all).unwrap();
        drop(w);
        let r = TabletReader::new(Arc::new(vfs), "bad.lt".into());
        match r.read_block(0) {
            Err(Error::Corrupt(msg)) => {
                assert!(
                    msg.contains("bad.lt") && msg.contains("block 0"),
                    "error should name the tablet and block: {msg}"
                );
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_footer_errors_name_tablet() {
        let vfs = SimVfs::instant();
        write_tablet(&vfs, "t.lt", 10, false);
        let f = vfs.open("t.lt").unwrap();
        let len = f.len().unwrap() as usize;
        let mut all = vec![0u8; len];
        f.read_exact_at(0, &mut all).unwrap();
        all[len - TRAILER_LEN as usize - 2] ^= 0x01;
        let mut w = vfs.create("bad.lt", 0).unwrap();
        w.append(&all).unwrap();
        drop(w);
        let r = TabletReader::new(Arc::new(vfs), "bad.lt".into());
        match r.footer() {
            Err(Error::Corrupt(msg)) => {
                assert!(
                    msg.contains("bad.lt"),
                    "error should name the tablet: {msg}"
                );
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }
}
