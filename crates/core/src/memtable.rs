//! In-memory (filling) tablets.
//!
//! Newly inserted rows land in an in-memory tablet — one per active time
//! period (§3.4.3) — implemented as an ordered map from encoded primary key
//! to row. When a tablet reaches the configured size or age limit it is
//! marked read-only and flushed wholesale to disk as one on-disk tablet.

use crate::keyenc::KeyRange;
use crate::row::Row;
use crate::schema::SchemaRef;
use littletable_vfs::Micros;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Engine-unique id for an in-memory tablet, used by the flush-dependency
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemTabletId(pub u64);

/// A row plus the table-wide insert sequence number it committed at.
/// Readers snapshot "all rows with `seq < cutoff`", which lets a query
/// assemble a consistent cross-tablet view while holding only one
/// tablet's lock at a time.
#[derive(Debug, Clone)]
struct MemRow {
    row: Row,
    seq: u64,
}

/// One filling tablet.
#[derive(Debug)]
pub struct MemTablet {
    id: MemTabletId,
    /// The table schema rows in this tablet were written under. Schema
    /// evolutions seal all filling tablets, so one tablet never mixes
    /// schema versions.
    schema: SchemaRef,
    rows: BTreeMap<Vec<u8>, MemRow>,
    bytes: usize,
    /// Clock time of the first insert, for the age-based flush trigger.
    first_insert_at: Micros,
    min_ts: Micros,
    max_ts: Micros,
}

impl MemTablet {
    /// Creates an empty tablet; `now` stamps the age-trigger start.
    pub fn new(id: MemTabletId, now: Micros, schema: SchemaRef) -> Self {
        MemTablet {
            id,
            schema,
            rows: BTreeMap::new(),
            bytes: 0,
            first_insert_at: now,
            min_ts: Micros::MAX,
            max_ts: Micros::MIN,
        }
    }

    /// This tablet's id.
    pub fn id(&self) -> MemTabletId {
        self.id
    }

    /// The schema this tablet's rows were written under.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Iterates all rows in ascending key order without cloning.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Row)> {
        self.rows.iter().map(|(k, m)| (k, &m.row))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been inserted.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate memory footprint of the stored rows.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Clock time of the first insert.
    pub fn first_insert_at(&self) -> Micros {
        self.first_insert_at
    }

    /// Smallest row timestamp, or `None` when empty.
    pub fn min_ts(&self) -> Option<Micros> {
        (!self.is_empty()).then_some(self.min_ts)
    }

    /// Largest row timestamp, or `None` when empty.
    pub fn max_ts(&self) -> Option<Micros> {
        (!self.is_empty()).then_some(self.max_ts)
    }

    /// Largest encoded key present.
    pub fn max_key(&self) -> Option<&[u8]> {
        self.rows.keys().next_back().map(|k| k.as_slice())
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.rows.contains_key(key)
    }

    /// Inserts a row under its encoded key, stamped with the table-wide
    /// insert sequence number `seq`. The caller has already checked
    /// uniqueness table-wide; within one tablet a duplicate is a logic
    /// error.
    pub fn insert(&mut self, key: Vec<u8>, row: Row, ts: Micros, seq: u64) {
        self.bytes += key.len() + row.mem_size();
        self.min_ts = self.min_ts.min(ts);
        self.max_ts = self.max_ts.max(ts);
        let prev = self.rows.insert(key, MemRow { row, seq });
        debug_assert!(prev.is_none(), "duplicate key reached the memtable");
    }

    /// Snapshots the rows inside `range` (and every row when `range` is
    /// unbounded) whose insert sequence number is below `before_seq`, in
    /// ascending key order. Pass [`u64::MAX`] to see everything.
    pub fn snapshot_range(&self, range: &KeyRange, before_seq: u64) -> Vec<(Vec<u8>, Row)> {
        let lo: Bound<&[u8]> = match &range.start {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(k) => Bound::Included(k.as_slice()),
            Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        };
        let hi: Bound<&[u8]> = match &range.end {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(k) => Bound::Included(k.as_slice()),
            Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        };
        self.rows
            .range::<[u8], _>((lo, hi))
            .filter(|(_, m)| m.seq < before_seq)
            .map(|(k, m)| (k.clone(), m.row.clone()))
            .collect()
    }

    /// Drains the tablet into sorted `(key, row)` pairs for flushing.
    pub fn into_sorted_rows(self) -> Vec<(Vec<u8>, Row)> {
        self.rows.into_iter().map(|(k, m)| (k, m.row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn test_schema() -> SchemaRef {
        use crate::schema::{ColumnDef, Schema};
        use crate::value::ColumnType;
        std::sync::Arc::new(
            Schema::new(
                vec![
                    ColumnDef::new("n", ColumnType::I64),
                    ColumnDef::new("ts", ColumnType::Timestamp),
                ],
                &["n", "ts"],
            )
            .unwrap(),
        )
    }

    fn row(n: i64, ts: Micros) -> (Vec<u8>, Row, Micros) {
        let row = Row::new(vec![Value::I64(n), Value::Timestamp(ts)]);
        let mut key = Vec::new();
        crate::keyenc::encode_component(&mut key, &Value::I64(n)).unwrap();
        crate::keyenc::encode_component(&mut key, &Value::Timestamp(ts)).unwrap();
        (key, row, ts)
    }

    #[test]
    fn tracks_size_and_timespan() {
        let mut t = MemTablet::new(MemTabletId(1), 1000, test_schema());
        assert!(t.is_empty());
        for (n, ts) in [(3, 30), (1, 10), (2, 20)] {
            let (k, r, ts) = row(n, ts);
            t.insert(k, r, ts, 0);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.min_ts(), Some(10));
        assert_eq!(t.max_ts(), Some(30));
        assert!(t.bytes() > 0);
        assert_eq!(t.first_insert_at(), 1000);
    }

    #[test]
    fn rows_come_out_sorted() {
        let mut t = MemTablet::new(MemTabletId(1), 0, test_schema());
        for n in [5i64, 1, 9, 3] {
            let (k, r, ts) = row(n, 100);
            t.insert(k, r, ts, 0);
        }
        let sorted = t.into_sorted_rows();
        let keys: Vec<_> = sorted.iter().map(|(k, _)| k.clone()).collect();
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(keys, expect);
    }

    #[test]
    fn snapshot_range_filters() {
        let mut t = MemTablet::new(MemTabletId(1), 0, test_schema());
        for n in 0..10i64 {
            let (k, r, ts) = row(n, 100);
            t.insert(k, r, ts, n as u64);
        }
        let (lo, _, _) = row(3, 100);
        let (hi, _, _) = row(6, 100);
        let range = KeyRange {
            start: Bound::Included(lo),
            end: Bound::Excluded(hi),
        };
        let snap = t.snapshot_range(&range, u64::MAX);
        assert_eq!(snap.len(), 3);
        let all = t.snapshot_range(&KeyRange::all(), u64::MAX);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn snapshot_range_honours_seq_cutoff() {
        let mut t = MemTablet::new(MemTabletId(1), 0, test_schema());
        for n in 0..10i64 {
            let (k, r, ts) = row(n, 100);
            t.insert(k, r, ts, 100 + n as u64);
        }
        // Rows stamped at or after the cutoff are invisible to the
        // snapshot, as if the reader had started before they committed.
        let snap = t.snapshot_range(&KeyRange::all(), 104);
        assert_eq!(snap.len(), 4);
        assert!(t.snapshot_range(&KeyRange::all(), 100).is_empty());
        assert_eq!(t.snapshot_range(&KeyRange::all(), u64::MAX).len(), 10);
    }

    #[test]
    fn max_key_is_last() {
        let mut t = MemTablet::new(MemTabletId(1), 0, test_schema());
        assert!(t.max_key().is_none());
        let (k1, r1, ts) = row(1, 100);
        let (k2, r2, _) = row(2, 100);
        t.insert(k2.clone(), r2, ts, 0);
        t.insert(k1.clone(), r1, ts, 1);
        assert_eq!(t.max_key().unwrap(), k2.as_slice());
        assert!(t.contains_key(&k1));
    }
}
