//! One LittleTable table: insert path, uniqueness enforcement, flushing
//! with dependency ordering, queries, latest-row-for-prefix, merging, TTL
//! expiry, and schema evolution.

use crate::cache::{BlockCache, CacheHandle};
use crate::cursor::{DiskCursor, MemSource, MergeCursor, RowSource};
use crate::descriptor::{
    parse_tablet_file_name, tablet_file_name, TableDescriptor, TabletMeta, DESC_FILE, DESC_TMP,
};
use crate::error::{Error, Result};
use crate::flushdeps::FlushDeps;
use crate::keyenc::{encode_prefix, KeyRange};
use crate::memtable::{MemTablet, MemTabletId};
use crate::mergepolicy::find_merge;
use crate::options::Options;
use crate::period::{period_for, Period, PeriodKind};
use crate::query::Query;
use crate::row::{encode_payload, Row};
use crate::schema::{Schema, SchemaRef};
use crate::stats::TableStats;
use crate::tablet::{TabletReader, TabletWriter};
use crate::util::hash_bytes;
use crate::value::Value;
use littletable_vfs::{join, Clock, Micros, Vfs};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Outcome of an insert batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertReport {
    /// Rows accepted.
    pub inserted: usize,
    /// Rows rejected because their primary key already existed.
    pub duplicates: usize,
}

/// Outcome of one maintenance pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// In-memory tablets sealed because of age.
    pub sealed_by_age: usize,
    /// Sealed groups flushed to disk.
    pub groups_flushed: usize,
    /// Merges performed (0 or 1 per pass).
    pub merges: usize,
    /// On-disk tablets removed by TTL expiry.
    pub tablets_expired: usize,
}

#[derive(Clone)]
struct DiskHandle {
    meta: TabletMeta,
    reader: Arc<TabletReader>,
}

struct SealedGroup {
    id: u64,
    tablets: Vec<Arc<MemTablet>>,
    flushing: bool,
}

struct TableState {
    schema: SchemaRef,
    ttl: Option<Micros>,
    next_tablet_id: u64,
    next_mem_id: u64,
    next_group_id: u64,
    filling: HashMap<Period, MemTablet>,
    last_insert: Option<MemTabletId>,
    deps: FlushDeps,
    sealed: VecDeque<SealedGroup>,
    disk: Vec<DiskHandle>,
    /// Largest row timestamp present (durable or in memory), for the
    /// newest-timestamp uniqueness fast path.
    max_ts: Micros,
    merge_running: bool,
    dropped: bool,
}

impl TableState {
    fn sort_disk(&mut self) {
        self.disk.sort_by_key(|h| (h.meta.min_ts, h.meta.id));
    }

    fn metas(&self) -> Vec<TabletMeta> {
        self.disk.iter().map(|h| h.meta.clone()).collect()
    }

    /// True when any in-memory tablet (filling or sealed) holds `key`.
    /// Only tablets whose timespan contains `ts` can hold it, since the
    /// timestamp is part of the key.
    fn mem_contains(&self, key: &[u8], ts: Micros) -> bool {
        let covers = |t: &MemTablet| match (t.min_ts(), t.max_ts()) {
            (Some(lo), Some(hi)) => lo <= ts && ts <= hi,
            _ => false,
        };
        self.filling
            .values()
            .any(|t| covers(t) && t.contains_key(key))
            || self
                .sealed
                .iter()
                .flat_map(|g| g.tablets.iter())
                .any(|t| covers(t) && t.contains_key(key))
    }

    fn sealed_tablet_count(&self) -> usize {
        self.sealed.iter().map(|g| g.tablets.len()).sum()
    }
}

/// A handle to one table. All methods are safe to call concurrently.
pub struct Table {
    name: String,
    dir: String,
    vfs: Arc<dyn Vfs>,
    /// Optional write-once backing store for old tablets (§6's
    /// LHAM-inspired cold tier; Amazon S3 in the paper's plans).
    cold_vfs: Option<Arc<dyn Vfs>>,
    clock: Arc<dyn Clock>,
    opts: Arc<Options>,
    /// Shared decompressed-block cache, owned by the [`crate::db::Db`];
    /// `None` when `Options::block_cache_bytes` is 0.
    cache: Option<Arc<BlockCache>>,
    stats: Arc<TableStats>,
    state: Mutex<TableState>,
    /// Serializes slow-path uniqueness checks so disk reads never happen
    /// under the state mutex (§3.4.4).
    insert_lock: Mutex<()>,
    /// Serializes flushes so sealed groups commit strictly FIFO.
    flush_lock: Mutex<()>,
}

impl Table {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor
    pub(crate) fn create(
        vfs: Arc<dyn Vfs>,
        cold_vfs: Option<Arc<dyn Vfs>>,
        clock: Arc<dyn Clock>,
        opts: Arc<Options>,
        cache: Option<Arc<BlockCache>>,
        name: String,
        dir: String,
        schema: Schema,
        ttl: Option<Micros>,
    ) -> Result<Arc<Table>> {
        vfs.mkdir_all(&dir)?;
        let desc = TableDescriptor::new(schema.clone(), ttl);
        desc.save(vfs.as_ref(), &dir)?;
        vfs.sync_dir(crate::db::root_of(&dir))?;
        Ok(Arc::new(Table {
            name,
            dir,
            vfs,
            cold_vfs,
            clock,
            opts,
            cache,
            stats: Arc::new(TableStats::default()),
            state: Mutex::new(TableState {
                schema: Arc::new(schema),
                ttl,
                next_tablet_id: desc.next_tablet_id,
                next_mem_id: 1,
                next_group_id: 1,
                filling: HashMap::new(),
                last_insert: None,
                deps: FlushDeps::new(),
                sealed: VecDeque::new(),
                disk: Vec::new(),
                max_ts: Micros::MIN,
                merge_running: false,
                dropped: false,
            }),
            insert_lock: Mutex::new(()),
            flush_lock: Mutex::new(()),
        }))
    }

    #[allow(clippy::too_many_arguments)] // crate-internal constructor
    pub(crate) fn open(
        vfs: Arc<dyn Vfs>,
        cold_vfs: Option<Arc<dyn Vfs>>,
        clock: Arc<dyn Clock>,
        opts: Arc<Options>,
        cache: Option<Arc<BlockCache>>,
        name: String,
        dir: String,
    ) -> Result<Arc<Table>> {
        let mut desc = TableDescriptor::load(vfs.as_ref(), &dir)?;
        desc.sort_tablets();
        // Delete orphan tablet files left by a crash mid-flush or
        // mid-merge: they were never committed to the descriptor.
        for entry in vfs.list_dir(&dir)? {
            if entry == DESC_FILE || entry == DESC_TMP {
                continue;
            }
            match parse_tablet_file_name(&entry) {
                Some(id) if desc.tablets.iter().any(|t| t.id == id) => {}
                _ => {
                    let _ = vfs.remove(&join(&dir, &entry));
                }
            }
        }
        let stats = Arc::new(TableStats::default());
        let disk: Vec<DiskHandle> = desc
            .tablets
            .iter()
            .map(|meta| {
                let backing: Arc<dyn Vfs> = if meta.cold {
                    cold_vfs.clone().ok_or_else(|| {
                        Error::invalid(format!(
                            "table {name:?} has cold tablets but no cold store is configured"
                        ))
                    })?
                } else {
                    vfs.clone()
                };
                Ok(DiskHandle {
                    reader: Arc::new(TabletReader::with_cache(
                        backing,
                        join(&dir, &meta.file_name()),
                        cache
                            .as_ref()
                            .map(|c| CacheHandle::register(c.clone(), stats.clone())),
                    )),
                    meta: meta.clone(),
                })
            })
            .collect::<Result<_>>()?;
        let max_ts = desc.max_ts().unwrap_or(Micros::MIN);
        Ok(Arc::new(Table {
            name,
            dir,
            vfs,
            cold_vfs,
            clock,
            opts,
            cache,
            stats,
            state: Mutex::new(TableState {
                schema: Arc::new(desc.schema),
                ttl: desc.ttl,
                next_tablet_id: desc.next_tablet_id,
                next_mem_id: 1,
                next_group_id: 1,
                filling: HashMap::new(),
                last_insert: None,
                deps: FlushDeps::new(),
                sealed: VecDeque::new(),
                disk,
                max_ts,
                merge_running: false,
                dropped: false,
            }),
            insert_lock: Mutex::new(()),
            flush_lock: Mutex::new(()),
        }))
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current schema.
    pub fn schema(&self) -> SchemaRef {
        self.state.lock().schema.clone()
    }

    /// The current TTL.
    pub fn ttl(&self) -> Option<Micros> {
        self.state.lock().ttl
    }

    /// Operational counters.
    pub fn stats(&self) -> &Arc<TableStats> {
        &self.stats
    }

    /// Builds a reader for a newly written tablet file, registered with
    /// the shared block cache (when one is configured) under a fresh
    /// cache-tablet id.
    fn new_reader(&self, backing: Arc<dyn Vfs>, path: String) -> Arc<TabletReader> {
        Arc::new(TabletReader::with_cache(
            backing,
            path,
            self.cache
                .as_ref()
                .map(|c| CacheHandle::register(c.clone(), self.stats.clone())),
        ))
    }

    /// The engine's current time (for clients that let the server stamp
    /// row timestamps, §3.1).
    pub fn now(&self) -> Micros {
        self.clock.now_micros()
    }

    /// Number of on-disk tablets.
    pub fn num_disk_tablets(&self) -> usize {
        self.state.lock().disk.len()
    }

    /// Number of filling in-memory tablets.
    pub fn num_filling(&self) -> usize {
        self.state.lock().filling.len()
    }

    /// Total compressed bytes across on-disk tablets.
    pub fn disk_bytes(&self) -> u64 {
        self.state.lock().disk.iter().map(|h| h.meta.bytes).sum()
    }

    /// Total rows across on-disk tablets (per descriptor counts).
    pub fn disk_rows(&self) -> u64 {
        self.state.lock().disk.iter().map(|h| h.meta.rows).sum()
    }

    // ---------------------------------------------------------------- insert

    /// Inserts a batch of rows. Each row must match the current schema;
    /// rows whose primary key already exists are counted as duplicates and
    /// skipped. Returns how many were inserted and how many were
    /// duplicates.
    pub fn insert(&self, rows: Vec<Vec<Value>>) -> Result<InsertReport> {
        let mut report = InsertReport::default();
        for values in rows {
            if self.insert_one(values)? {
                report.inserted += 1;
            } else {
                report.duplicates += 1;
            }
        }
        TableStats::add(&self.stats.rows_inserted, report.inserted as u64);
        TableStats::add(&self.stats.duplicate_keys, report.duplicates as u64);
        self.enforce_backlog()?;
        Ok(report)
    }

    fn insert_one(&self, values: Vec<Value>) -> Result<bool> {
        let now = self.clock.now_micros();
        let mut st = self.state.lock();
        if st.dropped {
            return Err(Error::NoSuchTable(self.name.clone()));
        }
        let schema = st.schema.clone();
        let values = schema.check_row(values)?;
        let row = Row::new(values);
        let ts = row.ts(&schema)?;
        let key = row.encode_key(&schema)?;

        if st.mem_contains(&key, ts) {
            return Ok(false);
        }
        if self.opts.uniqueness_fast_paths && ts > st.max_ts {
            // Fast path 1 (§3.4.4): strictly newer than every existing
            // timestamp, so the key (which embeds the timestamp) is new.
            TableStats::add(&self.stats.unique_fast_ts, 1);
            self.do_insert(&mut st, key, row, ts, now);
            return Ok(true);
        }
        // Only tablets whose timespan contains `ts` can hold a duplicate.
        let candidates: Vec<DiskHandle> = st
            .disk
            .iter()
            .filter(|h| h.meta.min_ts <= ts && ts <= h.meta.max_ts)
            .cloned()
            .collect();
        if candidates.is_empty() {
            self.do_insert(&mut st, key, row, ts, now);
            return Ok(true);
        }
        if self.opts.uniqueness_fast_paths {
            // Fast path 2 (§3.4.4): larger key than any other in the
            // relevant tablets, checked against the cached indexes.
            let mut all_below = true;
            for h in &candidates {
                let footer = h.reader.footer()?;
                let max_key = footer.blocks.last().map(|b| b.last_key.as_slice());
                if max_key.is_some_and(|mk| key.as_slice() <= mk) {
                    all_below = false;
                    break;
                }
            }
            if all_below {
                TableStats::add(&self.stats.unique_fast_key, 1);
                self.do_insert(&mut st, key, row, ts, now);
                return Ok(true);
            }
        }
        // Slow path: a point query that may block on disk. Drop the state
        // mutex and serialize on the insert lock table instead, so queries
        // proceed unencumbered (§3.4.4).
        drop(st);
        TableStats::add(&self.stats.unique_slow, 1);
        let _slow = self.insert_lock.lock();
        for h in &candidates {
            if self.tablet_contains_key(h, &key)? {
                return Ok(false);
            }
        }
        let mut st = self.state.lock();
        // Re-check memory: another insert may have landed the key while we
        // were reading disk.
        if st.mem_contains(&key, ts) {
            return Ok(false);
        }
        self.do_insert(&mut st, key, row, ts, now);
        Ok(true)
    }

    fn tablet_contains_key(&self, h: &DiskHandle, key: &[u8]) -> Result<bool> {
        let footer = h.reader.footer()?;
        if let Some(bloom) = &footer.bloom {
            if !bloom.may_contain(hash_bytes(key)) {
                return Ok(false);
            }
        }
        let bi = h.reader.seek_block(key)?;
        if bi >= footer.blocks.len() {
            return Ok(false);
        }
        let block = h.reader.read_block(bi)?;
        let i = block.seek_ge(key)?;
        Ok(i < block.len() && block.key(i)? == key)
    }

    fn bin(&self, ts: Micros, now: Micros) -> Period {
        if self.opts.respect_periods {
            period_for(ts, now)
        } else {
            // Ablation: a single global bin.
            Period {
                kind: PeriodKind::Week,
                start: 0,
            }
        }
    }

    fn do_insert(&self, st: &mut TableState, key: Vec<u8>, row: Row, ts: Micros, now: Micros) {
        let period = self.bin(ts, now);
        let (tablet_id, needs_new) = match st.filling.get(&period) {
            Some(t) => (t.id(), false),
            None => (MemTabletId(st.next_mem_id), true),
        };
        if needs_new {
            st.next_mem_id += 1;
            let schema = st.schema.clone();
            st.filling
                .insert(period, MemTablet::new(tablet_id, now, schema));
        }
        // Flush-ordering dependency (§3.4.3): the previously-written tablet
        // must flush before this one.
        if let Some(last) = st.last_insert {
            if last != tablet_id {
                st.deps.add_edge(last, tablet_id);
            }
        }
        st.last_insert = Some(tablet_id);
        st.max_ts = st.max_ts.max(ts);
        let tablet = st.filling.get_mut(&period).expect("just ensured");
        tablet.insert(key, row, ts);
        if tablet.bytes() >= self.opts.flush_size {
            self.seal_locked(st, tablet_id);
        }
    }

    /// Seals `target` together with its flush-dependency closure into one
    /// atomic group.
    fn seal_locked(&self, st: &mut TableState, target: MemTabletId) {
        let mut group_ids = st.deps.closure_before(target);
        group_ids.insert(target);
        // Only tablets still filling can be sealed now; earlier members of
        // the closure may already sit in earlier groups, which flush first
        // anyway (FIFO).
        let filling_ids: std::collections::HashSet<MemTabletId> =
            st.filling.values().map(|t| t.id()).collect();
        group_ids.retain(|id| filling_ids.contains(id));
        if group_ids.is_empty() {
            return;
        }
        let order = st.deps.order_group(&group_ids);
        let mut tablets = Vec::with_capacity(order.len());
        for id in order {
            let period = *st
                .filling
                .iter()
                .find(|(_, t)| t.id() == id)
                .map(|(p, _)| p)
                .expect("sealed tablet must be filling");
            let t = st.filling.remove(&period).expect("present");
            tablets.push(Arc::new(t));
        }
        st.deps.remove(&group_ids);
        if st.last_insert.is_some_and(|l| group_ids.contains(&l)) {
            st.last_insert = None;
        }
        let id = st.next_group_id;
        st.next_group_id += 1;
        st.sealed.push_back(SealedGroup {
            id,
            tablets,
            flushing: false,
        });
    }

    /// Inline-flushes oldest groups while the sealed backlog exceeds the
    /// configured cap, bounding memory (§5.1.3's 100-tablet limit).
    fn enforce_backlog(&self) -> Result<()> {
        while self.state.lock().sealed_tablet_count() > self.opts.max_sealed_backlog {
            if !self.flush_next_group()? {
                break;
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------------- flush

    /// Flushes the oldest sealed group, if any. Returns whether a group
    /// was flushed.
    pub fn flush_next_group(&self) -> Result<bool> {
        let _flush = self.flush_lock.lock();
        let (group_id, tablets) = {
            let mut st = self.state.lock();
            let Some(group) = st.sealed.front_mut() else {
                return Ok(false);
            };
            group.flushing = true;
            (group.id, group.tablets.clone())
        };
        let now = self.clock.now_micros();
        // Allocate tablet ids.
        let ids: Vec<u64> = {
            let mut st = self.state.lock();
            tablets
                .iter()
                .map(|_| {
                    let id = st.next_tablet_id;
                    st.next_tablet_id += 1;
                    id
                })
                .collect()
        };
        let mut new_handles = Vec::new();
        for (mem, id) in tablets.iter().zip(ids) {
            if mem.is_empty() {
                continue;
            }
            let meta = self.write_mem_tablet(mem, id, now)?;
            TableStats::add(&self.stats.tablets_flushed, 1);
            TableStats::add(&self.stats.bytes_flushed, meta.bytes);
            new_handles.push(DiskHandle {
                reader: self.new_reader(self.vfs.clone(), join(&self.dir, &meta.file_name())),
                meta,
            });
        }
        // Commit: descriptor update, then drop the group from memory.
        let mut st = self.state.lock();
        st.disk.extend(new_handles);
        st.sort_disk();
        let pos = st
            .sealed
            .iter()
            .position(|g| g.id == group_id)
            .expect("flushing group still present");
        st.sealed.remove(pos);
        self.save_descriptor_locked(&st)?;
        Ok(true)
    }

    fn write_mem_tablet(&self, mem: &MemTablet, id: u64, now: Micros) -> Result<TabletMeta> {
        let schema = mem.schema().clone();
        let path = join(&self.dir, &tablet_file_name(id));
        let file = self.vfs.create(&path, mem.bytes() as u64)?;
        let mut w = TabletWriter::new(
            file,
            (*schema).clone(),
            self.opts.block_size,
            self.opts.bloom_filters,
        );
        let mut payload = Vec::new();
        for (key, row) in mem.iter() {
            payload.clear();
            encode_payload(&mut payload, row, &schema);
            let ts = row.ts(&schema)?;
            w.add(key, &payload, ts)?;
        }
        let (min_ts, max_ts, rows, bytes) = w.finish()?;
        Ok(TabletMeta {
            id,
            min_ts,
            max_ts,
            rows,
            bytes,
            written_at: now,
            schema_version: schema.version(),
            cold: false,
        })
    }

    fn save_descriptor_locked(&self, st: &TableState) -> Result<()> {
        let mut desc = TableDescriptor::new((*st.schema).clone(), st.ttl);
        desc.next_tablet_id = st.next_tablet_id;
        desc.tablets = st.metas();
        desc.save(self.vfs.as_ref(), &self.dir)
    }

    /// Seals every filling tablet and flushes everything to disk.
    pub fn flush_all(&self) -> Result<()> {
        {
            let mut st = self.state.lock();
            let ids: Vec<MemTabletId> = st.filling.values().map(|t| t.id()).collect();
            for id in ids {
                self.seal_locked(&mut st, id);
            }
        }
        while self.flush_next_group()? {}
        Ok(())
    }

    /// Flushes to disk every in-memory tablet holding rows with timestamps
    /// at or before `ts` — the command §4.1.2 of the paper proposes so
    /// that aggregators need not *assume* source data has reached disk.
    /// When this returns, every row with `row.ts <= ts` that was inserted
    /// before the call is durable.
    pub fn flush_before(&self, ts: Micros) -> Result<()> {
        {
            let mut st = self.state.lock();
            let ids: Vec<MemTabletId> = st
                .filling
                .values()
                .filter(|t| t.min_ts().is_some_and(|lo| lo <= ts))
                .map(|t| t.id())
                .collect();
            for id in ids {
                // The closure drags along any tablets that must flush
                // first, preserving prefix durability.
                if st.filling.values().any(|t| t.id() == id) {
                    self.seal_locked(&mut st, id);
                }
            }
        }
        while self.flush_next_group()? {}
        Ok(())
    }

    // ----------------------------------------------------------- bulk delete

    /// Deletes every row whose primary key starts with `prefix` — the
    /// bulk-delete feature §7 of the paper describes investigating for
    /// compliance with regional privacy laws. In-memory data is flushed
    /// first; each affected on-disk tablet is rewritten without the
    /// matching rows (or dropped outright when nothing else remains), and
    /// the descriptor is replaced once. Returns the number of rows
    /// deleted.
    pub fn bulk_delete(&self, prefix: &[Value]) -> Result<u64> {
        let schema = self.schema();
        if prefix.is_empty() || prefix.len() >= schema.key_len() {
            return Err(Error::invalid(
                "bulk_delete takes a non-empty strict prefix of the key columns",
            ));
        }
        let encoded = encode_prefix(prefix, &schema.key_types())?;
        let range = KeyRange::for_prefix(encoded.clone());
        self.flush_all()?;

        // Take the merger's slot so no merge runs while we rewrite.
        {
            let mut st = self.state.lock();
            if st.merge_running {
                return Err(Error::invalid(
                    "bulk_delete cannot run while a merge is in progress",
                ));
            }
            st.merge_running = true;
        }
        let result = self.bulk_delete_inner(&schema, &encoded, &range);
        self.state.lock().merge_running = false;
        result
    }

    fn bulk_delete_inner(
        &self,
        schema: &SchemaRef,
        encoded: &[u8],
        range: &KeyRange,
    ) -> Result<u64> {
        let sources: Vec<DiskHandle> = self.state.lock().disk.clone();
        let now = self.clock.now_micros();
        let prefix_hash = hash_bytes(encoded);
        let mut deleted = 0u64;
        // (old id, replacement) pairs; None replacement = tablet dropped.
        let mut rewrites: Vec<(u64, Option<DiskHandle>)> = Vec::new();
        let mut new_ids: Vec<u64> = Vec::new();
        for h in &sources {
            let footer = h.reader.footer()?;
            if let Some(bloom) = &footer.bloom {
                if !bloom.may_contain(prefix_hash) {
                    continue;
                }
            }
            // Does this tablet hold any matching row at all?
            let mut probe = DiskCursor::new(h.reader.clone(), schema.clone(), range.clone(), false);
            if probe.next_row()?.is_none() {
                continue;
            }
            // Rewrite the tablet without the matching rows.
            let new_id = {
                let mut st = self.state.lock();
                let id = st.next_tablet_id;
                st.next_tablet_id += 1;
                id
            };
            new_ids.push(new_id);
            let path = join(&self.dir, &tablet_file_name(new_id));
            let file = self.vfs.create(&path, h.meta.bytes)?;
            let mut w = TabletWriter::new(
                file,
                (**schema).clone(),
                self.opts.block_size,
                self.opts.bloom_filters,
            );
            let mut cur = DiskCursor::new(h.reader.clone(), schema.clone(), KeyRange::all(), false)
                .with_read_run(1 << 20);
            let mut payload = Vec::new();
            while let Some((key, row)) = cur.next_row()? {
                if range.contains(&key) {
                    deleted += 1;
                    continue;
                }
                payload.clear();
                encode_payload(&mut payload, &row, schema);
                let ts = row.ts(schema)?;
                w.add(&key, &payload, ts)?;
            }
            if w.row_count() == 0 {
                drop(w);
                let _ = self.vfs.remove(&path);
                rewrites.push((h.meta.id, None));
            } else {
                let (min_ts, max_ts, rows, bytes) = w.finish()?;
                let meta = TabletMeta {
                    id: new_id,
                    min_ts,
                    max_ts,
                    rows,
                    bytes,
                    written_at: now,
                    schema_version: schema.version(),
                    cold: false,
                };
                rewrites.push((
                    h.meta.id,
                    Some(DiskHandle {
                        reader: self.new_reader(self.vfs.clone(), path),
                        meta,
                    }),
                ));
            }
        }
        if rewrites.is_empty() {
            return Ok(0);
        }
        // Single atomic commit, then reclaim the old files.
        let mut st = self.state.lock();
        for (old_id, replacement) in &rewrites {
            st.disk.retain(|h| h.meta.id != *old_id);
            if let Some(h) = replacement {
                st.disk.push(h.clone());
            }
        }
        st.sort_disk();
        self.save_descriptor_locked(&st)?;
        drop(st);
        for (old_id, _) in &rewrites {
            let _ = self
                .vfs
                .remove(&join(&self.dir, &tablet_file_name(*old_id)));
        }
        Ok(deleted)
    }

    // ---------------------------------------------------------------- query

    /// Executes a query, returning a streaming cursor over matching rows
    /// in key order.
    pub fn query(&self, q: &Query) -> Result<QueryCursor> {
        TableStats::add(&self.stats.queries, 1);
        let now = self.clock.now_micros();
        let st = self.state.lock();
        if st.dropped {
            return Err(Error::NoSuchTable(self.name.clone()));
        }
        let schema = st.schema.clone();
        let range = q.key_range(&schema)?;
        let (ts_lo, ts_hi) = q.ts_interval();
        // TTL: expired rows are filtered from results (§3.3).
        let ts_lo = match st.ttl {
            Some(ttl) => ts_lo.max(now.saturating_sub(ttl)),
            None => ts_lo,
        };
        let mut sources: Vec<Box<dyn RowSource + Send>> = Vec::new();
        if !range.is_certainly_empty() && ts_lo <= ts_hi {
            for h in &st.disk {
                if h.meta.max_ts >= ts_lo && h.meta.min_ts <= ts_hi {
                    sources.push(Box::new(DiskCursor::new(
                        h.reader.clone(),
                        schema.clone(),
                        range.clone(),
                        q.descending,
                    )));
                }
            }
            let mem_overlaps = |t: &MemTablet| match (t.min_ts(), t.max_ts()) {
                (Some(lo), Some(hi)) => hi >= ts_lo && lo <= ts_hi,
                _ => false,
            };
            for t in st
                .filling
                .values()
                .filter(|t| mem_overlaps(t))
                .map(|t| t as &MemTablet)
                .chain(
                    st.sealed
                        .iter()
                        .flat_map(|g| g.tablets.iter())
                        .filter(|t| mem_overlaps(t))
                        .map(|t| t.as_ref()),
                )
            {
                let mut rows = t.snapshot_range(&range);
                if t.schema().version() != schema.version() {
                    let from = t.schema().clone();
                    for (_, row) in rows.iter_mut() {
                        let vals = std::mem::take(&mut row.values);
                        row.values = from.translate_row(&schema, vals)?;
                    }
                }
                sources.push(Box::new(MemSource::new(rows, q.descending)));
            }
        }
        drop(st);
        Ok(QueryCursor {
            merge: MergeCursor::new(sources, q.descending),
            schema,
            ts_lo,
            ts_hi,
            remaining: q.limit,
            server_remaining: self.opts.server_row_limit,
            more_available: false,
            done: false,
            scanned: 0,
            returned: 0,
            stats: self.stats.clone(),
        })
    }

    /// Convenience: runs a query and collects every row.
    pub fn query_all(&self, q: &Query) -> Result<Vec<Row>> {
        let mut cur = self.query(q)?;
        let mut out = Vec::new();
        while let Some(row) = cur.next_row()? {
            out.push(row);
        }
        Ok(out)
    }

    /// Finds the most recent row whose key starts with `prefix` (§3.4.5):
    /// works backwards through each group of tablets with overlapping
    /// timespans, consulting Bloom filters where available.
    pub fn latest(&self, prefix: &[Value]) -> Result<Option<Row>> {
        let now = self.clock.now_micros();
        let st = self.state.lock();
        let schema = st.schema.clone();
        let types = schema.key_types();
        if prefix.len() >= schema.key_len() {
            return Err(Error::invalid(
                "latest() takes a strict prefix of the key columns",
            ));
        }
        let encoded = encode_prefix(prefix, &types)?;
        let range = KeyRange::for_prefix(encoded.clone());
        let cutoff = st
            .ttl
            .map(|ttl| now.saturating_sub(ttl))
            .unwrap_or(Micros::MIN);
        // The prefix determines every key column except (at least) the
        // timestamp, so within the subtree the timestamp dominates the
        // remaining sort order only when the prefix is full.
        let full_prefix = prefix.len() == schema.key_len() - 1;

        enum Src {
            Mem(Vec<(Vec<u8>, Row)>),
            Disk(Arc<TabletReader>),
        }
        let mut spans: Vec<(Micros, Micros, Src)> = Vec::new();
        for h in &st.disk {
            if h.meta.max_ts >= cutoff {
                spans.push((h.meta.min_ts, h.meta.max_ts, Src::Disk(h.reader.clone())));
            }
        }
        for t in st.filling.values().map(|t| t as &MemTablet).chain(
            st.sealed
                .iter()
                .flat_map(|g| g.tablets.iter())
                .map(|t| t.as_ref()),
        ) {
            if let (Some(lo), Some(hi)) = (t.min_ts(), t.max_ts()) {
                if hi >= cutoff {
                    let mut rows = t.snapshot_range(&range);
                    if t.schema().version() != schema.version() {
                        let from = t.schema().clone();
                        for (_, row) in rows.iter_mut() {
                            let vals = std::mem::take(&mut row.values);
                            row.values = from.translate_row(&schema, vals)?;
                        }
                    }
                    spans.push((lo, hi, Src::Mem(rows)));
                }
            }
        }
        drop(st);

        // Group spans whose time ranges overlap (connected intervals).
        spans.sort_by_key(|(lo, _, _)| *lo);
        let mut groups: Vec<Vec<(Micros, Micros, Src)>> = Vec::new();
        let mut group_hi = Micros::MIN;
        for span in spans {
            if groups.is_empty() || span.0 > group_hi {
                group_hi = span.1;
                groups.push(vec![span]);
            } else {
                group_hi = group_hi.max(span.1);
                groups.last_mut().unwrap().push(span);
            }
        }

        let prefix_hash = hash_bytes(&encoded);
        let mut scanned = 0u64;
        for group in groups.into_iter().rev() {
            let mut sources: Vec<Box<dyn RowSource + Send>> = Vec::new();
            for (_, _, src) in group {
                match src {
                    Src::Mem(rows) => sources.push(Box::new(MemSource::new(rows, true))),
                    Src::Disk(reader) => {
                        if self.opts.bloom_filters {
                            if let Some(bloom) = &reader.footer()?.bloom {
                                if !bloom.may_contain(prefix_hash) {
                                    continue;
                                }
                            }
                        }
                        sources.push(Box::new(DiskCursor::new(
                            reader,
                            schema.clone(),
                            range.clone(),
                            true,
                        )));
                    }
                }
            }
            if sources.is_empty() {
                continue;
            }
            let mut merge = MergeCursor::new(sources, true);
            let mut best: Option<(Micros, Row)> = None;
            while let Some((_, row)) = merge.next_row()? {
                scanned += 1;
                let ts = row.ts(&schema)?;
                if ts < cutoff {
                    continue;
                }
                if full_prefix {
                    // Descending key order with ts as the final component:
                    // the first unexpired row is the latest.
                    best = Some((ts, row));
                    break;
                }
                if best.as_ref().is_none_or(|(b, _)| ts > *b) {
                    best = Some((ts, row));
                }
            }
            if let Some((_, row)) = best {
                TableStats::add(&self.stats.rows_scanned, scanned);
                TableStats::add(&self.stats.rows_returned, 1);
                return Ok(Some(row));
            }
        }
        TableStats::add(&self.stats.rows_scanned, scanned);
        Ok(None)
    }

    // ----------------------------------------------------------- maintenance

    /// Runs one maintenance pass at time `now`: seals aged tablets,
    /// flushes sealed groups, performs at most one merge, and reaps
    /// TTL-expired tablets.
    pub fn maintain(&self, now: Micros) -> Result<MaintenanceReport> {
        let mut report = MaintenanceReport::default();
        // 1. Age-based seals (§3.4.1: flush no later than 10 minutes after
        //    a tablet's first insert).
        {
            let mut st = self.state.lock();
            let due: Vec<MemTabletId> = st
                .filling
                .values()
                .filter(|t| !t.is_empty() && now - t.first_insert_at() >= self.opts.flush_age)
                .map(|t| t.id())
                .collect();
            report.sealed_by_age = due.len();
            for id in due {
                // The closure may have sealed it already with a sibling.
                if st.filling.values().any(|t| t.id() == id) {
                    self.seal_locked(&mut st, id);
                }
            }
        }
        // 2. Flush everything sealed.
        while self.flush_next_group()? {
            report.groups_flushed += 1;
        }
        // 3. One merge.
        if self.opts.merge_enabled && self.run_merge_once(now)? {
            report.merges = 1;
        }
        // 4. TTL expiry.
        report.tablets_expired = self.ttl_reap(now)?;
        Ok(report)
    }

    /// Performs at most one merge step; returns whether a merge ran.
    pub fn run_merge_once(&self, now: Micros) -> Result<bool> {
        let (sources, schema, ttl, new_id) = {
            let mut st = self.state.lock();
            if st.merge_running || st.dropped {
                return Ok(false);
            }
            let metas = st.metas();
            let policy = self.opts.merge_policy();
            let Some(ids) = find_merge(&metas, now, &policy) else {
                return Ok(false);
            };
            st.merge_running = true;
            let sources: Vec<DiskHandle> = st
                .disk
                .iter()
                .filter(|h| ids.contains(&h.meta.id))
                .cloned()
                .collect();
            let new_id = st.next_tablet_id;
            st.next_tablet_id += 1;
            (sources, st.schema.clone(), st.ttl, new_id)
        };
        let result = self.execute_merge(&sources, &schema, ttl, new_id, now);
        let mut st = self.state.lock();
        st.merge_running = false;
        match result {
            Ok(new_handle) => {
                let source_ids: Vec<u64> = sources.iter().map(|h| h.meta.id).collect();
                st.disk.retain(|h| !source_ids.contains(&h.meta.id));
                if let Some(h) = new_handle {
                    st.disk.push(h);
                }
                st.sort_disk();
                self.save_descriptor_locked(&st)?;
                drop(st);
                for h in &sources {
                    let _ = self.vfs.remove(&join(&self.dir, &h.meta.file_name()));
                }
                TableStats::add(&self.stats.merges, 1);
                Ok(true)
            }
            Err(e) => {
                drop(st);
                let _ = self.vfs.remove(&join(&self.dir, &tablet_file_name(new_id)));
                Err(e)
            }
        }
    }

    /// Merge-sorts `sources` into one new tablet (§3.4.1), translating
    /// rows to the newest schema and dropping rows that have already
    /// expired. Returns `None` when every row had expired.
    fn execute_merge(
        &self,
        sources: &[DiskHandle],
        schema: &SchemaRef,
        ttl: Option<Micros>,
        new_id: u64,
        now: Micros,
    ) -> Result<Option<DiskHandle>> {
        let cutoff = ttl.map(|t| now.saturating_sub(t)).unwrap_or(Micros::MIN);
        let cursors: Vec<Box<dyn RowSource + Send>> = sources
            .iter()
            .map(|h| {
                // §3.4.1: merges read in ~1 MB runs so the disk spends at
                // most half its time seeking between the input tablets.
                Box::new(
                    DiskCursor::new(h.reader.clone(), schema.clone(), KeyRange::all(), false)
                        .with_read_run(1 << 20),
                ) as Box<dyn RowSource + Send>
            })
            .collect();
        let mut merge = MergeCursor::new(cursors, false);
        let path = join(&self.dir, &tablet_file_name(new_id));
        let size_hint: u64 = sources.iter().map(|h| h.meta.bytes).sum();
        let file = self.vfs.create(&path, size_hint)?;
        let mut w = TabletWriter::new(
            file,
            (**schema).clone(),
            self.opts.block_size,
            self.opts.bloom_filters,
        );
        let mut payload = Vec::new();
        while let Some((key, row)) = merge.next_row()? {
            let ts = row.ts(schema)?;
            if ts < cutoff {
                continue;
            }
            payload.clear();
            encode_payload(&mut payload, &row, schema);
            w.add(&key, &payload, ts)?;
        }
        if w.row_count() == 0 {
            drop(w);
            let _ = self.vfs.remove(&path);
            return Ok(None);
        }
        let (min_ts, max_ts, rows, bytes) = w.finish()?;
        TableStats::add(&self.stats.bytes_merge_written, bytes);
        let meta = TabletMeta {
            id: new_id,
            min_ts,
            max_ts,
            rows,
            bytes,
            written_at: now,
            schema_version: schema.version(),
            cold: false,
        };
        Ok(Some(DiskHandle {
            reader: self.new_reader(self.vfs.clone(), path),
            meta,
        }))
    }

    /// Removes on-disk tablets whose every row has expired (§3.3).
    /// Returns the number of tablets reclaimed.
    pub fn ttl_reap(&self, now: Micros) -> Result<usize> {
        let dead: Vec<DiskHandle> = {
            let mut st = self.state.lock();
            let Some(ttl) = st.ttl else { return Ok(0) };
            if st.merge_running {
                // A merge may be reading any tablet; wait for the next pass.
                return Ok(0);
            }
            let cutoff = now.saturating_sub(ttl);
            let (keep, dead): (Vec<_>, Vec<_>) =
                st.disk.drain(..).partition(|h| h.meta.max_ts >= cutoff);
            st.disk = keep;
            if dead.is_empty() {
                return Ok(0);
            }
            self.save_descriptor_locked(&st)?;
            dead
        };
        for h in &dead {
            let path = join(&self.dir, &h.meta.file_name());
            if h.meta.cold {
                if let Some(cold) = &self.cold_vfs {
                    let _ = cold.remove(&path);
                }
            } else {
                let _ = self.vfs.remove(&path);
            }
        }
        TableStats::add(&self.stats.tablets_expired, dead.len() as u64);
        Ok(dead.len())
    }

    // ------------------------------------------------------------ cold store

    /// Moves every on-disk tablet whose newest row is older than `cutoff`
    /// to the cold store (§6: "LHAM introduced the idea of moving older
    /// data in a log-structured system to write-once media... we are
    /// considering using Amazon S3 as an additional backing store for old
    /// LittleTable data"). Cold tablets keep serving queries through the
    /// cold VFS, are excluded from merging, and still expire by TTL.
    /// Returns the number of tablets migrated.
    pub fn migrate_to_cold(&self, cutoff: Micros) -> Result<usize> {
        let cold = self
            .cold_vfs
            .clone()
            .ok_or_else(|| Error::invalid("no cold store configured"))?;
        // Take the merger's slot so sources cannot be merged away.
        {
            let mut st = self.state.lock();
            if st.merge_running {
                return Ok(0);
            }
            st.merge_running = true;
        }
        let result = self.migrate_to_cold_inner(&cold, cutoff);
        self.state.lock().merge_running = false;
        result
    }

    fn migrate_to_cold_inner(&self, cold: &Arc<dyn Vfs>, cutoff: Micros) -> Result<usize> {
        let candidates: Vec<DiskHandle> = self
            .state
            .lock()
            .disk
            .iter()
            .filter(|h| !h.meta.cold && h.meta.max_ts < cutoff)
            .cloned()
            .collect();
        if candidates.is_empty() {
            return Ok(0);
        }
        cold.mkdir_all(&self.dir)?;
        let mut migrated = Vec::with_capacity(candidates.len());
        for h in &candidates {
            let path = join(&self.dir, &h.meta.file_name());
            let src = self.vfs.open(&path)?;
            let len = src.len()?;
            let mut buf = vec![0u8; len as usize];
            src.read_exact_at(0, &mut buf)?;
            let mut w = cold.create(&path, len)?;
            w.append(&buf)?;
            w.sync()?;
            let mut meta = h.meta.clone();
            meta.cold = true;
            migrated.push(DiskHandle {
                reader: self.new_reader(cold.clone(), path),
                meta,
            });
        }
        cold.sync_dir(&self.dir)?;
        // Single descriptor commit flips the tablets to the cold tier,
        // then the hot copies are reclaimed.
        let mut st = self.state.lock();
        for h in &migrated {
            st.disk.retain(|x| x.meta.id != h.meta.id);
            st.disk.push(h.clone());
        }
        st.sort_disk();
        self.save_descriptor_locked(&st)?;
        drop(st);
        for h in &candidates {
            let _ = self.vfs.remove(&join(&self.dir, &h.meta.file_name()));
        }
        Ok(migrated.len())
    }

    /// Total compressed bytes of tablets currently in the cold store.
    pub fn cold_bytes(&self) -> u64 {
        self.state
            .lock()
            .disk
            .iter()
            .filter(|h| h.meta.cold)
            .map(|h| h.meta.bytes)
            .sum()
    }

    // ---------------------------------------------------------- schema & ttl

    /// Appends a column to the schema (§3.5). Existing tablets are not
    /// rewritten; filling tablets are sealed so no tablet mixes schema
    /// versions.
    pub fn add_column(&self, col: crate::schema::ColumnDef) -> Result<()> {
        let mut st = self.state.lock();
        let new_schema = st.schema.add_column(col)?;
        self.install_schema_locked(&mut st, new_schema)
    }

    /// Widens an `int32` column to `int64` (§3.5).
    pub fn widen_column(&self, name: &str) -> Result<()> {
        let mut st = self.state.lock();
        let new_schema = st.schema.widen_column(name)?;
        self.install_schema_locked(&mut st, new_schema)
    }

    fn install_schema_locked(&self, st: &mut TableState, new_schema: Schema) -> Result<()> {
        let ids: Vec<MemTabletId> = st.filling.values().map(|t| t.id()).collect();
        for id in ids {
            if st.filling.values().any(|t| t.id() == id) {
                self.seal_locked(st, id);
            }
        }
        st.schema = Arc::new(new_schema);
        self.save_descriptor_locked(st)
    }

    /// Changes the table's TTL (§3.5).
    pub fn set_ttl(&self, ttl: Option<Micros>) -> Result<()> {
        let mut st = self.state.lock();
        st.ttl = ttl;
        self.save_descriptor_locked(&st)
    }

    pub(crate) fn mark_dropped(&self) {
        self.state.lock().dropped = true;
    }

    pub(crate) fn dir(&self) -> &str {
        &self.dir
    }
}

/// A streaming query result: rows in key order, filtered by the query's
/// timestamp bounds and the table's TTL.
pub struct QueryCursor {
    merge: MergeCursor,
    schema: SchemaRef,
    ts_lo: Micros,
    ts_hi: Micros,
    remaining: Option<usize>,
    server_remaining: usize,
    more_available: bool,
    done: bool,
    scanned: u64,
    returned: u64,
    stats: Arc<TableStats>,
}

impl QueryCursor {
    /// Produces the next matching row, or `None` at the end.
    pub fn next_row(&mut self) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        if self.remaining == Some(0) {
            self.done = true;
            return Ok(None);
        }
        loop {
            if self.server_remaining == 0 {
                // The server's own cap: the client sees `more_available`
                // and re-submits from the last returned key (§3.5).
                self.more_available = true;
                self.done = true;
                return Ok(None);
            }
            match self.merge.next_row()? {
                None => {
                    self.done = true;
                    return Ok(None);
                }
                Some((_, row)) => {
                    self.scanned += 1;
                    let ts = row.ts(&self.schema)?;
                    if ts < self.ts_lo || ts > self.ts_hi {
                        continue;
                    }
                    self.returned += 1;
                    self.server_remaining -= 1;
                    if let Some(r) = &mut self.remaining {
                        *r -= 1;
                    }
                    return Ok(Some(row));
                }
            }
        }
    }

    /// True when the server row limit cut the result short; re-submit the
    /// query starting past the last returned key for more.
    pub fn more_available(&self) -> bool {
        self.more_available
    }

    /// Rows examined so far (inside key bounds, before time filtering).
    pub fn scanned(&self) -> u64 {
        self.scanned
    }

    /// Rows returned so far.
    pub fn returned(&self) -> u64 {
        self.returned
    }

    /// The schema rows are returned under.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }
}

impl Drop for QueryCursor {
    fn drop(&mut self) {
        TableStats::add(&self.stats.rows_scanned, self.scanned);
        TableStats::add(&self.stats.rows_returned, self.returned);
    }
}

impl Iterator for QueryCursor {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_row().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;
    use littletable_vfs::{SimClock, SimVfs, MICROS_PER_SEC};

    const SEC: Micros = MICROS_PER_SEC;
    const START: Micros = 1_700_000_000 * MICROS_PER_SEC;

    fn usage_schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("network", ColumnType::I64),
                ColumnDef::new("device", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("bytes", ColumnType::I64),
            ],
            &["network", "device", "ts"],
        )
        .unwrap()
    }

    fn test_db(opts: Options) -> (Db, SimVfs, SimClock) {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        // Share the clock between the engine and the test driver.
        let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
        (db, vfs, clock)
    }

    fn usage_row(net: i64, dev: i64, ts: Micros, bytes: i64) -> Vec<Value> {
        vec![
            Value::I64(net),
            Value::I64(dev),
            Value::Timestamp(ts),
            Value::I64(bytes),
        ]
    }

    #[test]
    fn insert_and_query_from_memory() {
        let (db, _, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        let r = t
            .insert(vec![
                usage_row(1, 1, now, 100),
                usage_row(1, 2, now, 200),
                usage_row(2, 1, now, 300),
            ])
            .unwrap();
        assert_eq!(r.inserted, 3);
        // All rows, key order.
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].values[3], Value::I64(100));
        // Prefix query: network 1 only.
        let rows = t
            .query_all(&Query::all().with_prefix(vec![Value::I64(1)]))
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn query_after_flush_and_mixed() {
        let (db, _, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..100 {
            t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
        }
        t.flush_all().unwrap();
        assert!(t.num_disk_tablets() >= 1);
        // More rows into memory.
        for i in 100..150 {
            t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
        }
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 150);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.values[1], Value::I64(i as i64));
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let (db, _, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        let r = t.insert(vec![usage_row(1, 1, now, 100)]).unwrap();
        assert_eq!(r.inserted, 1);
        // Same key from memory.
        let r = t.insert(vec![usage_row(1, 1, now, 999)]).unwrap();
        assert_eq!(r.duplicates, 1);
        // Same key after flush (slow path through disk).
        t.flush_all().unwrap();
        let r = t.insert(vec![usage_row(1, 1, now, 999)]).unwrap();
        assert_eq!(r.duplicates, 1);
        // Original value preserved.
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[3], Value::I64(100));
    }

    #[test]
    fn uniqueness_fast_paths_hit() {
        let (db, _, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        // Ascending timestamps: fast path 1.
        for i in 0..10 {
            t.insert(vec![usage_row(1, 1, now + i, i)]).unwrap();
        }
        assert_eq!(t.stats().snapshot().unique_fast_ts, 10);
        t.flush_all().unwrap();
        // Same timestamp, larger key: fast path 2.
        t.insert(vec![usage_row(9, 9, now + 5, 0)]).unwrap();
        assert_eq!(t.stats().snapshot().unique_fast_key, 1);
        // Same timestamp, key in the middle: slow path.
        t.insert(vec![usage_row(1, 0, now + 5, 0)]).unwrap();
        assert!(t.stats().snapshot().unique_slow >= 1);
    }

    #[test]
    fn ts_bounds_filter_rows() {
        let (db, _, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..100 {
            t.insert(vec![usage_row(1, 1, now + i * SEC, i)]).unwrap();
        }
        let rows = t
            .query_all(&Query::all().with_ts_range(now + 10 * SEC, now + 20 * SEC))
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].values[3], Value::I64(10));
    }

    #[test]
    fn descending_and_limit() {
        let (db, _, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..20 {
            t.insert(vec![usage_row(1, i, now, i)]).unwrap();
        }
        let rows = t
            .query_all(&Query::all().descending().with_limit(5))
            .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].values[1], Value::I64(19));
        assert_eq!(rows[4].values[1], Value::I64(15));
    }

    #[test]
    fn server_row_limit_sets_more_available() {
        let mut opts = Options::small_for_tests();
        opts.server_row_limit = 7;
        let (db, _, clock) = test_db(opts);
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..20 {
            t.insert(vec![usage_row(1, i, now, i)]).unwrap();
        }
        let mut cur = t.query(&Query::all()).unwrap();
        let mut n = 0;
        while cur.next_row().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 7);
        assert!(cur.more_available());
        // Client-style continuation: restart past the last key until the
        // server stops reporting more.
        let mut total = n;
        let mut last_dev = 6i64;
        loop {
            let mut cur = t
                .query(&Query::all().with_key_min(vec![Value::I64(1), Value::I64(last_dev)], false))
                .unwrap();
            while let Some(row) = cur.next_row().unwrap() {
                total += 1;
                last_dev = match row.values[1] {
                    Value::I64(d) => d,
                    _ => unreachable!(),
                };
            }
            if !cur.more_available() {
                break;
            }
        }
        assert_eq!(total, 20);
    }

    #[test]
    fn latest_finds_most_recent_for_prefix() {
        let (db, _, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..50 {
            t.insert(vec![usage_row(1, 7, now + i * SEC, i)]).unwrap();
            t.insert(vec![usage_row(1, 8, now + i * SEC, 1000 + i)])
                .unwrap();
        }
        t.flush_all().unwrap();
        // Newer rows in memory for device 7 only.
        t.insert(vec![usage_row(1, 7, now + 100 * SEC, 49_999)])
            .unwrap();
        // Full prefix (network, device).
        let row = t.latest(&[Value::I64(1), Value::I64(7)]).unwrap().unwrap();
        assert_eq!(row.values[3], Value::I64(49_999));
        let row = t.latest(&[Value::I64(1), Value::I64(8)]).unwrap().unwrap();
        assert_eq!(row.values[3], Value::I64(1049));
        // Partial prefix (network): latest across devices.
        let row = t.latest(&[Value::I64(1)]).unwrap().unwrap();
        assert_eq!(row.values[3], Value::I64(49_999));
        // Missing prefix.
        assert!(t.latest(&[Value::I64(99)]).unwrap().is_none());
        // Over-long prefix is an error.
        assert!(t
            .latest(&[Value::I64(1), Value::I64(1), Value::Timestamp(0)])
            .is_err());
    }

    #[test]
    fn ttl_filters_and_reaps() {
        let (db, vfs, clock) = test_db(Options::small_for_tests());
        let ttl = 3600 * SEC;
        let t = db.create_table("usage", usage_schema(), Some(ttl)).unwrap();
        let now = clock.now_micros();
        t.insert(vec![usage_row(1, 1, now, 1)]).unwrap();
        t.insert(vec![usage_row(1, 2, now + 10 * SEC, 2)]).unwrap();
        t.flush_all().unwrap();
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 2);
        // Advance past the first row's expiry: it is filtered from results
        // even before the reaper runs.
        clock.set(now + ttl + 5 * SEC);
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 1);
        // Advance past both and reap: the tablet file disappears.
        clock.set(now + ttl + 3600 * SEC);
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 0);
        let files_before = vfs.list_dir("usage").unwrap().len();
        let reaped = t.ttl_reap(clock.now_micros()).unwrap();
        assert!(reaped >= 1);
        assert!(vfs.list_dir("usage").unwrap().len() < files_before);
    }

    #[test]
    fn merging_reduces_tablet_count_preserving_rows() {
        let mut opts = Options::small_for_tests();
        opts.flush_size = 4 << 10;
        let (db, _, clock) = test_db(opts);
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..2000 {
            t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
        }
        t.flush_all().unwrap();
        let before = t.num_disk_tablets();
        assert!(before > 2, "need several tablets, got {before}");
        while t.run_merge_once(clock.now_micros()).unwrap() {}
        let after = t.num_disk_tablets();
        assert!(after < before, "merge should shrink {before} -> {after}");
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 2000);
        assert!(t.stats().snapshot().merges >= 1);
    }

    #[test]
    fn crash_preserves_flushed_prefix() {
        let (db, vfs, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..100 {
            t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
        }
        t.flush_all().unwrap();
        for i in 100..200 {
            t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
        }
        // Crash with rows 100..200 unflushed.
        vfs.crash();
        let db2 = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let t2 = db2.table("usage").unwrap();
        let rows = t2.query_all(&Query::all()).unwrap();
        // Exactly the flushed prefix survives, in insertion order by i.
        assert_eq!(rows.len(), 100);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.values[1], Value::I64(i as i64));
        }
    }

    #[test]
    fn crash_mid_flush_leaves_no_orphans_and_keeps_prefix() {
        let (db, vfs, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..50 {
            t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
        }
        t.flush_all().unwrap();
        // Write an orphan tablet file, as if a crash hit between the file
        // write and the descriptor commit.
        let mut w = vfs.create("usage/tab-00000000000000ff.lt", 0).unwrap();
        w.append(b"partial garbage").unwrap();
        w.sync().unwrap();
        drop(w);
        vfs.sync_dir("usage").unwrap();
        vfs.crash();
        let db2 = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        assert!(!vfs.exists("usage/tab-00000000000000ff.lt"));
        let rows = db2
            .table("usage")
            .unwrap()
            .query_all(&Query::all())
            .unwrap();
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn flush_dependencies_preserve_insert_order_across_periods() {
        // Rows alternate between an old week and the current day, forcing
        // two filling tablets with interleaved inserts. Sealing either must
        // drag the other along (they form a dependency cycle), so a crash
        // can never retain a later row while losing an earlier one.
        let mut opts = Options::small_for_tests();
        opts.flush_size = usize::MAX; // no size-based seal
        let (db, vfs, clock) = test_db(opts.clone());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        let old = now - 30 * 24 * 3600 * SEC;
        for i in 0..10 {
            t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
            t.insert(vec![usage_row(2, i, old + i, i)]).unwrap();
        }
        assert_eq!(t.num_filling(), 2);
        // Age-based seal: both tablets are in one atomic group.
        clock.advance(opts.flush_age + 1);
        t.maintain(clock.now_micros()).unwrap();
        assert_eq!(t.num_filling(), 0);
        vfs.crash();
        let db2 = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
        let rows = db2
            .table("usage")
            .unwrap()
            .query_all(&Query::all())
            .unwrap();
        // All or nothing: both tablets committed in one descriptor update.
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn schema_evolution_end_to_end() {
        let (db, _, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        t.insert(vec![usage_row(1, 1, now, 100)]).unwrap();
        t.flush_all().unwrap();
        t.add_column(ColumnDef::with_default(
            "packets",
            ColumnType::I64,
            Value::I64(-1),
        ))
        .unwrap();
        // Old rows (flushed and any memtable) read back with the default.
        t.insert(vec![vec![
            Value::I64(1),
            Value::I64(2),
            Value::Timestamp(now + 1),
            Value::I64(200),
            Value::I64(42),
        ]])
        .unwrap();
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].values[4], Value::I64(-1));
        assert_eq!(rows[1].values[4], Value::I64(42));
        // Old-arity inserts now fail.
        assert!(t.insert(vec![usage_row(1, 3, now + 2, 1)]).is_err());
    }

    #[test]
    fn widen_column_end_to_end() {
        let (db, vfs, clock) = test_db(Options::small_for_tests());
        let schema = Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("count", ColumnType::I32),
            ],
            &["n", "ts"],
        )
        .unwrap();
        let t = db.create_table("c", schema, None).unwrap();
        let now = clock.now_micros();
        t.insert(vec![vec![
            Value::I64(1),
            Value::Timestamp(now),
            Value::I32(7),
        ]])
        .unwrap();
        t.flush_all().unwrap();
        t.widen_column("count").unwrap();
        t.insert(vec![vec![
            Value::I64(2),
            Value::Timestamp(now + 1),
            Value::I64(1 << 40),
        ]])
        .unwrap();
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows[0].values[2], Value::I64(7));
        assert_eq!(rows[1].values[2], Value::I64(1 << 40));
        // Schema survives reopen.
        db.flush_all().unwrap();
        let db2 = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let t2 = db2.table("c").unwrap();
        assert_eq!(t2.schema().columns()[2].ty, ColumnType::I64);
        assert_eq!(t2.query_all(&Query::all()).unwrap().len(), 2);
    }

    #[test]
    fn backlog_forces_inline_flush() {
        let mut opts = Options::small_for_tests();
        opts.flush_size = 1 << 10;
        opts.max_sealed_backlog = 2;
        let (db, _, clock) = test_db(opts);
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..5000 {
            t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
        }
        // Backlog stayed bounded because inserts flushed inline.
        assert!(t.num_disk_tablets() > 0);
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 5000);
    }

    #[test]
    fn db_table_lifecycle() {
        let (db, vfs, clock) = test_db(Options::small_for_tests());
        assert!(db.table("missing").is_err());
        db.create_table("a", usage_schema(), None).unwrap();
        db.create_table("b", usage_schema(), None).unwrap();
        assert!(db.create_table("a", usage_schema(), None).is_err());
        assert!(db.create_table("bad/name", usage_schema(), None).is_err());
        assert_eq!(db.list_tables(), vec!["a".to_string(), "b".to_string()]);
        db.drop_table("a").unwrap();
        assert!(db.table("a").is_err());
        // Dropped table's files are gone; recreation works.
        db.create_table("a", usage_schema(), None).unwrap();
        // Reopen sees both tables.
        db.flush_all().unwrap();
        drop(db);
        let db2 = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        assert_eq!(db2.list_tables(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn insert_visible_to_subsequent_query_during_flush_window() {
        // A query started after an insert completes must see the row even
        // if the row's group is mid-flush (sealed, not yet committed).
        let mut opts = Options::small_for_tests();
        opts.flush_size = 1; // every insert seals immediately
        opts.max_sealed_backlog = usize::MAX; // never inline-flush
        let (db, _, clock) = test_db(opts);
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        t.insert(vec![usage_row(1, 1, now, 1)]).unwrap();
        t.insert(vec![usage_row(1, 2, now + 1, 2)]).unwrap();
        // Rows are in sealed groups, none flushed.
        assert_eq!(t.num_disk_tablets(), 0);
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 2);
        while t.flush_next_group().unwrap() {}
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 2);
    }

    #[test]
    fn scan_ratio_accounts_time_filtering() {
        let (db, _, clock) = test_db(Options::small_for_tests());
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let now = clock.now_micros();
        for i in 0..100 {
            t.insert(vec![usage_row(1, 1, now + i * SEC, i)]).unwrap();
        }
        t.flush_all().unwrap();
        // Key bounds cover all 100 rows of device 1, time bounds only 10:
        // the cursor scans ~100 and returns 10.
        let q = Query::all()
            .with_prefix(vec![Value::I64(1), Value::I64(1)])
            .with_ts_range(now, now + 10 * SEC);
        let mut cur = t.query(&q).unwrap();
        while cur.next_row().unwrap().is_some() {}
        assert_eq!(cur.returned(), 10);
        assert!(cur.scanned() >= 10);
        drop(cur);
        let snap = t.stats().snapshot();
        assert_eq!(snap.rows_returned, 10);
    }
}

#[cfg(test)]
mod extension_tests {
    //! Tests for the paper's proposed extensions implemented here:
    //! `flush_before` (§4.1.2) and `bulk_delete` (§7).

    use super::*;
    use crate::db::Db;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;
    use littletable_vfs::{SimClock, SimVfs, MICROS_PER_SEC};

    const START: Micros = 1_700_000_000_000_000;

    fn usage_schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("customer", ColumnType::I64),
                ColumnDef::new("device", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("v", ColumnType::I64),
            ],
            &["customer", "device", "ts"],
        )
        .unwrap()
    }

    fn setup() -> (Db, SimVfs, SimClock, Arc<Table>) {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        let mut opts = Options::small_for_tests();
        opts.flush_size = 8 << 10;
        let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
        let t = db.create_table("u", usage_schema(), None).unwrap();
        (db, vfs, clock, t)
    }

    fn row(c: i64, d: i64, ts: Micros) -> Vec<Value> {
        vec![
            Value::I64(c),
            Value::I64(d),
            Value::Timestamp(ts),
            Value::I64(c * 100 + d),
        ]
    }

    #[test]
    fn flush_before_makes_old_rows_durable() {
        let (_db, vfs, clock, t) = setup();
        let mut opts = Options::small_for_tests();
        opts.flush_size = 8 << 10;
        // Old rows and new rows in separate periods; only the old must
        // flush.
        let old_ts = START - 30 * 24 * 3600 * MICROS_PER_SEC;
        t.insert(vec![row(1, 1, old_ts)]).unwrap();
        t.insert(vec![row(1, 2, START)]).unwrap();
        t.flush_before(old_ts + 1).unwrap();
        // Crash: the old row survives (and, by prefix durability, so does
        // anything inserted before it — here nothing).
        vfs.crash();
        let db2 = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
        let rows = db2.table("u").unwrap().query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[2], Value::Timestamp(old_ts));
    }

    #[test]
    fn flush_before_respects_dependency_closure() {
        let (_db, vfs, clock, t) = setup();
        // Interleave inserts across two periods so a dependency cycle
        // forms; flushing "before" must drag the sibling along, keeping
        // the prefix guarantee.
        let old_ts = START - 30 * 24 * 3600 * MICROS_PER_SEC;
        for i in 0..5 {
            t.insert(vec![row(1, i, START + i)]).unwrap();
            t.insert(vec![row(2, i, old_ts + i)]).unwrap();
        }
        t.flush_before(old_ts + 10).unwrap();
        vfs.crash();
        let db2 = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        // All ten rows survive: the cycle commits atomically.
        let rows = db2.table("u").unwrap().query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn bulk_delete_removes_exactly_the_prefix() {
        let (_db, _vfs, clock, t) = setup();
        for c in 1..=3i64 {
            for d in 1..=4i64 {
                for k in 0..50 {
                    t.insert(vec![row(c, d, START + k)]).unwrap();
                }
            }
        }
        t.flush_all().unwrap();
        while t.run_merge_once(clock.now_micros()).unwrap() {}
        // Customer 2 exercises its right to be forgotten.
        let deleted = t.bulk_delete(&[Value::I64(2)]).unwrap();
        assert_eq!(deleted, 200);
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 400);
        assert!(rows.iter().all(|r| r.values[0] != Value::I64(2)));
        // Narrower prefix: one device of customer 1.
        let deleted = t.bulk_delete(&[Value::I64(1), Value::I64(3)]).unwrap();
        assert_eq!(deleted, 50);
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 350);
        // Deleting again is a no-op.
        assert_eq!(t.bulk_delete(&[Value::I64(2)]).unwrap(), 0);
    }

    #[test]
    fn bulk_delete_covers_unflushed_rows_and_survives_restart() {
        let (_db, vfs, clock, t) = setup();
        for k in 0..20 {
            t.insert(vec![row(7, 1, START + k)]).unwrap();
            t.insert(vec![row(8, 1, START + k)]).unwrap();
        }
        // No flush yet: bulk_delete must flush and still remove them.
        let deleted = t.bulk_delete(&[Value::I64(7)]).unwrap();
        assert_eq!(deleted, 20);
        vfs.crash();
        let db2 = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let rows = db2.table("u").unwrap().query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 20);
        assert!(rows.iter().all(|r| r.values[0] == Value::I64(8)));
    }

    #[test]
    fn bulk_delete_drops_empty_tablets_and_reclaims_files() {
        let (_db, vfs, _clock, t) = setup();
        // One tablet holding only customer 9.
        for k in 0..100 {
            t.insert(vec![row(9, 1, START + k)]).unwrap();
        }
        t.flush_all().unwrap();
        let files_before = vfs.list_dir("u").unwrap().len();
        let deleted = t.bulk_delete(&[Value::I64(9)]).unwrap();
        assert_eq!(deleted, 100);
        assert_eq!(t.num_disk_tablets(), 0);
        assert!(vfs.list_dir("u").unwrap().len() < files_before);
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 0);
        // New inserts for the deleted customer work fine.
        t.insert(vec![row(9, 1, START + 1000)]).unwrap();
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 1);
    }

    #[test]
    fn bulk_delete_validates_prefix() {
        let (_db, _vfs, _clock, t) = setup();
        assert!(t.bulk_delete(&[]).is_err());
        assert!(t
            .bulk_delete(&[Value::I64(1), Value::I64(1), Value::Timestamp(0)])
            .is_err());
        assert!(t.bulk_delete(&[Value::Str("wrong type".into())]).is_err());
    }
}

#[cfg(test)]
mod evolution_merge_tests {
    //! Schema evolution interacting with merges and bulk deletes: merged
    //! output is written under the newest schema, translating old rows.

    use super::*;
    use crate::db::Db;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;
    use littletable_vfs::{SimClock, SimVfs};

    const START: Micros = 1_700_000_000_000_000;

    #[test]
    fn merge_translates_rows_to_newest_schema() {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        let db = Db::open(
            Arc::new(vfs),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let schema = Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("c", ColumnType::I32),
            ],
            &["n", "ts"],
        )
        .unwrap();
        let t = db.create_table("t", schema, None).unwrap();
        // Two tablets under schema v1.
        for chunk in 0..2i64 {
            for i in 0..100 {
                let k = chunk * 100 + i;
                t.insert(vec![vec![
                    Value::I64(k),
                    Value::Timestamp(START + k),
                    Value::I32(k as i32),
                ]])
                .unwrap();
            }
            t.flush_all().unwrap();
        }
        // Evolve twice: widen + append.
        t.widen_column("c").unwrap();
        t.add_column(ColumnDef::with_default(
            "label",
            ColumnType::Str,
            Value::Str("old".into()),
        ))
        .unwrap();
        // One more tablet under schema v3.
        t.insert(vec![vec![
            Value::I64(200),
            Value::Timestamp(START + 200),
            Value::I64(1 << 40),
            Value::Str("new".into()),
        ]])
        .unwrap();
        t.flush_all().unwrap();
        assert!(t.num_disk_tablets() >= 3);
        while t.run_merge_once(clock.now_micros()).unwrap() {}
        // After merging everything is readable under v3 with translated
        // values, and the merged tablet's recorded schema is v3.
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 201);
        assert_eq!(rows[0].values[2], Value::I64(0));
        assert_eq!(rows[0].values[3], Value::Str("old".into()));
        assert_eq!(rows[200].values[2], Value::I64(1 << 40));
        assert_eq!(rows[200].values[3], Value::Str("new".into()));
        let st = t.state.lock();
        assert!(st.disk.iter().any(|h| h.meta.schema_version == 3));
    }

    #[test]
    fn bulk_delete_after_evolution_rewrites_under_newest_schema() {
        let clock = SimClock::new(START);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let schema = Schema::new(
            vec![
                ColumnDef::new("cust", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["cust", "ts"],
        )
        .unwrap();
        let t = db.create_table("t", schema, None).unwrap();
        for c in 1..=2i64 {
            for i in 0..50 {
                t.insert(vec![vec![
                    Value::I64(c),
                    Value::Timestamp(START + c * 1000 + i),
                ]])
                .unwrap();
            }
        }
        t.flush_all().unwrap();
        t.add_column(ColumnDef::new("extra", ColumnType::I64))
            .unwrap();
        let deleted = t.bulk_delete(&[Value::I64(1)]).unwrap();
        assert_eq!(deleted, 50);
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 50);
        // Survivors were rewritten with the new column's default.
        assert!(rows.iter().all(|r| r.values.len() == 3
            && r.values[0] == Value::I64(2)
            && r.values[2] == Value::I64(0)));
    }
}

#[cfg(test)]
mod cold_store_tests {
    //! The §6 cold-tier extension: old tablets move to a write-once
    //! backing store and keep serving queries from there.

    use super::*;
    use crate::db::Db;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;
    use littletable_vfs::{SimClock, SimVfs};

    const START: Micros = 1_700_000_000_000_000;
    const DAY: Micros = 86_400 * 1_000_000;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    fn setup() -> (Db, SimVfs, SimVfs, SimClock) {
        let clock = SimClock::new(START);
        let hot = SimVfs::instant();
        let cold = SimVfs::instant();
        let db = Db::open_with_cold(
            Arc::new(hot.clone()),
            Some(Arc::new(cold.clone())),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        (db, hot, cold, clock)
    }

    fn fill(t: &Table, base: Micros, n: i64) {
        for i in 0..n {
            t.insert(vec![vec![
                Value::I64(base / 1000 + i),
                Value::Timestamp(base + i),
            ]])
            .unwrap();
        }
        t.flush_all().unwrap();
    }

    #[test]
    fn old_tablets_migrate_and_keep_serving() {
        let (db, hot, cold, clock) = setup();
        let t = db.create_table("t", schema(), None).unwrap();
        fill(&t, START - 30 * DAY, 200); // old data
        fill(&t, START, 200); // recent data
        let migrated = t.migrate_to_cold(START - DAY).unwrap();
        assert_eq!(migrated, 1);
        assert!(t.cold_bytes() > 0);
        // The cold file exists in the cold store, not the hot one.
        let cold_files = cold.list_dir("t").unwrap();
        assert_eq!(cold_files.iter().filter(|f| f.ends_with(".lt")).count(), 1);
        let hot_files = hot.list_dir("t").unwrap();
        assert_eq!(hot_files.iter().filter(|f| f.ends_with(".lt")).count(), 1);
        // Queries span both tiers transparently.
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 400);
        // Migration is idempotent.
        assert_eq!(t.migrate_to_cold(START - DAY).unwrap(), 0);
        // Cold tablets never merge.
        assert!(!t.run_merge_once(clock.now_micros()).unwrap());
    }

    #[test]
    fn cold_tablets_survive_restart() {
        let (db, hot, cold, clock) = setup();
        let t = db.create_table("t", schema(), None).unwrap();
        fill(&t, START - 30 * DAY, 100);
        t.migrate_to_cold(START).unwrap();
        drop(db);
        let db2 = Db::open_with_cold(
            Arc::new(hot.clone()),
            Some(Arc::new(cold.clone())),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let t2 = db2.table("t").unwrap();
        assert_eq!(t2.query_all(&Query::all()).unwrap().len(), 100);
        assert!(t2.cold_bytes() > 0);
        // Opening without a cold store fails loudly rather than serving
        // partial data.
        let res = Db::open(
            Arc::new(hot.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn ttl_reaps_cold_tablets_from_the_cold_store() {
        let (db, _hot, cold, clock) = setup();
        let ttl = 10 * DAY;
        let t = db.create_table("t", schema(), Some(ttl)).unwrap();
        fill(&t, START - 30 * DAY, 50);
        t.migrate_to_cold(START).unwrap();
        clock.set(START + ttl);
        let reaped = t.ttl_reap(clock.now_micros()).unwrap();
        assert_eq!(reaped, 1);
        let cold_files = cold.list_dir("t").unwrap();
        assert_eq!(cold_files.iter().filter(|f| f.ends_with(".lt")).count(), 0);
    }

    #[test]
    fn migrate_without_cold_store_is_an_error() {
        let clock = SimClock::new(START);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let t = db.create_table("t", schema(), None).unwrap();
        assert!(t.migrate_to_cold(START).is_err());
    }

    #[test]
    fn drop_table_cleans_both_tiers() {
        let (db, hot, cold, _clock) = setup();
        let t = db.create_table("t", schema(), None).unwrap();
        fill(&t, START - 30 * DAY, 50);
        t.migrate_to_cold(START).unwrap();
        db.drop_table("t").unwrap();
        assert!(hot
            .list_dir("t")
            .unwrap_or_default()
            .iter()
            .all(|f| !f.ends_with(".lt")));
        assert!(cold
            .list_dir("t")
            .unwrap_or_default()
            .iter()
            .all(|f| !f.ends_with(".lt")));
    }
}
