//! Per-tablet Bloom filters over primary keys.
//!
//! §3.4.5 of the paper proposes (as an extension) storing a Bloom filter
//! with each on-disk tablet so that latest-row-for-prefix queries and
//! insert-time uniqueness checks can skip the ~99% of tablets that cannot
//! contain a matching key, at roughly 10 bits per row. This implements that
//! extension; it is switchable in [`crate::Options`] so the ablation bench
//! can measure its effect.
//!
//! Because prefix queries need to test *prefixes* and not only full keys,
//! the filter stores one entry per key prefix at each component boundary
//! (the engine feeds it every boundary — key components self-delimit).

use crate::error::Result;
use crate::util::{mix64, put_varint, Reader};

/// A classic Bloom filter with double hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    k: u32,
}

/// Incrementally builds a [`BloomFilter`] once the element count is known
/// only at the end: collects hashes, then sizes the table.
#[derive(Debug, Default)]
pub struct BloomBuilder {
    hashes: Vec<u64>,
}

impl BloomBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pre-hashed element (see [`crate::util::hash_bytes`]).
    pub fn add_hash(&mut self, h: u64) {
        self.hashes.push(h);
    }

    /// Number of elements added so far.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Finalizes into a filter using `bits_per_key` bits per element
    /// (the paper suggests 10, giving ~1% false positives).
    pub fn build(self, bits_per_key: u32) -> BloomFilter {
        let n = self.hashes.len().max(1) as u64;
        let num_bits = (n * bits_per_key as u64).max(64);
        let words = num_bits.div_ceil(64);
        let num_bits = words * 64;
        // k = bits_per_key * ln 2 ≈ 0.69 * bits_per_key, clamped sanely.
        let k = ((bits_per_key as f64 * 0.69).round() as u32).clamp(1, 16);
        let mut f = BloomFilter {
            bits: vec![0; words as usize],
            num_bits,
            k,
        };
        for h in self.hashes {
            f.insert_hash(h);
        }
        f
    }
}

impl BloomFilter {
    fn insert_hash(&mut self, h1: u64) {
        let h2 = mix64(h1) | 1; // odd stride
        let mut pos = h1;
        for _ in 0..self.k {
            let bit = pos % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
            pos = pos.wrapping_add(h2);
        }
    }

    /// True when the element *may* have been inserted; false means it
    /// definitely was not.
    pub fn may_contain(&self, h1: u64) -> bool {
        let h2 = mix64(h1) | 1;
        let mut pos = h1;
        for _ in 0..self.k {
            let bit = pos % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
            pos = pos.wrapping_add(h2);
        }
        true
    }

    /// Size of the bit table in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }

    /// Serializes the filter.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.k as u64);
        put_varint(out, self.bits.len() as u64);
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decodes a filter written by [`BloomFilter::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<BloomFilter> {
        let k = r.varint()? as u32;
        let words = r.varint()? as usize;
        let mut bits = Vec::with_capacity(words);
        for _ in 0..words {
            bits.push(r.u64()?);
        }
        Ok(BloomFilter {
            num_bits: bits.len() as u64 * 64,
            bits,
            k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::hash_bytes;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<String> = (0..10_000).map(|i| format!("key-{i}")).collect();
        let mut b = BloomBuilder::new();
        for k in &keys {
            b.add_hash(hash_bytes(k.as_bytes()));
        }
        let f = b.build(10);
        for k in &keys {
            assert!(f.may_contain(hash_bytes(k.as_bytes())));
        }
    }

    #[test]
    fn false_positive_rate_near_one_percent() {
        let mut b = BloomBuilder::new();
        for i in 0..10_000 {
            b.add_hash(hash_bytes(format!("present-{i}").as_bytes()));
        }
        let f = b.build(10);
        let fp = (0..10_000)
            .filter(|i| f.may_contain(hash_bytes(format!("absent-{i}").as_bytes())))
            .count();
        // ~1% expected; allow generous slack.
        assert!(fp < 300, "false positive count {fp}");
    }

    #[test]
    fn ten_bits_per_key_storage_cost() {
        let mut b = BloomBuilder::new();
        for i in 0..1_000u32 {
            b.add_hash(mix64(i as u64));
        }
        let f = b.build(10);
        assert!(f.byte_size() <= 1_000 * 10 / 8 + 8);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut b = BloomBuilder::new();
        for i in 0..100u64 {
            b.add_hash(mix64(i));
        }
        let f = b.build(10);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let back = BloomFilter::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn empty_builder_builds_usable_filter() {
        let f = BloomBuilder::new().build(10);
        // May return anything, but must not panic and should usually say no.
        assert!(!f.may_contain(hash_bytes(b"anything")));
    }
}
