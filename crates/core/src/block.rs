//! Tablet blocks: the 64 kB units rows are grouped into on disk (§3.2).
//!
//! Two on-disk layouts exist, selected per tablet by its footer version:
//!
//! **Row layout** (footer v1/v2) stores each row contiguously:
//!
//! ```text
//! [row_count u32] [row_offset u32 × row_count] [row entries...]
//! row entry: [key_len varint][key][payload_len varint][payload]
//! ```
//!
//! **Columnar layout** (footer v3) stores the block as per-column slices,
//! each behind a time-series codec chosen column-by-column (see
//! [`littletable_codec`]):
//!
//! ```text
//! [row_count u32] [col_count varint]
//! column: [codec_tag u8][encoded_len varint][encoded bytes]
//! ```
//!
//! Columns appear in tablet-schema order, key columns included — encoded
//! primary keys are *rebuilt* from the key column values only when a
//! caller actually iterates rows, so aggregate scans that consume column
//! slices never pay for key materialization.
//!
//! The offset array (row layout) or the rebuilt key arena (columnar
//! layout) makes binary search by encoded key possible inside a block,
//! which is how a query finds its starting row after the tablet index has
//! located the right block. Blocks are individually compressed on disk;
//! this module works with the uncompressed form.

use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::util::{put_varint, Reader};
use crate::value::{ColumnType, Value};
use std::sync::OnceLock;

/// Which block layout a tablet is written with. Selected by
/// [`crate::options::Options::block_format`]; readers detect the layout
/// from the tablet's footer version, so both formats coexist in one
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockFormat {
    /// Row-major entries (footer v2 and earlier).
    Row,
    /// Per-column codec-compressed slices with zone maps (footer v3).
    Columnar,
}

/// Builds one row-layout block. Rows must be appended in ascending key
/// order.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    offsets: Vec<u32>,
    data: Vec<u8>,
    last_key: Vec<u8>,
}

impl BlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn add(&mut self, key: &[u8], payload: &[u8]) {
        debug_assert!(
            self.offsets.is_empty() || key > self.last_key.as_slice(),
            "block rows must be added in strictly ascending key order"
        );
        self.offsets.push(self.data.len() as u32);
        put_varint(&mut self.data, key.len() as u64);
        self.data.extend_from_slice(key);
        put_varint(&mut self.data, payload.len() as u64);
        self.data.extend_from_slice(payload);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
    }

    /// Number of rows added.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Estimated size of the finished (uncompressed) block.
    pub fn size_estimate(&self) -> usize {
        4 + self.offsets.len() * 4 + self.data.len()
    }

    /// The key of the last row added.
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Serializes the block and resets the builder for reuse.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_estimate());
        out.extend_from_slice(&(self.offsets.len() as u32).to_le_bytes());
        for off in &self.offsets {
            out.extend_from_slice(&off.to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        self.offsets.clear();
        self.data.clear();
        self.last_key.clear();
        out
    }
}

/// One decoded column of a columnar block, typed per the tablet schema.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSlice {
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// Doubles.
    F64(Vec<f64>),
    /// Timestamps in micros.
    Timestamp(Vec<i64>),
    /// UTF-8 strings.
    Str(Vec<String>),
    /// Byte arrays.
    Blob(Vec<Vec<u8>>),
}

impl ColumnSlice {
    fn empty_for(ty: ColumnType) -> ColumnSlice {
        match ty {
            ColumnType::I32 => ColumnSlice::I32(Vec::new()),
            ColumnType::I64 => ColumnSlice::I64(Vec::new()),
            ColumnType::F64 => ColumnSlice::F64(Vec::new()),
            ColumnType::Timestamp => ColumnSlice::Timestamp(Vec::new()),
            ColumnType::Str => ColumnSlice::Str(Vec::new()),
            ColumnType::Blob => ColumnSlice::Blob(Vec::new()),
        }
    }

    /// Number of values in the slice.
    pub fn len(&self) -> usize {
        match self {
            ColumnSlice::I32(v) => v.len(),
            ColumnSlice::I64(v) => v.len(),
            ColumnSlice::F64(v) => v.len(),
            ColumnSlice::Timestamp(v) => v.len(),
            ColumnSlice::Str(v) => v.len(),
            ColumnSlice::Blob(v) => v.len(),
        }
    }

    /// True when the slice holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i`. Panics when out of range — callers index
    /// within `len()`.
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnSlice::I32(v) => Value::I32(v[i]),
            ColumnSlice::I64(v) => Value::I64(v[i]),
            ColumnSlice::F64(v) => Value::F64(v[i]),
            ColumnSlice::Timestamp(v) => Value::Timestamp(v[i]),
            ColumnSlice::Str(v) => Value::Str(v[i].clone()),
            ColumnSlice::Blob(v) => Value::Blob(v[i].clone()),
        }
    }

    /// Approximate decoded size in bytes, for cache accounting.
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnSlice::I32(v) => v.len() * 4,
            ColumnSlice::I64(v) | ColumnSlice::Timestamp(v) => v.len() * 8,
            ColumnSlice::F64(v) => v.len() * 8,
            ColumnSlice::Str(v) => v.iter().map(|s| 24 + s.len()).sum(),
            ColumnSlice::Blob(v) => v.iter().map(|b| 24 + b.len()).sum(),
        }
    }

    fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (ColumnSlice::I32(col), Value::I32(x)) => col.push(*x),
            (ColumnSlice::I64(col), Value::I64(x)) => col.push(*x),
            (ColumnSlice::F64(col), Value::F64(x)) => col.push(*x),
            (ColumnSlice::Timestamp(col), Value::Timestamp(x)) => col.push(*x),
            (ColumnSlice::Str(col), Value::Str(x)) => col.push(x.clone()),
            (ColumnSlice::Blob(col), Value::Blob(x)) => col.push(x.clone()),
            (_, v) => {
                return Err(Error::invalid(format!(
                    "row value of type {:?} does not match column slice",
                    v.column_type()
                )))
            }
        }
        Ok(())
    }

    /// `(min, max)` of a numeric slice, for zone maps. `None` for
    /// string/blob slices, empty slices, and float slices containing NaN
    /// (NaN compares false against everything, so no zone over it can
    /// soundly prove a predicate true for every row).
    pub fn zone(&self) -> Option<(Value, Value)> {
        match self {
            ColumnSlice::I32(v) => {
                let (lo, hi) = min_max(v)?;
                Some((Value::I32(lo), Value::I32(hi)))
            }
            ColumnSlice::I64(v) => {
                let (lo, hi) = min_max(v)?;
                Some((Value::I64(lo), Value::I64(hi)))
            }
            ColumnSlice::Timestamp(v) => {
                let (lo, hi) = min_max(v)?;
                Some((Value::Timestamp(lo), Value::Timestamp(hi)))
            }
            ColumnSlice::F64(v) => {
                if v.is_empty() || v.iter().any(|x| x.is_nan()) {
                    return None;
                }
                let mut lo = v[0];
                let mut hi = v[0];
                for &x in &v[1..] {
                    if x < lo {
                        lo = x;
                    }
                    if x > hi {
                        hi = x;
                    }
                }
                Some((Value::F64(lo), Value::F64(hi)))
            }
            ColumnSlice::Str(_) | ColumnSlice::Blob(_) => None,
        }
    }
}

fn min_max<T: Copy + Ord>(v: &[T]) -> Option<(T, T)> {
    let first = *v.first()?;
    Some(
        v.iter()
            .fold((first, first), |(lo, hi), &x| (lo.min(x), hi.max(x))),
    )
}

/// Per-column `(min, max)` zones for one block, `None` where a zone is
/// not computable (see [`ColumnSlice::zone`]).
pub type ColumnZones = Vec<Option<(Value, Value)>>;

/// Builds one columnar block. Rows must arrive in ascending key order;
/// their values are buffered per column and codec-compressed on
/// [`ColumnarBlockBuilder::finish`].
#[derive(Debug)]
pub struct ColumnarBlockBuilder {
    cols: Vec<ColumnSlice>,
    last_key: Vec<u8>,
    rows: usize,
    /// Running estimate of the raw (pre-codec) byte size, used for the
    /// writer's flush threshold.
    bytes: usize,
}

impl ColumnarBlockBuilder {
    /// Creates a builder shaped for `schema`.
    pub fn new(schema: &Schema) -> Self {
        ColumnarBlockBuilder {
            cols: schema
                .columns()
                .iter()
                .map(|c| ColumnSlice::empty_for(c.ty))
                .collect(),
            last_key: Vec::new(),
            rows: 0,
            bytes: 0,
        }
    }

    /// Appends a row; `key` is its already-encoded primary key.
    pub fn add(&mut self, key: &[u8], row: &Row) -> Result<()> {
        if row.values.len() != self.cols.len() {
            return Err(Error::invalid("row width does not match schema"));
        }
        for (col, v) in self.cols.iter_mut().zip(&row.values) {
            col.push(v)?;
            self.bytes += v.mem_size();
        }
        self.rows += 1;
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        Ok(())
    }

    /// Number of rows added.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Rough size of the block before codec compression — the flush
    /// threshold input, comparable to [`BlockBuilder::size_estimate`].
    pub fn size_estimate(&self) -> usize {
        4 + self.cols.len() * 6 + self.bytes
    }

    /// The key of the last row added.
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Serializes the block, returning `(bytes, per-column zones, rows)`
    /// and resetting the builder for reuse. Zones are `(min, max)` per
    /// schema column where computable (see [`ColumnSlice::zone`]).
    pub fn finish(&mut self) -> (Vec<u8>, ColumnZones, u32) {
        let mut out = Vec::with_capacity(self.size_estimate());
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        put_varint(&mut out, self.cols.len() as u64);
        let mut zones = Vec::with_capacity(self.cols.len());
        for col in &self.cols {
            zones.push(col.zone());
            let (tag, bytes) = match col {
                ColumnSlice::I32(v) => {
                    let wide: Vec<i64> = v.iter().map(|&x| x as i64).collect();
                    littletable_codec::encode_i64_column(&wide)
                }
                ColumnSlice::I64(v) | ColumnSlice::Timestamp(v) => {
                    littletable_codec::encode_i64_column(v)
                }
                ColumnSlice::F64(v) => littletable_codec::encode_f64_column(v),
                ColumnSlice::Str(v) => {
                    let refs: Vec<&[u8]> = v.iter().map(|s| s.as_bytes()).collect();
                    littletable_codec::encode_bytes_column(&refs)
                }
                ColumnSlice::Blob(v) => {
                    let refs: Vec<&[u8]> = v.iter().map(|b| b.as_slice()).collect();
                    littletable_codec::encode_bytes_column(&refs)
                }
            };
            out.push(tag);
            put_varint(&mut out, bytes.len() as u64);
            out.extend_from_slice(&bytes);
        }
        let rows = self.rows as u32;
        for col in &mut self.cols {
            *col = ColumnSlice::empty_for(match col {
                ColumnSlice::I32(_) => ColumnType::I32,
                ColumnSlice::I64(_) => ColumnType::I64,
                ColumnSlice::F64(_) => ColumnType::F64,
                ColumnSlice::Timestamp(_) => ColumnType::Timestamp,
                ColumnSlice::Str(_) => ColumnType::Str,
                ColumnSlice::Blob(_) => ColumnType::Blob,
            });
        }
        self.rows = 0;
        self.bytes = 0;
        self.last_key.clear();
        (out, zones, rows)
    }
}

/// A parsed, uncompressed block in either layout, ready for binary
/// search, row iteration, and (columnar only) column-slice access.
#[derive(Debug, Clone)]
pub enum Block {
    /// Row-major layout.
    Row(RowBlock),
    /// Column-major layout with decoded slices.
    Columnar(ColumnarBlock),
}

impl Block {
    /// Validates and wraps an uncompressed row-layout block.
    pub fn parse(data: Vec<u8>) -> Result<Block> {
        Ok(Block::Row(RowBlock::parse(data)?))
    }

    /// Validates and decodes an uncompressed columnar block written under
    /// `schema` (the tablet footer's schema).
    pub fn parse_columnar(data: Vec<u8>, schema: &Schema) -> Result<Block> {
        Ok(Block::Columnar(ColumnarBlock::parse(data, schema)?))
    }

    /// Number of rows in the block.
    pub fn len(&self) -> usize {
        match self {
            Block::Row(b) => b.len(),
            Block::Columnar(b) => b.row_count,
        }
    }

    /// True when the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The block's decompressed size in bytes — what a cached copy of it
    /// costs in memory. For columnar blocks this counts the decoded
    /// slices plus the key arena (whether or not it has been built yet),
    /// so the cache charge is an upper bound on the resident size.
    pub fn byte_size(&self) -> usize {
        match self {
            Block::Row(b) => b.byte_size(),
            Block::Columnar(b) => b.byte_size,
        }
    }

    /// Returns `(key, payload)` of row `i` — row-layout blocks only
    /// (columnar blocks have no row payloads).
    pub fn entry(&self, i: usize) -> Result<(&[u8], &[u8])> {
        match self {
            Block::Row(b) => b.entry(i),
            Block::Columnar(_) => Err(Error::invalid(
                "columnar blocks have no row entries; use key()/row()",
            )),
        }
    }

    /// The encoded primary key of row `i`. Columnar blocks materialize
    /// their key arena on first call.
    pub fn key(&self, i: usize) -> Result<&[u8]> {
        match self {
            Block::Row(b) => b.key(i),
            Block::Columnar(b) => b.key(i),
        }
    }

    /// Materializes row `i` under the tablet's own `schema`.
    pub fn row(&self, i: usize, schema: &Schema) -> Result<Row> {
        match self {
            Block::Row(b) => {
                let (key, payload) = b.entry(i)?;
                crate::row::decode_row(key, payload, schema)
            }
            Block::Columnar(b) => {
                if i >= b.row_count {
                    return Err(Error::corrupt("block row index out of range"));
                }
                Ok(Row::new(b.columns.iter().map(|c| c.value(i)).collect()))
            }
        }
    }

    /// The decoded slice of column `idx` (tablet-schema order), or `None`
    /// for row-layout blocks. This is the aggregate-pushdown entry point:
    /// it never materializes rows or keys.
    pub fn column(&self, idx: usize) -> Option<&ColumnSlice> {
        match self {
            Block::Row(_) => None,
            Block::Columnar(b) => b.columns.get(idx),
        }
    }

    /// Index of the first row whose key is ≥ `target` (ascending-seek
    /// position). Returns `len()` when every key is smaller.
    pub fn seek_ge(&self, target: &[u8]) -> Result<usize> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid)? < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Index of the first row whose key is > `target`.
    pub fn seek_gt(&self, target: &[u8]) -> Result<usize> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid)? <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

/// A parsed row-layout block.
#[derive(Debug, Clone)]
pub struct RowBlock {
    data: Vec<u8>,
    row_count: usize,
    /// Byte offset where row entries begin (just past the offset array).
    entries_base: usize,
}

impl RowBlock {
    /// Validates and wraps an uncompressed block.
    ///
    /// `row_count` comes straight off disk, so every derived size uses
    /// checked arithmetic: a corrupt header must yield
    /// [`Error::corrupt`], never an overflow panic (debug builds) or a
    /// wrapped bounds check (32-bit release builds).
    pub fn parse(data: Vec<u8>) -> Result<RowBlock> {
        if data.len() < 4 {
            return Err(Error::corrupt("block shorter than its header"));
        }
        let row_count = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        let entries_base = row_count
            .checked_mul(4)
            .and_then(|n| n.checked_add(4))
            .ok_or_else(|| Error::corrupt("block row count overflows"))?;
        if entries_base > data.len() {
            return Err(Error::corrupt("block offset array truncated"));
        }
        if row_count > 0 {
            // The offsets are ascending, so validating the final entry
            // bounds the whole array before any row is touched.
            let at = entries_base - 4;
            let last = u32::from_le_bytes(data[at..at + 4].try_into().unwrap()) as usize;
            match entries_base.checked_add(last) {
                Some(abs) if abs < data.len() => {}
                _ => return Err(Error::corrupt("block row offset out of range")),
            }
        }
        Ok(RowBlock {
            data,
            row_count,
            entries_base,
        })
    }

    fn len(&self) -> usize {
        self.row_count
    }

    fn byte_size(&self) -> usize {
        self.data.len()
    }

    fn entry_start(&self, i: usize) -> Result<usize> {
        let at = 4 + i * 4;
        let rel = u32::from_le_bytes(self.data[at..at + 4].try_into().unwrap()) as usize;
        match self.entries_base.checked_add(rel) {
            Some(abs) if abs < self.data.len() => Ok(abs),
            _ => Err(Error::corrupt("block row offset out of range")),
        }
    }

    fn entry(&self, i: usize) -> Result<(&[u8], &[u8])> {
        if i >= self.row_count {
            return Err(Error::corrupt("block row index out of range"));
        }
        let start = self.entry_start(i)?;
        let mut r = Reader::new(&self.data[start..]);
        let key = r.len_prefixed()?;
        let payload = r.len_prefixed()?;
        Ok((key, payload))
    }

    fn key(&self, i: usize) -> Result<&[u8]> {
        Ok(self.entry(i)?.0)
    }
}

/// A parsed columnar block: decoded typed slices plus a lazily built
/// arena of encoded primary keys.
#[derive(Debug, Clone)]
pub struct ColumnarBlock {
    columns: Vec<ColumnSlice>,
    row_count: usize,
    key_indices: Vec<usize>,
    /// Encoded primary keys, built from the key column slices the first
    /// time a caller iterates by key. Aggregate scans never touch it.
    keys: OnceLock<Vec<Vec<u8>>>,
    byte_size: usize,
}

impl ColumnarBlock {
    fn parse(data: Vec<u8>, schema: &Schema) -> Result<ColumnarBlock> {
        if data.len() < 4 {
            return Err(Error::corrupt("columnar block shorter than its header"));
        }
        let row_count = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        let mut r = Reader::new(&data[4..]);
        let ncols = r.varint()? as usize;
        if ncols != schema.columns().len() {
            return Err(Error::corrupt(format!(
                "columnar block has {ncols} columns, schema has {}",
                schema.columns().len()
            )));
        }
        // Slice out each column's extent first, so the row count can be
        // sanity-checked against a fixed-stride column before anything is
        // decoded (defense in depth under the block CRC: a corrupt row
        // count must not drive a huge allocation).
        let mut extents = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let tag = r.u8()?;
            let bytes = r.len_prefixed()?;
            extents.push((tag, bytes));
        }
        if !r.is_empty() {
            return Err(Error::corrupt("trailing bytes after columnar block"));
        }
        for (col, (_, bytes)) in schema.columns().iter().zip(&extents) {
            let dense = !matches!(col.ty, ColumnType::Str | ColumnType::Blob);
            if dense && row_count > bytes.len().saturating_mul(8).saturating_add(64) {
                return Err(Error::corrupt(
                    "columnar block row count exceeds column data",
                ));
            }
        }
        let mut columns = Vec::with_capacity(ncols);
        for (col, (tag, bytes)) in schema.columns().iter().zip(&extents) {
            let slice = match col.ty {
                ColumnType::I32 => {
                    let wide = littletable_codec::decode_i64_column(*tag, bytes, row_count)?;
                    let mut narrow = Vec::with_capacity(wide.len());
                    for v in wide {
                        narrow.push(
                            i32::try_from(v)
                                .map_err(|_| Error::corrupt("int32 column value out of range"))?,
                        );
                    }
                    ColumnSlice::I32(narrow)
                }
                ColumnType::I64 => ColumnSlice::I64(littletable_codec::decode_i64_column(
                    *tag, bytes, row_count,
                )?),
                ColumnType::Timestamp => ColumnSlice::Timestamp(
                    littletable_codec::decode_i64_column(*tag, bytes, row_count)?,
                ),
                ColumnType::F64 => ColumnSlice::F64(littletable_codec::decode_f64_column(
                    *tag, bytes, row_count,
                )?),
                ColumnType::Str => {
                    let raw = littletable_codec::decode_bytes_column(*tag, bytes, row_count)?;
                    let mut strs = Vec::with_capacity(raw.len());
                    for b in raw {
                        strs.push(String::from_utf8(b).map_err(|_| {
                            Error::corrupt("string column value is not valid UTF-8")
                        })?);
                    }
                    ColumnSlice::Str(strs)
                }
                ColumnType::Blob => ColumnSlice::Blob(littletable_codec::decode_bytes_column(
                    *tag, bytes, row_count,
                )?),
            };
            columns.push(slice);
        }
        // Cache charge: decoded slices plus the worst-case key arena, so
        // the charge is stable whether or not keys get materialized.
        let key_indices = schema.key_indices().to_vec();
        let key_arena_est: usize = key_indices
            .iter()
            .map(|&ki| columns[ki].byte_size() + 2 * row_count)
            .sum::<usize>()
            + row_count * std::mem::size_of::<Vec<u8>>();
        let byte_size = columns.iter().map(|c| c.byte_size()).sum::<usize>()
            + key_arena_est
            + std::mem::size_of::<ColumnarBlock>();
        Ok(ColumnarBlock {
            columns,
            row_count,
            key_indices,
            keys: OnceLock::new(),
            byte_size,
        })
    }

    fn key(&self, i: usize) -> Result<&[u8]> {
        if i >= self.row_count {
            return Err(Error::corrupt("block row index out of range"));
        }
        let keys = self.keys.get_or_init(|| {
            let mut out = Vec::with_capacity(self.row_count);
            let mut buf = Vec::new();
            for row in 0..self.row_count {
                buf.clear();
                for &ki in &self.key_indices {
                    crate::keyenc::encode_component(&mut buf, &self.columns[ki].value(row))
                        .expect("key columns are never F64");
                }
                out.push(buf.clone());
            }
            out
        });
        Ok(&keys[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn sample_block(n: u64) -> Block {
        let mut b = BlockBuilder::new();
        for i in 0..n {
            let key = format!("key-{i:04}");
            let payload = format!("value-{i}");
            b.add(key.as_bytes(), payload.as_bytes());
        }
        Block::parse(b.finish()).unwrap()
    }

    fn col_schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("dev", ColumnType::Str),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("cnt", ColumnType::I64),
                ColumnDef::new("load", ColumnType::F64),
            ],
            &["dev", "ts"],
        )
        .unwrap()
    }

    fn sample_columnar(n: i64) -> (Block, Schema) {
        let s = col_schema();
        let mut b = ColumnarBlockBuilder::new(&s);
        // Rows must arrive in ascending key order: group by device,
        // ascending timestamps within each device.
        let chunk = (n + 2) / 3;
        for i in 0..n {
            let row = Row::new(vec![
                Value::Str(format!("dev-{}", i / chunk)),
                Value::Timestamp(1000 + i),
                Value::I64(i * 10),
                Value::F64(i as f64 / 2.0),
            ]);
            let key = row.encode_key(&s).unwrap();
            b.add(&key, &row).unwrap();
        }
        let (data, zones, rows) = b.finish();
        assert_eq!(rows as i64, n);
        assert_eq!(zones.len(), 4);
        (Block::parse_columnar(data, &s).unwrap(), s)
    }

    #[test]
    fn build_and_read_back() {
        let blk = sample_block(100);
        assert_eq!(blk.len(), 100);
        let (k, p) = blk.entry(42).unwrap();
        assert_eq!(k, b"key-0042");
        assert_eq!(p, b"value-42");
    }

    #[test]
    fn empty_block_round_trips() {
        let mut b = BlockBuilder::new();
        let blk = Block::parse(b.finish()).unwrap();
        assert!(blk.is_empty());
        assert_eq!(blk.seek_ge(b"x").unwrap(), 0);
    }

    #[test]
    fn seek_ge_finds_boundaries() {
        let blk = sample_block(10);
        assert_eq!(blk.seek_ge(b"key-0000").unwrap(), 0);
        assert_eq!(blk.seek_ge(b"key-0005").unwrap(), 5);
        assert_eq!(blk.seek_ge(b"key-00055").unwrap(), 6); // between 5 and 6
        assert_eq!(blk.seek_ge(b"key-9999").unwrap(), 10);
        assert_eq!(blk.seek_ge(b"").unwrap(), 0);
    }

    #[test]
    fn seek_gt_skips_equal() {
        let blk = sample_block(10);
        assert_eq!(blk.seek_gt(b"key-0005").unwrap(), 6);
        assert_eq!(blk.seek_gt(b"key-0009").unwrap(), 10);
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new();
        b.add(b"a", b"1");
        let _ = b.finish();
        assert!(b.is_empty());
        b.add(b"a", b"2"); // would panic if last_key were stale
        let blk = Block::parse(b.finish()).unwrap();
        assert_eq!(blk.entry(0).unwrap().1, b"2");
    }

    #[test]
    fn size_estimate_matches_finish() {
        let mut b = BlockBuilder::new();
        for i in 0..50 {
            b.add(format!("k{i:02}").as_bytes(), b"pppp");
        }
        let est = b.size_estimate();
        let actual = b.finish().len();
        assert_eq!(est, actual);
    }

    #[test]
    fn corrupt_blocks_are_rejected() {
        assert!(Block::parse(vec![1, 2]).is_err());
        // Claims 100 rows but has no offset array.
        let mut data = 100u32.to_le_bytes().to_vec();
        data.push(0);
        assert!(Block::parse(data).is_err());
        // Final row offset points past the end: caught at parse time.
        let mut b = BlockBuilder::new();
        b.add(b"k", b"v");
        let mut data = b.finish();
        data[4] = 0xFF;
        assert!(Block::parse(data).is_err());
        // A non-final bad offset still surfaces at entry() time.
        let mut b = BlockBuilder::new();
        b.add(b"a", b"1");
        b.add(b"b", b"2");
        let mut data = b.finish();
        data[4] = 0xFF; // first of two offsets
        let blk = Block::parse(data).unwrap();
        assert!(blk.entry(0).is_err());
    }

    #[test]
    fn huge_row_count_is_corrupt_not_overflow() {
        // row_count * 4 + 4 must not overflow on any target; a header
        // claiming u32::MAX rows is corruption, full stop.
        let mut data = u32::MAX.to_le_bytes().to_vec();
        data.extend_from_slice(&[0u8; 64]);
        assert!(matches!(Block::parse(data), Err(Error::Corrupt(_))));
    }

    #[test]
    fn columnar_round_trips_rows_and_keys() {
        let (blk, s) = sample_columnar(200);
        assert_eq!(blk.len(), 200);
        for i in 0..200usize {
            let row = blk.row(i, &s).unwrap();
            assert_eq!(row.values[1], Value::Timestamp(1000 + i as i64));
            assert_eq!(row.values[2], Value::I64(i as i64 * 10));
            let expect = row.encode_key(&s).unwrap();
            assert_eq!(blk.key(i).unwrap(), expect.as_slice());
        }
        // Column slices come back typed, without row materialization.
        match blk.column(2).unwrap() {
            ColumnSlice::I64(v) => assert_eq!(v.iter().sum::<i64>(), (0..200).sum::<i64>() * 10),
            other => panic!("wrong slice type: {other:?}"),
        }
        assert!(blk.column(9).is_none());
    }

    #[test]
    fn columnar_zones_cover_numeric_columns() {
        let s = col_schema();
        let mut b = ColumnarBlockBuilder::new(&s);
        for i in 0..50i64 {
            let row = Row::new(vec![
                Value::Str("d".into()),
                Value::Timestamp(1000 + i),
                Value::I64(-i),
                Value::F64(i as f64),
            ]);
            let key = row.encode_key(&s).unwrap();
            b.add(&key, &row).unwrap();
        }
        let (_, zones, _) = b.finish();
        assert_eq!(zones[0], None); // strings carry no zone
        assert_eq!(
            zones[1],
            Some((Value::Timestamp(1000), Value::Timestamp(1049)))
        );
        assert_eq!(zones[2], Some((Value::I64(-49), Value::I64(0))));
        assert_eq!(zones[3], Some((Value::F64(0.0), Value::F64(49.0))));
    }

    #[test]
    fn nan_poisons_float_zones() {
        let s = col_schema();
        let mut b = ColumnarBlockBuilder::new(&s);
        for i in 0..3i64 {
            let row = Row::new(vec![
                Value::Str("d".into()),
                Value::Timestamp(i),
                Value::I64(i),
                Value::F64(if i == 1 { f64::NAN } else { i as f64 }),
            ]);
            let key = row.encode_key(&s).unwrap();
            b.add(&key, &row).unwrap();
        }
        let (data, zones, _) = b.finish();
        assert_eq!(zones[3], None);
        // The NaN itself still round-trips through the block.
        let blk = Block::parse_columnar(data, &s).unwrap();
        match blk.row(1, &s).unwrap().values[3] {
            Value::F64(f) => assert!(f.is_nan()),
            ref v => panic!("wrong value {v:?}"),
        }
    }

    #[test]
    fn columnar_seek_by_key() {
        let (blk, s) = sample_columnar(30);
        let probe = Row::new(vec![
            Value::Str("dev-1".into()),
            Value::Timestamp(1015),
            Value::I64(0),
            Value::F64(0.0),
        ]);
        let key = probe.encode_key(&s).unwrap();
        let i = blk.seek_ge(&key).unwrap();
        assert_eq!(blk.key(i).unwrap(), key.as_slice());
        assert_eq!(blk.seek_gt(&key).unwrap(), i + 1);
    }

    #[test]
    fn corrupt_columnar_blocks_are_rejected() {
        let s = col_schema();
        assert!(Block::parse_columnar(vec![1, 2], &s).is_err());
        // Wrong column count.
        let mut data = 0u32.to_le_bytes().to_vec();
        data.push(2); // claims 2 columns, schema has 4
        assert!(Block::parse_columnar(data, &s).is_err());
        // Row count far beyond the column data.
        let (data, _, _) = {
            let mut b = ColumnarBlockBuilder::new(&s);
            let row = Row::new(vec![
                Value::Str("d".into()),
                Value::Timestamp(1),
                Value::I64(1),
                Value::F64(1.0),
            ]);
            let key = row.encode_key(&s).unwrap();
            b.add(&key, &row).unwrap();
            b.finish()
        };
        let mut big = data.clone();
        big[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Block::parse_columnar(big, &s),
            Err(Error::Corrupt(_))
        ));
        // Truncation inside a column slice.
        let mut short = data.clone();
        short.truncate(data.len() - 1);
        assert!(Block::parse_columnar(short, &s).is_err());
        // An unknown codec tag is corruption, not a panic.
        let mut bad_tag = data;
        bad_tag[5] = 0x7F; // first column's codec tag
        assert!(matches!(
            Block::parse_columnar(bad_tag, &s),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn columnar_entry_is_rejected() {
        let (blk, _) = sample_columnar(3);
        assert!(blk.entry(0).is_err());
    }
}
