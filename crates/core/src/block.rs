//! Tablet blocks: the 64 kB units rows are grouped into on disk (§3.2).
//!
//! An uncompressed block is
//!
//! ```text
//! [row_count u32] [row_offset u32 × row_count] [row entries...]
//! row entry: [key_len varint][key][payload_len varint][payload]
//! ```
//!
//! The offset array makes binary search by encoded key possible inside a
//! block, which is how a query finds its starting row after the tablet
//! index has located the right block. Blocks are individually compressed on
//! disk; this module works with the uncompressed form.

use crate::error::{Error, Result};
use crate::util::{put_varint, Reader};

/// Builds one block. Rows must be appended in ascending key order.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    offsets: Vec<u32>,
    data: Vec<u8>,
    last_key: Vec<u8>,
}

impl BlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn add(&mut self, key: &[u8], payload: &[u8]) {
        debug_assert!(
            self.offsets.is_empty() || key > self.last_key.as_slice(),
            "block rows must be added in strictly ascending key order"
        );
        self.offsets.push(self.data.len() as u32);
        put_varint(&mut self.data, key.len() as u64);
        self.data.extend_from_slice(key);
        put_varint(&mut self.data, payload.len() as u64);
        self.data.extend_from_slice(payload);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
    }

    /// Number of rows added.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Estimated size of the finished (uncompressed) block.
    pub fn size_estimate(&self) -> usize {
        4 + self.offsets.len() * 4 + self.data.len()
    }

    /// The key of the last row added.
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Serializes the block and resets the builder for reuse.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_estimate());
        out.extend_from_slice(&(self.offsets.len() as u32).to_le_bytes());
        for off in &self.offsets {
            out.extend_from_slice(&off.to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        self.offsets.clear();
        self.data.clear();
        self.last_key.clear();
        out
    }
}

/// A parsed, uncompressed block, ready for binary search and iteration.
#[derive(Debug, Clone)]
pub struct Block {
    data: Vec<u8>,
    row_count: usize,
    /// Byte offset where row entries begin (just past the offset array).
    entries_base: usize,
}

impl Block {
    /// Validates and wraps an uncompressed block.
    ///
    /// `row_count` comes straight off disk, so every derived size uses
    /// checked arithmetic: a corrupt header must yield
    /// [`Error::corrupt`], never an overflow panic (debug builds) or a
    /// wrapped bounds check (32-bit release builds).
    pub fn parse(data: Vec<u8>) -> Result<Block> {
        if data.len() < 4 {
            return Err(Error::corrupt("block shorter than its header"));
        }
        let row_count = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        let entries_base = row_count
            .checked_mul(4)
            .and_then(|n| n.checked_add(4))
            .ok_or_else(|| Error::corrupt("block row count overflows"))?;
        if entries_base > data.len() {
            return Err(Error::corrupt("block offset array truncated"));
        }
        if row_count > 0 {
            // The offsets are ascending, so validating the final entry
            // bounds the whole array before any row is touched.
            let at = entries_base - 4;
            let last = u32::from_le_bytes(data[at..at + 4].try_into().unwrap()) as usize;
            match entries_base.checked_add(last) {
                Some(abs) if abs < data.len() => {}
                _ => return Err(Error::corrupt("block row offset out of range")),
            }
        }
        Ok(Block {
            data,
            row_count,
            entries_base,
        })
    }

    /// Number of rows in the block.
    pub fn len(&self) -> usize {
        self.row_count
    }

    /// True when the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// The block's decompressed size in bytes — what a cached copy of it
    /// costs in memory.
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    fn entry_start(&self, i: usize) -> Result<usize> {
        let at = 4 + i * 4;
        let rel = u32::from_le_bytes(self.data[at..at + 4].try_into().unwrap()) as usize;
        match self.entries_base.checked_add(rel) {
            Some(abs) if abs < self.data.len() => Ok(abs),
            _ => Err(Error::corrupt("block row offset out of range")),
        }
    }

    /// Returns `(key, payload)` of row `i`.
    pub fn entry(&self, i: usize) -> Result<(&[u8], &[u8])> {
        if i >= self.row_count {
            return Err(Error::corrupt("block row index out of range"));
        }
        let start = self.entry_start(i)?;
        let mut r = Reader::new(&self.data[start..]);
        let key = r.len_prefixed()?;
        let payload = r.len_prefixed()?;
        Ok((key, payload))
    }

    /// The key of row `i`.
    pub fn key(&self, i: usize) -> Result<&[u8]> {
        Ok(self.entry(i)?.0)
    }

    /// Index of the first row whose key is ≥ `target` (ascending-seek
    /// position). Returns `len()` when every key is smaller.
    pub fn seek_ge(&self, target: &[u8]) -> Result<usize> {
        let mut lo = 0usize;
        let mut hi = self.row_count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid)? < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Index of the first row whose key is > `target`.
    pub fn seek_gt(&self, target: &[u8]) -> Result<usize> {
        let mut lo = 0usize;
        let mut hi = self.row_count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid)? <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(n: u64) -> Block {
        let mut b = BlockBuilder::new();
        for i in 0..n {
            let key = format!("key-{i:04}");
            let payload = format!("value-{i}");
            b.add(key.as_bytes(), payload.as_bytes());
        }
        Block::parse(b.finish()).unwrap()
    }

    #[test]
    fn build_and_read_back() {
        let blk = sample_block(100);
        assert_eq!(blk.len(), 100);
        let (k, p) = blk.entry(42).unwrap();
        assert_eq!(k, b"key-0042");
        assert_eq!(p, b"value-42");
    }

    #[test]
    fn empty_block_round_trips() {
        let mut b = BlockBuilder::new();
        let blk = Block::parse(b.finish()).unwrap();
        assert!(blk.is_empty());
        assert_eq!(blk.seek_ge(b"x").unwrap(), 0);
    }

    #[test]
    fn seek_ge_finds_boundaries() {
        let blk = sample_block(10);
        assert_eq!(blk.seek_ge(b"key-0000").unwrap(), 0);
        assert_eq!(blk.seek_ge(b"key-0005").unwrap(), 5);
        assert_eq!(blk.seek_ge(b"key-00055").unwrap(), 6); // between 5 and 6
        assert_eq!(blk.seek_ge(b"key-9999").unwrap(), 10);
        assert_eq!(blk.seek_ge(b"").unwrap(), 0);
    }

    #[test]
    fn seek_gt_skips_equal() {
        let blk = sample_block(10);
        assert_eq!(blk.seek_gt(b"key-0005").unwrap(), 6);
        assert_eq!(blk.seek_gt(b"key-0009").unwrap(), 10);
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new();
        b.add(b"a", b"1");
        let _ = b.finish();
        assert!(b.is_empty());
        b.add(b"a", b"2"); // would panic if last_key were stale
        let blk = Block::parse(b.finish()).unwrap();
        assert_eq!(blk.entry(0).unwrap().1, b"2");
    }

    #[test]
    fn size_estimate_matches_finish() {
        let mut b = BlockBuilder::new();
        for i in 0..50 {
            b.add(format!("k{i:02}").as_bytes(), b"pppp");
        }
        let est = b.size_estimate();
        let actual = b.finish().len();
        assert_eq!(est, actual);
    }

    #[test]
    fn corrupt_blocks_are_rejected() {
        assert!(Block::parse(vec![1, 2]).is_err());
        // Claims 100 rows but has no offset array.
        let mut data = 100u32.to_le_bytes().to_vec();
        data.push(0);
        assert!(Block::parse(data).is_err());
        // Final row offset points past the end: caught at parse time.
        let mut b = BlockBuilder::new();
        b.add(b"k", b"v");
        let mut data = b.finish();
        data[4] = 0xFF;
        assert!(Block::parse(data).is_err());
        // A non-final bad offset still surfaces at entry() time.
        let mut b = BlockBuilder::new();
        b.add(b"a", b"1");
        b.add(b"b", b"2");
        let mut data = b.finish();
        data[4] = 0xFF; // first of two offsets
        let blk = Block::parse(data).unwrap();
        assert!(blk.entry(0).is_err());
    }

    #[test]
    fn huge_row_count_is_corrupt_not_overflow() {
        // row_count * 4 + 4 must not overflow on any target; a header
        // claiming u32::MAX rows is corruption, full stop.
        let mut data = u32::MAX.to_le_bytes().to_vec();
        data.extend_from_slice(&[0u8; 64]);
        assert!(matches!(Block::parse(data), Err(Error::Corrupt(_))));
    }
}
