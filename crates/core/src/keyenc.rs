//! Order-preserving (memcmp-comparable) primary-key encoding.
//!
//! Every tablet stores rows sorted by primary key, block indexes store
//! last-keys, and the merge cursor compares keys from many tablets — so the
//! engine encodes each key once into a byte string whose `memcmp` order
//! equals the typed tuple order:
//!
//! * integers and timestamps: 8 bytes big-endian with the sign bit flipped
//!   (`int32` key components are encoded at 64-bit width so widening a key
//!   column never reorders a table);
//! * strings and blobs: `0x00` bytes escaped as `0x00 0xFF`, terminated by
//!   `0x00 0x00` — so shorter strings sort before their extensions and the
//!   terminator sorts below every escaped byte;
//! * doubles are not permitted in keys (see schema validation).
//!
//! A *prefix* of key components encodes to a byte-prefix of every full key
//! that starts with those components, which is what makes the paper's
//! "query by network" / "query by network and device" patterns single
//! contiguous ranges.

use crate::error::{Error, Result};
use crate::value::{ColumnType, Value};
use std::ops::Bound;

/// Appends the order-preserving encoding of one key component.
pub fn encode_component(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::I32(x) => encode_int(out, *x as i64),
        Value::I64(x) => encode_int(out, *x),
        Value::Timestamp(x) => encode_int(out, *x),
        Value::Str(s) => encode_bytes(out, s.as_bytes()),
        Value::Blob(b) => encode_bytes(out, b),
        Value::F64(_) => return Err(Error::invalid("double values cannot be key components")),
    }
    Ok(())
}

fn encode_int(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&((v as u64) ^ (1u64 << 63)).to_be_bytes());
}

fn encode_bytes(out: &mut Vec<u8>, b: &[u8]) {
    for &byte in b {
        if byte == 0 {
            out.push(0);
            out.push(0xFF);
        } else {
            out.push(byte);
        }
    }
    out.push(0);
    out.push(0);
}

/// Encodes a full key or key prefix: `values` must match a prefix of
/// `types` (the schema's key column types, trailing timestamp included).
pub fn encode_prefix(values: &[Value], types: &[ColumnType]) -> Result<Vec<u8>> {
    if values.len() > types.len() {
        return Err(Error::invalid(format!(
            "key prefix has {} components but the key has {}",
            values.len(),
            types.len()
        )));
    }
    let mut out = Vec::with_capacity(values.len() * 9);
    for (v, &ty) in values.iter().zip(types) {
        if !v.fits(ty) {
            return Err(Error::invalid(format!(
                "key component of type {} does not fit key column of type {}",
                v.column_type(),
                ty
            )));
        }
        encode_component(&mut out, v)?;
    }
    Ok(out)
}

/// Decodes a full key back into typed values, given the key column types.
pub fn decode_key(mut key: &[u8], types: &[ColumnType]) -> Result<Vec<Value>> {
    let mut out = Vec::with_capacity(types.len());
    for &ty in types {
        let (v, rest) = decode_component(key, ty)?;
        out.push(v);
        key = rest;
    }
    if !key.is_empty() {
        return Err(Error::corrupt("trailing bytes after key"));
    }
    Ok(out)
}

fn decode_component(key: &[u8], ty: ColumnType) -> Result<(Value, &[u8])> {
    match ty {
        ColumnType::I32 | ColumnType::I64 | ColumnType::Timestamp => {
            if key.len() < 8 {
                return Err(Error::corrupt("key integer truncated"));
            }
            let raw = u64::from_be_bytes(key[..8].try_into().unwrap());
            let v = (raw ^ (1u64 << 63)) as i64;
            let value = match ty {
                ColumnType::I32 => {
                    let v32 =
                        i32::try_from(v).map_err(|_| Error::corrupt("i32 key out of range"))?;
                    Value::I32(v32)
                }
                ColumnType::I64 => Value::I64(v),
                _ => Value::Timestamp(v),
            };
            Ok((value, &key[8..]))
        }
        ColumnType::Str | ColumnType::Blob => {
            let mut bytes = Vec::new();
            let mut i = 0;
            loop {
                if i + 1 > key.len() && i >= key.len() {
                    return Err(Error::corrupt("key string unterminated"));
                }
                let b = *key
                    .get(i)
                    .ok_or_else(|| Error::corrupt("key string truncated"))?;
                if b == 0 {
                    let next = *key
                        .get(i + 1)
                        .ok_or_else(|| Error::corrupt("key escape truncated"))?;
                    if next == 0 {
                        i += 2;
                        break;
                    } else if next == 0xFF {
                        bytes.push(0);
                        i += 2;
                    } else {
                        return Err(Error::corrupt("bad key escape"));
                    }
                } else {
                    bytes.push(b);
                    i += 1;
                }
            }
            let value = match ty {
                ColumnType::Str => Value::Str(
                    String::from_utf8(bytes).map_err(|_| Error::corrupt("key string not UTF-8"))?,
                ),
                _ => Value::Blob(bytes),
            };
            Ok((value, &key[i..]))
        }
        ColumnType::F64 => Err(Error::corrupt("double in encoded key")),
    }
}

/// Returns the end offset of each key component inside an encoded key, in
/// component order (the last boundary is the full key length). Used to
/// enter every key *prefix* into a tablet's Bloom filter so prefix lookups
/// can consult it.
pub fn component_boundaries(key: &[u8], types: &[ColumnType]) -> Result<Vec<usize>> {
    let mut boundaries = Vec::with_capacity(types.len());
    let mut pos = 0usize;
    for &ty in types {
        match ty {
            ColumnType::I32 | ColumnType::I64 | ColumnType::Timestamp => {
                pos += 8;
                if pos > key.len() {
                    return Err(Error::corrupt("key integer truncated"));
                }
            }
            ColumnType::Str | ColumnType::Blob => loop {
                let b = *key
                    .get(pos)
                    .ok_or_else(|| Error::corrupt("key string truncated"))?;
                pos += 1;
                if b == 0 {
                    let n = *key
                        .get(pos)
                        .ok_or_else(|| Error::corrupt("key escape truncated"))?;
                    pos += 1;
                    if n == 0 {
                        break;
                    }
                    if n != 0xFF {
                        return Err(Error::corrupt("bad key escape"));
                    }
                }
            },
            ColumnType::F64 => return Err(Error::corrupt("double in encoded key")),
        }
        boundaries.push(pos);
    }
    Ok(boundaries)
}

/// The smallest byte string greater than every string with prefix `p`, or
/// `None` when `p` is all `0xFF` (no upper bound exists).
pub fn prefix_successor(mut p: Vec<u8>) -> Option<Vec<u8>> {
    while let Some(&last) = p.last() {
        if last == 0xFF {
            p.pop();
        } else {
            *p.last_mut().unwrap() += 1;
            return Some(p);
        }
    }
    None
}

/// An encoded-key range with inclusive/exclusive bounds, the key dimension
/// of the paper's two-dimensional query bounding box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Lower bound on encoded keys.
    pub start: Bound<Vec<u8>>,
    /// Upper bound on encoded keys.
    pub end: Bound<Vec<u8>>,
}

impl KeyRange {
    /// The whole key space.
    pub fn all() -> Self {
        KeyRange {
            start: Bound::Unbounded,
            end: Bound::Unbounded,
        }
    }

    /// All keys beginning with the given encoded prefix.
    pub fn for_prefix(encoded: Vec<u8>) -> Self {
        let end = match prefix_successor(encoded.clone()) {
            Some(s) => Bound::Excluded(s),
            None => Bound::Unbounded,
        };
        KeyRange {
            start: Bound::Included(encoded),
            end,
        }
    }

    /// Builds a range from prefix bounds with subtree semantics: an
    /// inclusive bound includes every key extending the prefix, an
    /// exclusive bound excludes all of them.
    pub fn from_bounds(min: Option<(Vec<u8>, bool)>, max: Option<(Vec<u8>, bool)>) -> Self {
        let start = match min {
            None => Bound::Unbounded,
            Some((enc, true)) => Bound::Included(enc),
            Some((enc, false)) => match prefix_successor(enc) {
                Some(s) => Bound::Included(s),
                None => Bound::Excluded(vec![0xFF; 0]), // degenerate: nothing above
            },
        };
        let end = match max {
            None => Bound::Unbounded,
            Some((enc, true)) => match prefix_successor(enc) {
                Some(s) => Bound::Excluded(s),
                None => Bound::Unbounded,
            },
            Some((enc, false)) => Bound::Excluded(enc),
        };
        KeyRange { start, end }
    }

    /// True when `key` lies inside the range.
    pub fn contains(&self, key: &[u8]) -> bool {
        let lower_ok = match &self.start {
            Bound::Unbounded => true,
            Bound::Included(s) => key >= s.as_slice(),
            Bound::Excluded(s) => key > s.as_slice(),
        };
        let upper_ok = match &self.end {
            Bound::Unbounded => true,
            Bound::Included(e) => key <= e.as_slice(),
            Bound::Excluded(e) => key < e.as_slice(),
        };
        lower_ok && upper_ok
    }

    /// True when no key can satisfy the range.
    pub fn is_certainly_empty(&self) -> bool {
        match (&self.start, &self.end) {
            (Bound::Included(s), Bound::Excluded(e)) => s >= e,
            (Bound::Included(s), Bound::Included(e)) => s > e,
            (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
            (Bound::Excluded(s), Bound::Included(e)) => s > e,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn enc1(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        encode_component(&mut out, v).unwrap();
        out
    }

    #[test]
    fn integers_sort_correctly() {
        let vals = [i64::MIN, -100, -1, 0, 1, 100, i64::MAX];
        for w in vals.windows(2) {
            assert!(
                enc1(&Value::I64(w[0])) < enc1(&Value::I64(w[1])),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn i32_and_i64_encode_identically() {
        assert_eq!(enc1(&Value::I32(-7)), enc1(&Value::I64(-7)));
        assert_eq!(
            enc1(&Value::I32(i32::MAX)),
            enc1(&Value::I64(i32::MAX as i64))
        );
    }

    #[test]
    fn strings_sort_with_prefix_rules() {
        let cases = [
            ("", "a"),
            ("a", "a\0"),
            ("a\0", "a\x01"),
            ("a\0", "ab"),
            ("ab", "b"),
            ("a", "aa"),
        ];
        for (lo, hi) in cases {
            assert!(
                enc1(&Value::Str(lo.into())) < enc1(&Value::Str(hi.into())),
                "{lo:?} !< {hi:?}"
            );
        }
    }

    #[test]
    fn doubles_are_rejected() {
        let mut out = Vec::new();
        assert!(encode_component(&mut out, &Value::F64(1.0)).is_err());
    }

    #[test]
    fn tuple_encoding_orders_lexicographically() {
        let types = [ColumnType::Str, ColumnType::I64, ColumnType::Timestamp];
        let k = |s: &str, d: i64, t: i64| {
            encode_prefix(
                &[Value::Str(s.into()), Value::I64(d), Value::Timestamp(t)],
                &types,
            )
            .unwrap()
        };
        assert!(k("net1", 1, 10) < k("net1", 1, 11));
        assert!(k("net1", 1, 999) < k("net1", 2, 0));
        assert!(k("net1", 99, 999) < k("net2", 0, 0));
    }

    #[test]
    fn prefix_is_byte_prefix_of_extensions() {
        let types = [ColumnType::Str, ColumnType::I64, ColumnType::Timestamp];
        let p = encode_prefix(&[Value::Str("net1".into())], &types).unwrap();
        let full = encode_prefix(
            &[
                Value::Str("net1".into()),
                Value::I64(5),
                Value::Timestamp(3),
            ],
            &types,
        )
        .unwrap();
        assert!(full.starts_with(&p));
    }

    #[test]
    fn prefix_too_long_or_mistyped_fails() {
        let types = [ColumnType::I64, ColumnType::Timestamp];
        assert!(
            encode_prefix(&[Value::I64(1), Value::Timestamp(2), Value::I64(3)], &types).is_err()
        );
        assert!(encode_prefix(&[Value::Str("x".into())], &types).is_err());
    }

    #[test]
    fn decode_key_round_trips() {
        let types = [
            ColumnType::Str,
            ColumnType::I32,
            ColumnType::Blob,
            ColumnType::Timestamp,
        ];
        let vals = vec![
            Value::Str("a\0b".into()),
            Value::I32(-9),
            Value::Blob(vec![0, 1, 0, 255]),
            Value::Timestamp(123_456),
        ];
        let enc = encode_prefix(&vals, &types).unwrap();
        assert_eq!(decode_key(&enc, &types).unwrap(), vals);
    }

    #[test]
    fn decode_rejects_garbage() {
        let types = [ColumnType::I64, ColumnType::Timestamp];
        assert!(decode_key(&[1, 2, 3], &types).is_err());
        // trailing bytes
        let mut enc = encode_prefix(&[Value::I64(1), Value::Timestamp(2)], &types).unwrap();
        enc.push(0);
        assert!(decode_key(&enc, &types).is_err());
    }

    #[test]
    fn prefix_successor_rules() {
        assert_eq!(prefix_successor(vec![1, 2, 3]), Some(vec![1, 2, 4]));
        assert_eq!(prefix_successor(vec![1, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_successor(vec![0xFF, 0xFF]), None);
        assert_eq!(prefix_successor(vec![]), None);
    }

    #[test]
    fn key_range_for_prefix_contains_exactly_subtree() {
        let types = [ColumnType::I64, ColumnType::I64, ColumnType::Timestamp];
        let p = encode_prefix(&[Value::I64(5)], &types).unwrap();
        let range = KeyRange::for_prefix(p);
        let inside =
            encode_prefix(&[Value::I64(5), Value::I64(0), Value::Timestamp(0)], &types).unwrap();
        let below =
            encode_prefix(&[Value::I64(4), Value::I64(9), Value::Timestamp(9)], &types).unwrap();
        let above =
            encode_prefix(&[Value::I64(6), Value::I64(0), Value::Timestamp(0)], &types).unwrap();
        assert!(range.contains(&inside));
        assert!(!range.contains(&below));
        assert!(!range.contains(&above));
    }

    #[test]
    fn from_bounds_subtree_semantics() {
        let types = [ColumnType::I64, ColumnType::Timestamp];
        let p5 = encode_prefix(&[Value::I64(5)], &types).unwrap();
        let p7 = encode_prefix(&[Value::I64(7)], &types).unwrap();
        let in5 = encode_prefix(&[Value::I64(5), Value::Timestamp(1)], &types).unwrap();
        let in7 = encode_prefix(&[Value::I64(7), Value::Timestamp(1)], &types).unwrap();
        let in6 = encode_prefix(&[Value::I64(6), Value::Timestamp(1)], &types).unwrap();

        // [5, 7] inclusive both: contains rows under 5, 6, and 7.
        let r = KeyRange::from_bounds(Some((p5.clone(), true)), Some((p7.clone(), true)));
        assert!(r.contains(&in5) && r.contains(&in6) && r.contains(&in7));

        // (5, 7) exclusive both: only rows under 6.
        let r = KeyRange::from_bounds(Some((p5.clone(), false)), Some((p7.clone(), false)));
        assert!(!r.contains(&in5) && r.contains(&in6) && !r.contains(&in7));
    }

    #[test]
    fn empty_range_detected() {
        let r = KeyRange::from_bounds(Some((vec![9], true)), Some((vec![3], false)));
        assert!(r.is_certainly_empty());
        assert!(!KeyRange::all().is_certainly_empty());
    }

    proptest! {
        #[test]
        fn prop_int_order_preserved(a in any::<i64>(), b in any::<i64>()) {
            let ea = enc1(&Value::I64(a));
            let eb = enc1(&Value::I64(b));
            prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
        }

        #[test]
        fn prop_string_order_preserved(a in ".*", b in ".*") {
            let ea = enc1(&Value::Str(a.clone()));
            let eb = enc1(&Value::Str(b.clone()));
            prop_assert_eq!(a.as_bytes().cmp(b.as_bytes()), ea.cmp(&eb));
        }

        #[test]
        fn prop_blob_order_preserved(
            a in proptest::collection::vec(any::<u8>(), 0..64),
            b in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let ea = enc1(&Value::Blob(a.clone()));
            let eb = enc1(&Value::Blob(b.clone()));
            prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
        }

        #[test]
        fn prop_key_round_trip(
            s in ".*",
            n in any::<i64>(),
            t in any::<i64>(),
        ) {
            let types = [ColumnType::Str, ColumnType::I64, ColumnType::Timestamp];
            let vals = vec![Value::Str(s), Value::I64(n), Value::Timestamp(t)];
            let enc = encode_prefix(&vals, &types).unwrap();
            prop_assert_eq!(decode_key(&enc, &types).unwrap(), vals);
        }

        #[test]
        fn prop_successor_is_upper_bound(
            p in proptest::collection::vec(any::<u8>(), 1..16),
            ext in proptest::collection::vec(any::<u8>(), 0..16),
        ) {
            if let Some(s) = prefix_successor(p.clone()) {
                let mut extended = p.clone();
                extended.extend_from_slice(&ext);
                prop_assert!(extended < s);
                prop_assert!(p < s);
            }
        }
    }
}
