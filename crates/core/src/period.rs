//! Application-driven time periods (§3.4.2).
//!
//! LittleTable groups time into three ranges, each measured in even
//! intervals from the Unix epoch: the six 4-hour periods of the most recent
//! day, the seven days of the most recent week, and whole weeks before
//! that. Rows are binned into filling tablets by period, and the merge
//! policy never combines tablets from different periods — keeping recent
//! data finely clustered by time while older data coarsens, matching how
//! far back queries of different ages look.

use littletable_vfs::{Micros, MICROS_PER_SEC};

/// Four hours in micros.
pub const FOUR_HOURS: Micros = 4 * 3600 * MICROS_PER_SEC;
/// One day in micros.
pub const DAY: Micros = 24 * 3600 * MICROS_PER_SEC;
/// One week in micros.
pub const WEEK: Micros = 7 * DAY;

/// Which of the three granularities a period belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PeriodKind {
    /// 4-hour bins inside the most recent day.
    FourHour,
    /// Day bins inside the most recent week.
    Day,
    /// Week bins for everything older.
    Week,
}

impl PeriodKind {
    /// The period length in micros.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> Micros {
        match self {
            PeriodKind::FourHour => FOUR_HOURS,
            PeriodKind::Day => DAY,
            PeriodKind::Week => WEEK,
        }
    }
}

/// One concrete time period: a kind plus an epoch-aligned start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Period {
    /// Granularity.
    pub kind: PeriodKind,
    /// Inclusive start, aligned to `kind.len()` from the Unix epoch.
    pub start: Micros,
}

impl Period {
    /// Exclusive end of the period.
    pub fn end(&self) -> Micros {
        self.start + self.kind.len()
    }

    /// True when `ts` falls inside the period.
    pub fn contains(&self, ts: Micros) -> bool {
        ts >= self.start && ts < self.end()
    }
}

fn align_down(ts: Micros, unit: Micros) -> Micros {
    ts.div_euclid(unit) * unit
}

/// Maps a row timestamp to its period, relative to the current time `now`.
///
/// Timestamps in the current epoch-aligned day (or the future) use 4-hour
/// bins; timestamps earlier in the current epoch-aligned week use day bins;
/// anything older uses week bins.
pub fn period_for(ts: Micros, now: Micros) -> Period {
    let day_start = align_down(now, DAY);
    let week_start = align_down(now, WEEK);
    if ts >= day_start {
        Period {
            kind: PeriodKind::FourHour,
            start: align_down(ts, FOUR_HOURS),
        }
    } else if ts >= week_start {
        Period {
            kind: PeriodKind::Day,
            start: align_down(ts, DAY),
        }
    } else {
        Period {
            kind: PeriodKind::Week,
            start: align_down(ts, WEEK),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: Micros = 3600 * MICROS_PER_SEC;

    #[test]
    fn recent_day_uses_four_hour_bins() {
        // now = 10 days + 13h after epoch.
        let now = 10 * DAY + 13 * H;
        let p = period_for(now - 2 * H, now); // 11:00 same day
        assert_eq!(p.kind, PeriodKind::FourHour);
        assert_eq!(p.start, 10 * DAY + 8 * H); // [08:00, 12:00)
                                               // A future timestamp also bins at 4-hour granularity.
        let f = period_for(now + 6 * H, now);
        assert_eq!(f.kind, PeriodKind::FourHour);
        assert_eq!(f.start, 10 * DAY + 16 * H);
    }

    #[test]
    fn earlier_in_week_uses_day_bins() {
        let now = 10 * DAY + 13 * H; // week containing day 10 starts at day 7
        let p = period_for(8 * DAY + 3 * H, now);
        assert_eq!(p.kind, PeriodKind::Day);
        assert_eq!(p.start, 8 * DAY);
        assert!(p.contains(8 * DAY + 23 * H));
        assert!(!p.contains(9 * DAY));
    }

    #[test]
    fn older_history_uses_week_bins() {
        let now = 10 * DAY + 13 * H;
        let p = period_for(2 * DAY, now);
        assert_eq!(p.kind, PeriodKind::Week);
        assert_eq!(p.start, 0);
        let p = period_for(6 * DAY + 23 * H, now);
        assert_eq!(p.kind, PeriodKind::Week);
        assert_eq!(p.start, 0);
    }

    #[test]
    fn boundaries_are_epoch_aligned() {
        let now = 100 * WEEK + 3 * DAY + H;
        for ts in [now, now - DAY, now - 2 * WEEK] {
            let p = period_for(ts, now);
            assert_eq!(p.start % p.kind.len(), 0);
            assert!(p.contains(ts));
        }
    }

    #[test]
    fn negative_timestamps_align_correctly() {
        let now = 10 * DAY;
        let p = period_for(-1, now);
        assert_eq!(p.kind, PeriodKind::Week);
        assert_eq!(p.start, -WEEK);
        assert!(p.contains(-1));
    }

    #[test]
    fn rollover_changes_binning() {
        // The same timestamp bins more coarsely as `now` advances.
        let ts = 10 * DAY + 2 * H;
        let p1 = period_for(ts, 10 * DAY + 3 * H);
        assert_eq!(p1.kind, PeriodKind::FourHour);
        let p2 = period_for(ts, 12 * DAY);
        assert_eq!(p2.kind, PeriodKind::Day);
        let p3 = period_for(ts, 30 * DAY);
        assert_eq!(p3.kind, PeriodKind::Week);
        // All three still contain the timestamp.
        assert!(p1.contains(ts) && p2.contains(ts) && p3.contains(ts));
    }
}
