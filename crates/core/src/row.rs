//! Rows and their on-disk payload encoding.
//!
//! Inside a tablet block each row is stored as its order-preserving encoded
//! primary key (see [`crate::keyenc`]) followed by a compact payload of the
//! non-key columns. The key doubles as the sort/search handle; the payload
//! uses varint/zigzag encodings. Decoding reconstructs key column values
//! from the encoded key, so nothing is stored twice.

use crate::error::{Error, Result};
use crate::keyenc;
use crate::schema::{decode_value, encode_value, Schema};
use crate::util::Reader;
use crate::value::Value;
use littletable_vfs::Micros;

/// One table row: values in schema column order.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Cell values, one per schema column, in declaration order.
    pub values: Vec<Value>,
}

impl Row {
    /// Wraps values into a row. Use [`Schema::check_row`] first when the
    /// values come from outside the engine.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The row's timestamp (the trailing primary-key column).
    pub fn ts(&self, schema: &Schema) -> Result<Micros> {
        self.values[schema.ts_index()].as_timestamp()
    }

    /// Encodes the primary key of this row.
    pub fn encode_key(&self, schema: &Schema) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(schema.key_len() * 9);
        for &i in schema.key_indices() {
            keyenc::encode_component(&mut out, &self.values[i])?;
        }
        Ok(out)
    }

    /// Approximate in-memory footprint, for memtable accounting.
    pub fn mem_size(&self) -> usize {
        24 + self.values.iter().map(Value::mem_size).sum::<usize>()
    }
}

/// Serializes the non-key payload of `row` into `out`.
pub fn encode_payload(out: &mut Vec<u8>, row: &Row, schema: &Schema) {
    for (i, v) in row.values.iter().enumerate() {
        if !schema.key_indices().contains(&i) {
            encode_value(out, v);
        }
    }
}

/// Reassembles a full row from its encoded key and payload, under the
/// schema the block was written with.
pub fn decode_row(key: &[u8], payload: &[u8], schema: &Schema) -> Result<Row> {
    let key_vals = keyenc::decode_key(key, &schema.key_types())?;
    let mut values: Vec<Option<Value>> = vec![None; schema.num_columns()];
    for (slot, v) in schema.key_indices().iter().zip(key_vals) {
        values[*slot] = Some(v);
    }
    let mut r = Reader::new(payload);
    for (i, col) in schema.columns().iter().enumerate() {
        if values[i].is_none() {
            values[i] = Some(decode_value(&mut r, col.ty)?);
        }
    }
    if !r.is_empty() {
        return Err(Error::corrupt("trailing bytes after row payload"));
    }
    Ok(Row::new(values.into_iter().map(Option::unwrap).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("network", ColumnType::Str),
                ColumnDef::new("device", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("bytes", ColumnType::I64),
                ColumnDef::new("rate", ColumnType::F64),
                ColumnDef::new("note", ColumnType::Str),
            ],
            &["network", "device", "ts"],
        )
        .unwrap()
    }

    fn sample_row() -> Row {
        Row::new(vec![
            Value::Str("net-1".into()),
            Value::I64(42),
            Value::Timestamp(1_700_000_000_000_000),
            Value::I64(4096),
            Value::F64(68.27),
            Value::Str("ok".into()),
        ])
    }

    #[test]
    fn ts_extracts_timestamp_column() {
        let s = schema();
        assert_eq!(sample_row().ts(&s).unwrap(), 1_700_000_000_000_000);
    }

    #[test]
    fn key_payload_round_trip() {
        let s = schema();
        let row = sample_row();
        let key = row.encode_key(&s).unwrap();
        let mut payload = Vec::new();
        encode_payload(&mut payload, &row, &s);
        let back = decode_row(&key, &payload, &s).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn rows_sort_by_encoded_key() {
        let s = schema();
        let mut a = sample_row();
        let mut b = sample_row();
        a.values[1] = Value::I64(1);
        b.values[1] = Value::I64(2);
        assert!(a.encode_key(&s).unwrap() < b.encode_key(&s).unwrap());
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let s = schema();
        let row = sample_row();
        let key = row.encode_key(&s).unwrap();
        let mut payload = Vec::new();
        encode_payload(&mut payload, &row, &s);
        assert!(decode_row(&key, &payload[..payload.len() - 1], &s).is_err());
        let mut extended = payload.clone();
        extended.push(7);
        assert!(decode_row(&key, &extended, &s).is_err());
    }

    proptest! {
        #[test]
        fn prop_row_round_trip(
            net in "[a-z0-9]{0,12}",
            dev in any::<i64>(),
            ts in any::<i64>(),
            bytes in any::<i64>(),
            rate in any::<f64>().prop_filter("finite", |f| f.is_finite()),
            note in ".{0,32}",
        ) {
            let s = schema();
            let row = Row::new(vec![
                Value::Str(net),
                Value::I64(dev),
                Value::Timestamp(ts),
                Value::I64(bytes),
                Value::F64(rate),
                Value::Str(note),
            ]);
            let key = row.encode_key(&s).unwrap();
            let mut payload = Vec::new();
            encode_payload(&mut payload, &row, &s);
            prop_assert_eq!(decode_row(&key, &payload, &s).unwrap(), row);
        }
    }
}
