//! The invalidation-aware query-result cache.
//!
//! Dashboards re-issue the same aggregate queries over and over
//! (§4.1.2's aggregator workload); when nothing has changed since the
//! last run, re-walking tablets — or even rollup tables — is pure waste.
//! This cache stores *finished* result sets keyed by everything that
//! could change the answer:
//!
//! * the table **generation** — a process-unique incarnation number, so
//!   a drop/recreate cycle can never serve rows computed against the
//!   previous incarnation;
//! * the table's **insert sequence** at the time the result was
//!   computed — any insert (or bulk delete) bumps it, so a cached entry
//!   is self-invalidating the moment the table's contents change;
//! * the **TTL cutoff** in effect — time passing expires rows, and two
//!   queries straddling an expiry boundary may legitimately differ;
//! * the serialized **question**: bounding box, predicates, grouping,
//!   and aggregate list, encoded by the SQL layer.
//!
//! There is deliberately no publish-subscribe invalidation path for
//! inserts: staleness is impossible by construction because the key
//! embeds the insert sequence. [`ResultCache::invalidate_generation`]
//! exists only to promptly reclaim memory when a table is dropped.
//!
//! The cache's budget is a carve-out from the block cache's joint budget
//! ([`crate::Options::result_cache_fraction`]), so enabling it never
//! increases total cache memory.

use crate::value::Value;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything that identifies a cached result. Equal keys are guaranteed
/// to have equal answers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// The table's process-unique incarnation number
    /// ([`crate::Table::generation`]).
    pub generation: u64,
    /// The table's insert sequence when the result was computed
    /// ([`crate::Table::insert_seq`]).
    pub insert_seq: u64,
    /// The TTL expiry cutoff (in micros) in effect for the query;
    /// `i64::MIN` when the table has no TTL.
    pub ttl_cutoff: i64,
    /// Serialized query shape: bounding box, residual predicates,
    /// grouping, aggregates, and limit, as encoded by the SQL executor.
    pub question: Vec<u8>,
}

/// A finished, immutable result set.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRows {
    /// Output column labels, in SELECT order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl CachedRows {
    fn charge(&self, key: &ResultKey) -> usize {
        let mut bytes = 128 + key.question.len();
        for c in &self.columns {
            bytes += 24 + c.len();
        }
        for row in &self.rows {
            bytes += 24;
            for v in row {
                bytes += v.mem_size();
            }
        }
        bytes
    }
}

struct Entry {
    rows: Arc<CachedRows>,
    charge: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<ResultKey, Entry>,
    bytes: usize,
    tick: u64,
}

/// A budgeted LRU cache of finished aggregate result sets. All methods
/// are safe to call concurrently.
pub struct ResultCache {
    budget: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Creates a cache charged against `budget` bytes.
    pub fn new(budget: usize) -> Self {
        ResultCache {
            budget,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Byte budget this cache was created with.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Looks up a result. A hit refreshes the entry's recency.
    pub fn get(&self, key: &ResultKey) -> Option<Arc<CachedRows>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.rows.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a result, evicting least-recently-used entries to stay
    /// within budget. Results larger than the whole budget are ignored.
    pub fn put(&self, key: ResultKey, rows: Arc<CachedRows>) {
        let charge = rows.charge(&key);
        if charge > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                rows,
                charge,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.charge;
        }
        inner.bytes += charge;
        while inner.bytes > self.budget {
            // O(n) victim scan; the cache holds few, large entries, so
            // a heap or intrusive list would be bookkeeping for nothing.
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.charge;
            }
        }
    }

    /// Drops every entry computed against the given table generation.
    /// Correctness never depends on this — keys embed the generation —
    /// but dropping a table should release its memory promptly.
    pub fn invalidate_generation(&self, generation: u64) {
        let mut inner = self.inner.lock();
        let mut freed = 0usize;
        inner.map.retain(|k, e| {
            if k.generation == generation {
                freed += e.charge;
                false
            } else {
                true
            }
        });
        inner.bytes -= freed;
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently resident.
    pub fn entries(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Estimated bytes currently charged.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(generation: u64, insert_seq: u64, q: &[u8]) -> ResultKey {
        ResultKey {
            generation,
            insert_seq,
            ttl_cutoff: i64::MIN,
            question: q.to_vec(),
        }
    }

    fn rows(n: usize) -> Arc<CachedRows> {
        Arc::new(CachedRows {
            columns: vec!["sum(v)".into()],
            rows: (0..n).map(|i| vec![Value::I64(i as i64)]).collect(),
        })
    }

    #[test]
    fn hit_and_miss_round_trip() {
        let c = ResultCache::new(1 << 20);
        let k = key(1, 5, b"q1");
        assert!(c.get(&k).is_none());
        c.put(k.clone(), rows(3));
        assert_eq!(c.get(&k).unwrap().rows.len(), 3);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn different_seq_or_generation_misses() {
        let c = ResultCache::new(1 << 20);
        c.put(key(1, 5, b"q1"), rows(3));
        assert!(c.get(&key(1, 6, b"q1")).is_none());
        assert!(c.get(&key(2, 5, b"q1")).is_none());
        assert!(c.get(&key(1, 5, b"q2")).is_none());
    }

    #[test]
    fn evicts_lru_to_stay_within_budget() {
        let one = rows(1).charge(&key(1, 1, b"a"));
        let c = ResultCache::new(3 * one + one / 2);
        c.put(key(1, 1, b"a"), rows(1));
        c.put(key(1, 1, b"b"), rows(1));
        c.put(key(1, 1, b"c"), rows(1));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(&key(1, 1, b"a")).is_some());
        c.put(key(1, 1, b"d"), rows(1));
        assert!(c.bytes() <= c.budget());
        assert!(c.get(&key(1, 1, b"b")).is_none());
        assert!(c.get(&key(1, 1, b"a")).is_some());
    }

    #[test]
    fn oversized_results_are_not_cached() {
        let c = ResultCache::new(64);
        c.put(key(1, 1, b"big"), rows(1000));
        assert_eq!(c.entries(), 0);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn invalidate_generation_frees_bytes() {
        let c = ResultCache::new(1 << 20);
        c.put(key(1, 1, b"a"), rows(2));
        c.put(key(2, 1, b"b"), rows(2));
        c.invalidate_generation(1);
        assert!(c.get(&key(1, 1, b"a")).is_none());
        assert!(c.get(&key(2, 1, b"b")).is_some());
        assert_eq!(c.entries(), 1);
    }
}
