//! The LittleTable storage engine.
//!
//! A relational database optimized for time-series data, after
//! *"LittleTable: A Time-Series Database and Its Uses"* (Rhea et al.,
//! SIGMOD 2017). Tables are clustered in two dimensions: rows are
//! partitioned by timestamp into tablets, and sorted within each tablet by
//! a hierarchically-delineated primary key, so that any rectangle of
//! (key-range × time-range) reads from a mostly contiguous region of disk.
//!
//! The engine trades durability for simplicity and throughput exactly as
//! the paper's applications allow: there is no write-ahead log; the only
//! guarantee is *prefix durability* — if a row survives a crash, so does
//! every row inserted into the same table before it.

#![warn(missing_docs)]

pub mod archive;
pub mod block;
pub mod bloom;
pub mod cache;
pub mod cursor;
pub mod db;
pub mod descriptor;
pub mod error;
pub mod flushdeps;
pub mod keyenc;
pub mod memtable;
pub mod mergepolicy;
pub mod options;
pub mod period;
pub mod query;
pub mod resultcache;
pub mod rollup;
pub mod row;
pub mod schema;
pub mod stats;
pub mod sync;
pub mod table;
pub mod tablet;
pub mod util;
pub mod value;

pub use block::{BlockFormat, ColumnSlice};
pub use cache::BlockCache;
pub use db::Db;
pub use error::{Error, Result};
pub use options::Options;
pub use query::Query;
pub use resultcache::{CachedRows, ResultCache, ResultKey};
pub use rollup::RollupSpec;
pub use row::Row;
pub use schema::{ColumnDef, Schema, SchemaRef, TS_COLUMN};
pub use stats::DbStatsSnapshot;
pub use table::{
    ColumnPredicate, InsertReport, MaintenanceReport, PredOp, PushdownRequest, QueryCursor,
    ScanUnit, Table,
};
pub use value::{ColumnType, Value};
