//! Tablet-set bookkeeping: the mutable [`TableState`] behind the state
//! mutex, the shared in-memory tablets it hands to readers, and the
//! immutable [`TabletSnapshot`] published to the lock-free read path.

use crate::descriptor::TabletMeta;
use crate::flushdeps::FlushDeps;
use crate::memtable::{MemTablet, MemTabletId};
use crate::period::Period;
use crate::schema::SchemaRef;
use crate::tablet::TabletReader;
use littletable_vfs::Micros;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One on-disk tablet: its descriptor entry plus a shared reader.
#[derive(Clone)]
pub(crate) struct DiskHandle {
    pub(crate) meta: TabletMeta,
    pub(crate) reader: Arc<TabletReader>,
}

/// An in-memory tablet shared between the insert path and concurrent
/// readers. While filling, inserts append under the write lock and
/// queries snapshot under the read lock — contention is limited to the
/// one tablet an insert targets. Once sealed the writer stops touching
/// it, so reader locks are uncontended until the flush commit drops the
/// tablet from the published snapshot.
pub(crate) struct SharedMemTablet {
    id: MemTabletId,
    inner: RwLock<MemTablet>,
}

impl SharedMemTablet {
    pub(crate) fn new(tablet: MemTablet) -> Self {
        SharedMemTablet {
            id: tablet.id(),
            inner: RwLock::new(tablet),
        }
    }

    /// The tablet's id, readable without taking the lock.
    pub(crate) fn id(&self) -> MemTabletId {
        self.id
    }

    pub(crate) fn read(&self) -> RwLockReadGuard<'_, MemTablet> {
        self.inner.read()
    }

    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, MemTablet> {
        self.inner.write()
    }
}

/// A set of sealed tablets that must flush together (one flush
/// dependency closure, §3.4.3).
pub(crate) struct SealedGroup {
    pub(crate) id: u64,
    pub(crate) tablets: Vec<Arc<SharedMemTablet>>,
    pub(crate) flushing: bool,
}

/// The mutable half of a table, guarded by `Table::state`. Everything a
/// reader needs is mirrored into a [`TabletSnapshot`] at each
/// transition; the remainder (id counters, flush dependencies, the
/// filling-vs-sealed distinction) is writer-side only.
pub(crate) struct TableState {
    pub(crate) schema: SchemaRef,
    pub(crate) ttl: Option<Micros>,
    pub(crate) next_tablet_id: u64,
    pub(crate) next_mem_id: u64,
    pub(crate) next_group_id: u64,
    pub(crate) filling: HashMap<Period, Arc<SharedMemTablet>>,
    pub(crate) last_insert: Option<MemTabletId>,
    pub(crate) deps: FlushDeps,
    pub(crate) sealed: VecDeque<SealedGroup>,
    pub(crate) disk: Vec<DiskHandle>,
    /// Largest row timestamp present (durable or in memory), for the
    /// newest-timestamp uniqueness fast path.
    pub(crate) max_ts: Micros,
    pub(crate) merge_running: bool,
    pub(crate) dropped: bool,
}

impl TableState {
    pub(crate) fn sort_disk(&mut self) {
        self.disk.sort_by_key(|h| (h.meta.min_ts, h.meta.id));
    }

    pub(crate) fn metas(&self) -> Vec<TabletMeta> {
        self.disk.iter().map(|h| h.meta.clone()).collect()
    }

    /// True when any in-memory tablet (filling or sealed) holds `key`.
    /// Only tablets whose timespan contains `ts` can hold it, since the
    /// timestamp is part of the key. Takes per-tablet read locks; the
    /// caller holds the state mutex (lock order: state, then tablet).
    pub(crate) fn mem_contains(&self, key: &[u8], ts: Micros) -> bool {
        self.filling
            .values()
            .chain(self.sealed.iter().flat_map(|g| g.tablets.iter()))
            .any(|t| {
                let mem = t.read();
                match (mem.min_ts(), mem.max_ts()) {
                    (Some(lo), Some(hi)) => lo <= ts && ts <= hi && mem.contains_key(key),
                    _ => false,
                }
            })
    }

    pub(crate) fn sealed_tablet_count(&self) -> usize {
        self.sealed.iter().map(|g| g.tablets.len()).sum()
    }

    /// Builds the immutable view published to readers: the current
    /// schema and TTL, every on-disk tablet, and every in-memory tablet
    /// (filling and sealed — readers do not care about the distinction).
    pub(crate) fn build_snapshot(&self) -> TabletSnapshot {
        TabletSnapshot {
            schema: self.schema.clone(),
            ttl: self.ttl,
            disk: self.disk.clone(),
            mem: self
                .filling
                .values()
                .cloned()
                .chain(self.sealed.iter().flat_map(|g| g.tablets.iter().cloned()))
                .collect(),
            dropped: self.dropped,
        }
    }
}

/// An immutable, atomically published view of the table's tablet set.
/// `query()` and `latest()` work entirely from one of these: disk
/// handles are `Arc`'d readers of immutable files, and the shared
/// memtablets are snapshotted under their own read locks with the
/// caller's insert-sequence cutoff, so a reader never touches the state
/// mutex.
pub(crate) struct TabletSnapshot {
    pub(crate) schema: SchemaRef,
    pub(crate) ttl: Option<Micros>,
    pub(crate) disk: Vec<DiskHandle>,
    pub(crate) mem: Vec<Arc<SharedMemTablet>>,
    pub(crate) dropped: bool,
}
