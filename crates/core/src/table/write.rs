//! The insert path: per-row uniqueness enforcement with the §3.4.4
//! fast paths, time-period binning, flush-dependency tracking, and
//! size-triggered sealing.
//!
//! Inserts serialize on the state mutex only for bookkeeping (period
//! lookup, dependency edges, max-timestamp tracking); the row itself
//! lands under the target memtablet's own write lock, so reader
//! snapshots of *other* tablets are never blocked by an insert.

use super::state::{DiskHandle, SharedMemTablet, TableState};
use super::{InsertReport, Table};
use crate::error::{Error, Result};
use crate::memtable::{MemTablet, MemTabletId};
use crate::period::{period_for, Period, PeriodKind};
use crate::row::Row;
use crate::stats::TableStats;
use crate::util::hash_bytes;
use crate::value::Value;
use littletable_vfs::Micros;
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl Table {
    /// Inserts a batch of rows. Each row must match the current schema;
    /// rows whose primary key already exists are counted as duplicates and
    /// skipped. Returns how many were inserted and how many were
    /// duplicates.
    pub fn insert(&self, rows: Vec<Vec<Value>>) -> Result<InsertReport> {
        let mut report = InsertReport::default();
        for values in rows {
            if self.insert_one(values)? {
                report.inserted += 1;
            } else {
                report.duplicates += 1;
            }
        }
        TableStats::add(&self.stats.rows_inserted, report.inserted as u64);
        TableStats::add(&self.stats.duplicate_keys, report.duplicates as u64);
        self.enforce_backlog()?;
        Ok(report)
    }

    fn insert_one(&self, values: Vec<Value>) -> Result<bool> {
        let now = self.clock.now_micros();
        let mut st = self.state.lock();
        if st.dropped {
            return Err(Error::NoSuchTable(self.name().to_string()));
        }
        let schema = st.schema.clone();
        let values = schema.check_row(values)?;
        let row = Row::new(values);
        let ts = row.ts(&schema)?;
        let key = row.encode_key(&schema)?;

        if st.mem_contains(&key, ts) {
            return Ok(false);
        }
        if self.opts.uniqueness_fast_paths && ts > st.max_ts {
            // Fast path 1 (§3.4.4): strictly newer than every existing
            // timestamp, so the key (which embeds the timestamp) is new.
            TableStats::add(&self.stats.unique_fast_ts, 1);
            self.do_insert(&mut st, key, row, ts, now);
            return Ok(true);
        }
        // Only tablets whose timespan contains `ts` can hold a duplicate.
        let candidates: Vec<DiskHandle> = st
            .disk
            .iter()
            .filter(|h| h.meta.min_ts <= ts && ts <= h.meta.max_ts)
            .cloned()
            .collect();
        if candidates.is_empty() {
            self.do_insert(&mut st, key, row, ts, now);
            return Ok(true);
        }
        if self.opts.uniqueness_fast_paths {
            // Fast path 2 (§3.4.4): larger key than any other in the
            // relevant tablets, checked against the cached indexes.
            let mut all_below = true;
            for h in &candidates {
                let footer = h.reader.footer()?;
                let max_key = footer.blocks.last().map(|b| b.last_key.as_slice());
                if max_key.is_some_and(|mk| key.as_slice() <= mk) {
                    all_below = false;
                    break;
                }
            }
            if all_below {
                TableStats::add(&self.stats.unique_fast_key, 1);
                self.do_insert(&mut st, key, row, ts, now);
                return Ok(true);
            }
        }
        // Slow path: a point query that may block on disk. Drop the state
        // mutex and serialize on the insert lock table instead, so queries
        // proceed unencumbered (§3.4.4).
        drop(st);
        TableStats::add(&self.stats.unique_slow, 1);
        let _slow = self.insert_lock.lock();
        for h in &candidates {
            if self.tablet_contains_key(h, &key)? {
                return Ok(false);
            }
        }
        let mut st = self.state.lock();
        // Re-check memory: another insert may have landed the key while we
        // were reading disk.
        if st.mem_contains(&key, ts) {
            return Ok(false);
        }
        self.do_insert(&mut st, key, row, ts, now);
        Ok(true)
    }

    fn tablet_contains_key(&self, h: &DiskHandle, key: &[u8]) -> Result<bool> {
        let footer = h.reader.footer()?;
        if let Some(bloom) = &footer.bloom {
            if !bloom.may_contain(hash_bytes(key)) {
                return Ok(false);
            }
        }
        let bi = h.reader.seek_block(key)?;
        if bi >= footer.blocks.len() {
            return Ok(false);
        }
        let block = h.reader.read_block(bi)?;
        let i = block.seek_ge(key)?;
        Ok(i < block.len() && block.key(i)? == key)
    }

    fn bin(&self, ts: Micros, now: Micros) -> Period {
        if self.opts.respect_periods {
            period_for(ts, now)
        } else {
            // Ablation: a single global bin.
            Period {
                kind: PeriodKind::Week,
                start: 0,
            }
        }
    }

    fn do_insert(&self, st: &mut TableState, key: Vec<u8>, row: Row, ts: Micros, now: Micros) {
        let period = self.bin(ts, now);
        let tablet = match st.filling.get(&period) {
            Some(t) => t.clone(),
            None => {
                let id = MemTabletId(st.next_mem_id);
                st.next_mem_id += 1;
                let t = Arc::new(SharedMemTablet::new(MemTablet::new(
                    id,
                    now,
                    st.schema.clone(),
                )));
                st.filling.insert(period, t.clone());
                // Readers must learn about the new tablet before any row
                // can be stamped into it: read_view() loads its cutoff
                // before the snapshot, so a row visible under the cutoff
                // must sit in a tablet the snapshot already lists.
                self.publish_locked(st);
                t
            }
        };
        // Flush-ordering dependency (§3.4.3): the previously-written tablet
        // must flush before this one.
        if let Some(last) = st.last_insert {
            if last != tablet.id() {
                st.deps.add_edge(last, tablet.id());
            }
        }
        st.last_insert = Some(tablet.id());
        st.max_ts = st.max_ts.max(ts);
        let full = {
            let mut mem = tablet.write();
            // The sequence stamp is allocated inside the tablet's write
            // lock: a reader that loads cutoff C and later read-locks
            // this tablet is guaranteed to find every row stamped below
            // C fully inserted (the stamping critical section finished
            // before the reader's lock was granted).
            let seq = self.insert_seq.fetch_add(1, Ordering::SeqCst);
            mem.insert(key, row, ts, seq);
            mem.bytes() >= self.opts.flush_size
        };
        if full {
            self.seal_locked(st, tablet.id());
        }
    }

    /// Seals `target` together with its flush-dependency closure into one
    /// atomic group. Sealing moves tablets between writer-side sets only
    /// — the published snapshot's membership is unchanged, so no
    /// republish happens here.
    pub(super) fn seal_locked(&self, st: &mut TableState, target: MemTabletId) {
        let mut group_ids = st.deps.closure_before(target);
        group_ids.insert(target);
        // Only tablets still filling can be sealed now; earlier members of
        // the closure may already sit in earlier groups, which flush first
        // anyway (FIFO).
        let filling_ids: std::collections::HashSet<MemTabletId> =
            st.filling.values().map(|t| t.id()).collect();
        group_ids.retain(|id| filling_ids.contains(id));
        if group_ids.is_empty() {
            return;
        }
        let order = st.deps.order_group(&group_ids);
        let mut tablets = Vec::with_capacity(order.len());
        for id in order {
            let period = *st
                .filling
                .iter()
                .find(|(_, t)| t.id() == id)
                .map(|(p, _)| p)
                .expect("sealed tablet must be filling");
            let t = st.filling.remove(&period).expect("present");
            tablets.push(t);
        }
        st.deps.remove(&group_ids);
        if st.last_insert.is_some_and(|l| group_ids.contains(&l)) {
            st.last_insert = None;
        }
        let id = st.next_group_id;
        st.next_group_id += 1;
        st.sealed.push_back(super::state::SealedGroup {
            id,
            tablets,
            flushing: false,
        });
    }

    /// Inline-flushes oldest groups while the sealed backlog exceeds the
    /// configured cap, bounding memory (§5.1.3's 100-tablet limit).
    fn enforce_backlog(&self) -> Result<()> {
        while self.state.lock().sealed_tablet_count() > self.opts.max_sealed_backlog {
            if !self.flush_next_group()? {
                break;
            }
        }
        Ok(())
    }
}
