//! One LittleTable table: insert path, uniqueness enforcement, flushing
//! with dependency ordering, queries, latest-row-for-prefix, merging,
//! TTL expiry, and schema evolution.
//!
//! Module map:
//! * [`state`] — the mutable `TableState` behind the mutex and the
//!   immutable `TabletSnapshot` published to readers (the snapshot goes
//!   out through the shared [`crate::sync::SnapshotCell`]);
//! * [`write`] — insert, uniqueness fast paths (§3.4.4), sealing;
//! * [`read`] — `query`/`latest` and the streaming `QueryCursor`,
//!   built entirely from a snapshot load;
//! * [`maintenance`] — flush, merge, TTL reaping, bulk delete, cold
//!   migration, and schema evolution, each republishing the snapshot
//!   at its commit point.

mod colscan;
mod maintenance;
mod read;
mod state;
#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_ext;
mod write;

pub use colscan::{cmp_values, ColumnPredicate, PredOp, PushdownRequest, ScanUnit};
pub use read::QueryCursor;

use crate::cache::{BlockCache, CacheHandle};
use crate::descriptor::{parse_tablet_file_name, TableDescriptor, TabletMeta, DESC_FILE, DESC_TMP};
use crate::error::{Error, Result};
use crate::flushdeps::FlushDeps;
use crate::options::Options;
use crate::schema::{Schema, SchemaRef};
use crate::stats::TableStats;
use crate::sync::SnapshotCell;
use crate::tablet::TabletReader;
use littletable_vfs::{join, Clock, Micros, Vfs};
use parking_lot::Mutex;
use state::{DiskHandle, TableState, TabletSnapshot};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Suffix appended to a tablet file set aside by quarantine at open.
pub const QUARANTINE_SUFFIX: &str = ".quarantine";

/// Whether an open-time tablet validation failure warrants quarantine:
/// the bytes are provably bad (corruption) or provably gone (missing
/// file). Anything else — notably transient I/O — must propagate.
fn should_quarantine(e: &Error) -> bool {
    if e.is_corruption() {
        return true;
    }
    matches!(e, Error::Io(io) if io.kind() == std::io::ErrorKind::NotFound)
}

/// Outcome of an insert batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertReport {
    /// Rows accepted.
    pub inserted: usize,
    /// Rows rejected because their primary key already existed.
    pub duplicates: usize,
}

/// Outcome of one maintenance pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// In-memory tablets sealed because of age.
    pub sealed_by_age: usize,
    /// Sealed groups flushed to disk.
    pub groups_flushed: usize,
    /// Merges performed (0 or 1 per pass).
    pub merges: usize,
    /// On-disk tablets removed by TTL expiry.
    pub tablets_expired: usize,
    /// On-disk tablets folded into rollup tables.
    pub tablets_folded: usize,
}

/// Source of table generation numbers: a process-wide counter so a
/// dropped-and-recreated table of the same name never repeats a
/// generation, which is what lets the query-result cache key on it.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// A handle to one table. All methods are safe to call concurrently.
pub struct Table {
    name: String,
    dir: String,
    vfs: Arc<dyn Vfs>,
    /// Optional write-once backing store for old tablets (§6's
    /// LHAM-inspired cold tier; Amazon S3 in the paper's plans).
    cold_vfs: Option<Arc<dyn Vfs>>,
    clock: Arc<dyn Clock>,
    opts: Arc<Options>,
    /// Shared decompressed-block cache, owned by the [`crate::db::Db`];
    /// `None` when `Options::block_cache_bytes` is 0.
    cache: Option<Arc<BlockCache>>,
    stats: Arc<TableStats>,
    state: Mutex<TableState>,
    /// The published read view; rebuilt and swapped (under the state
    /// mutex) at every tablet-set or schema transition.
    snapshot: SnapshotCell<TabletSnapshot>,
    /// Table-wide insert sequence, stamped onto each row inside its
    /// memtablet's write lock. Readers load it *before* loading the
    /// snapshot and ignore memtable rows stamped at or above the loaded
    /// value, which makes a multi-tablet read a consistent point-in-time
    /// view without holding any table-wide lock (see `Table::read_view`).
    insert_seq: AtomicU64,
    /// Serializes slow-path uniqueness checks so disk reads never happen
    /// under the state mutex (§3.4.4).
    insert_lock: Mutex<()>,
    /// Serializes flushes so sealed groups commit strictly FIFO.
    flush_lock: Mutex<()>,
    /// True when the on-disk descriptor is behind the in-memory tablet
    /// set (a descriptor save failed after its transition committed).
    /// `flush_all` and `maintain` re-save until it clears, so a later
    /// successful flush restores the durability promise instead of
    /// silently returning `Ok` over a stale `DESC`.
    desc_dirty: AtomicBool,
    /// Process-unique incarnation number (from [`NEXT_GENERATION`]);
    /// result-cache entries embed it so a drop/recreate cycle can never
    /// serve a previous incarnation's rows.
    generation: u64,
    /// True when at least one rollup table is registered over this table;
    /// restricts merging to rolled-up tablets (see `run_merge_once`).
    pub(crate) rollup_source: AtomicBool,
}

impl Table {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor
    pub(crate) fn create(
        vfs: Arc<dyn Vfs>,
        cold_vfs: Option<Arc<dyn Vfs>>,
        clock: Arc<dyn Clock>,
        opts: Arc<Options>,
        cache: Option<Arc<BlockCache>>,
        name: String,
        dir: String,
        schema: Schema,
        ttl: Option<Micros>,
    ) -> Result<Arc<Table>> {
        vfs.mkdir_all(&dir)?;
        let desc = TableDescriptor::new(schema.clone(), ttl);
        desc.save(vfs.as_ref(), &dir)?;
        vfs.sync_dir(crate::db::root_of(&dir))?;
        let state = TableState {
            schema: Arc::new(schema),
            ttl,
            next_tablet_id: desc.next_tablet_id,
            next_mem_id: 1,
            next_group_id: 1,
            filling: HashMap::new(),
            last_insert: None,
            deps: FlushDeps::new(),
            sealed: VecDeque::new(),
            disk: Vec::new(),
            max_ts: Micros::MIN,
            merge_running: false,
            dropped: false,
        };
        let snapshot = SnapshotCell::new(Arc::new(state.build_snapshot()));
        Ok(Arc::new(Table {
            name,
            dir,
            vfs,
            cold_vfs,
            clock,
            opts,
            cache,
            stats: Arc::new(TableStats::default()),
            state: Mutex::new(state),
            snapshot,
            insert_seq: AtomicU64::new(0),
            insert_lock: Mutex::new(()),
            flush_lock: Mutex::new(()),
            desc_dirty: AtomicBool::new(false),
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            rollup_source: AtomicBool::new(false),
        }))
    }

    #[allow(clippy::too_many_arguments)] // crate-internal constructor
    pub(crate) fn open(
        vfs: Arc<dyn Vfs>,
        cold_vfs: Option<Arc<dyn Vfs>>,
        clock: Arc<dyn Clock>,
        opts: Arc<Options>,
        cache: Option<Arc<BlockCache>>,
        name: String,
        dir: String,
    ) -> Result<Arc<Table>> {
        let mut desc = TableDescriptor::load(vfs.as_ref(), &dir)?;
        desc.sort_tablets();
        // Delete orphan tablet files left by a crash mid-flush or
        // mid-merge: they were never committed to the descriptor.
        // Quarantined files are evidence, not orphans — leave them, as
        // well as the rollup spec that marks this table as derived.
        for entry in vfs.list_dir(&dir)? {
            if entry == DESC_FILE
                || entry == DESC_TMP
                || entry == crate::rollup::SPEC_FILE
                || entry.ends_with(QUARANTINE_SUFFIX)
            {
                continue;
            }
            match parse_tablet_file_name(&entry) {
                Some(id) if desc.tablets.iter().any(|t| t.id == id) => {}
                _ => {
                    let _ = vfs.remove(&join(&dir, &entry));
                }
            }
        }
        let stats = Arc::new(TableStats::default());
        // Validate every referenced tablet's footer eagerly. A tablet that
        // is missing or fails validation is quarantined (renamed aside,
        // dropped from the descriptor) unless `strict_open` demands the
        // old fail-fast behavior; transient I/O errors always propagate —
        // a flaky disk is not corruption.
        let mut disk: Vec<DiskHandle> = Vec::new();
        let mut quarantined = 0u64;
        for meta in &desc.tablets {
            let backing: Arc<dyn Vfs> = if meta.cold {
                cold_vfs.clone().ok_or_else(|| {
                    Error::invalid(format!(
                        "table {name:?} has cold tablets but no cold store is configured"
                    ))
                })?
            } else {
                vfs.clone()
            };
            let path = join(&dir, &meta.file_name());
            // Probe with a throwaway uncached reader: validation must not
            // warm the shared cache (or pin a footer in the reader we
            // keep), or the first query after open would look cold-cache
            // fast and the paper's ~4-seek first-row cost would vanish.
            let probe = TabletReader::with_cache(backing.clone(), path.clone(), None);
            match probe.footer() {
                Ok(_) => disk.push(DiskHandle {
                    reader: Arc::new(TabletReader::with_cache(
                        backing.clone(),
                        path.clone(),
                        cache
                            .as_ref()
                            .map(|c| CacheHandle::register(c.clone(), stats.clone())),
                    )),
                    meta: meta.clone(),
                }),
                Err(e) if !opts.strict_open && should_quarantine(&e) => {
                    if backing.exists(&path) {
                        let aside = format!("{path}{QUARANTINE_SUFFIX}");
                        let _ = backing.rename(&path, &aside);
                        let _ = backing.sync_dir(&dir);
                    }
                    quarantined += 1;
                }
                Err(e) => return Err(e),
            }
        }
        if quarantined > 0 {
            TableStats::add(&stats.tablets_quarantined, quarantined);
            // Drop the quarantined tablets from the durable descriptor so
            // the next open doesn't re-report them. Best-effort: a failure
            // here just defers the rewrite to the next descriptor save.
            let kept: std::collections::HashSet<u64> = disk.iter().map(|h| h.meta.id).collect();
            let mut clean = TableDescriptor::new(desc.schema.clone(), desc.ttl);
            clean.next_tablet_id = desc.next_tablet_id;
            clean.tablets = desc
                .tablets
                .iter()
                .filter(|t| kept.contains(&t.id))
                .cloned()
                .collect();
            let _ = clean.save(vfs.as_ref(), &dir);
        }
        let max_ts = desc.max_ts().unwrap_or(Micros::MIN);
        let state = TableState {
            schema: Arc::new(desc.schema),
            ttl: desc.ttl,
            next_tablet_id: desc.next_tablet_id,
            next_mem_id: 1,
            next_group_id: 1,
            filling: HashMap::new(),
            last_insert: None,
            deps: FlushDeps::new(),
            sealed: VecDeque::new(),
            disk,
            max_ts,
            merge_running: false,
            dropped: false,
        };
        let snapshot = SnapshotCell::new(Arc::new(state.build_snapshot()));
        Ok(Arc::new(Table {
            name,
            dir,
            vfs,
            cold_vfs,
            clock,
            opts,
            cache,
            stats,
            state: Mutex::new(state),
            snapshot,
            insert_seq: AtomicU64::new(0),
            insert_lock: Mutex::new(()),
            flush_lock: Mutex::new(()),
            desc_dirty: AtomicBool::new(false),
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            rollup_source: AtomicBool::new(false),
        }))
    }

    // ------------------------------------------------------ snapshot plumbing

    /// Rebuilds and publishes the read snapshot from the current state.
    /// The caller holds the state mutex, which serializes stores.
    pub(crate) fn publish_locked(&self, st: &TableState) {
        self.snapshot.store(Arc::new(st.build_snapshot()));
        TableStats::add(&self.stats.snapshot_publishes, 1);
    }

    /// The read fast path: returns the current snapshot plus the
    /// insert-sequence cutoff that makes it a consistent point-in-time
    /// view. No mutex is acquired.
    ///
    /// Order matters. The cutoff is loaded *before* the snapshot: every
    /// row stamped below the cutoff finished its insert — including the
    /// publish of its (possibly new) memtablet — before we loaded it,
    /// so that tablet is in the snapshot we load next and the row is
    /// visible under the tablet's read lock. Loading in the opposite
    /// order could admit a row (low seq, new tablet) whose tablet the
    /// older snapshot lacks, breaking the no-gaps guarantee.
    pub(crate) fn read_view(&self) -> (Arc<TabletSnapshot>, u64) {
        let cutoff = self.insert_seq.load(Ordering::SeqCst);
        let snap = self.snapshot.load();
        TableStats::add(&self.stats.snapshot_loads, 1);
        (snap, cutoff)
    }

    /// Builds a reader for a newly written tablet file, registered with
    /// the shared block cache (when one is configured) under a fresh
    /// cache-tablet id.
    fn new_reader(&self, backing: Arc<dyn Vfs>, path: String) -> Arc<TabletReader> {
        Arc::new(TabletReader::with_cache(
            backing,
            path,
            self.cache
                .as_ref()
                .map(|c| CacheHandle::register(c.clone(), self.stats.clone())),
        ))
    }

    // -------------------------------------------------------------- accessors

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current schema.
    pub fn schema(&self) -> SchemaRef {
        self.snapshot.load().schema.clone()
    }

    /// The current TTL.
    pub fn ttl(&self) -> Option<Micros> {
        self.snapshot.load().ttl
    }

    /// Operational counters.
    pub fn stats(&self) -> &Arc<TableStats> {
        &self.stats
    }

    /// The engine's current time (for clients that let the server stamp
    /// row timestamps, §3.1).
    pub fn now(&self) -> Micros {
        self.clock.now_micros()
    }

    /// Number of on-disk tablets.
    pub fn num_disk_tablets(&self) -> usize {
        self.snapshot.load().disk.len()
    }

    /// Number of filling in-memory tablets.
    pub fn num_filling(&self) -> usize {
        self.state.lock().filling.len()
    }

    /// Total compressed bytes across on-disk tablets.
    pub fn disk_bytes(&self) -> u64 {
        self.snapshot.load().disk.iter().map(|h| h.meta.bytes).sum()
    }

    /// Total rows across on-disk tablets (per descriptor counts).
    pub fn disk_rows(&self) -> u64 {
        self.snapshot.load().disk.iter().map(|h| h.meta.rows).sum()
    }

    /// Total compressed bytes of tablets currently in the cold store.
    pub fn cold_bytes(&self) -> u64 {
        self.snapshot
            .load()
            .disk
            .iter()
            .filter(|h| h.meta.cold)
            .map(|h| h.meta.bytes)
            .sum()
    }

    /// Process-unique incarnation number of this table handle. Two tables
    /// of the same name created at different times have different
    /// generations; the query-result cache keys on it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current value of the table-wide insert sequence. Monotone: it
    /// advances on every insert (and on bulk deletes), so two equal reads
    /// bracketing a computation prove no write landed in between.
    pub fn insert_seq(&self) -> u64 {
        self.insert_seq.load(Ordering::SeqCst)
    }

    /// The rollup watermark: every row with `ts` strictly below this is in
    /// a rolled-up on-disk tablet. Rows in memtablets or in not-yet-folded
    /// disk tablets push the watermark down to their smallest timestamp;
    /// with nothing unfolded the watermark is `Micros::MAX`.
    pub fn rollup_watermark(&self) -> Micros {
        let st = self.state.lock();
        let mut w = Micros::MAX;
        for h in &st.disk {
            if !h.meta.rolled_up {
                w = w.min(h.meta.min_ts);
            }
        }
        for mem in st.filling.values() {
            if let Some(lo) = mem.read().min_ts() {
                w = w.min(lo);
            }
        }
        for group in &st.sealed {
            for mem in &group.tablets {
                if let Some(lo) = mem.read().min_ts() {
                    w = w.min(lo);
                }
            }
        }
        w
    }

    /// Marks this table as feeding at least one rollup table, which
    /// restricts merging to already-folded tablets.
    pub(crate) fn set_rollup_source(&self, on: bool) {
        self.rollup_source.store(on, Ordering::Release);
    }

    /// On-disk tablets that have not yet been folded into the registered
    /// rollups (or all of them, for a backfill), with their readers.
    pub(crate) fn unfolded_tablets(
        &self,
        include_rolled: bool,
    ) -> Vec<(TabletMeta, Arc<TabletReader>)> {
        self.state
            .lock()
            .disk
            .iter()
            .filter(|h| include_rolled || !h.meta.rolled_up)
            .map(|h| (h.meta.clone(), h.reader.clone()))
            .collect()
    }

    /// Takes the merger's exclusion slot so no merge / bulk delete / cold
    /// migration runs concurrently. Returns false when the slot is taken
    /// (or the table is dropped); the caller should retry later.
    pub(crate) fn try_begin_merge_exclusion(&self) -> bool {
        let mut st = self.state.lock();
        if st.merge_running || st.dropped {
            return false;
        }
        st.merge_running = true;
        true
    }

    /// Releases the slot taken by `try_begin_merge_exclusion`.
    pub(crate) fn end_merge_exclusion(&self) {
        self.state.lock().merge_running = false;
    }

    /// Whether this table has been dropped from its database.
    pub(crate) fn is_dropped(&self) -> bool {
        self.snapshot.load().dropped
    }

    /// Marks the given on-disk tablets as folded into every registered
    /// rollup, republishing the snapshot and persisting the descriptor.
    pub(crate) fn mark_rolled_up(&self, ids: &[u64]) -> Result<()> {
        let mut st = self.state.lock();
        if st.dropped {
            return Ok(());
        }
        let mut changed = false;
        for h in &mut st.disk {
            if ids.contains(&h.meta.id) && !h.meta.rolled_up {
                h.meta.rolled_up = true;
                changed = true;
            }
        }
        if !changed {
            return Ok(());
        }
        self.publish_locked(&st);
        self.save_descriptor_locked(&st)
    }

    pub(crate) fn mark_dropped(&self) {
        {
            let mut st = self.state.lock();
            st.dropped = true;
            self.publish_locked(&st);
        }
        // Drain any in-flight flush before returning: its commit step
        // re-checks `dropped` under the state lock, so once we can take
        // the flush lock no future flush will add files or a descriptor
        // to the directory `drop_table` is about to delete.
        drop(self.flush_lock.lock());
    }

    pub(crate) fn dir(&self) -> &str {
        &self.dir
    }
}
