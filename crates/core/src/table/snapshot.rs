//! An atomically swappable `Arc<T>` — the engine's hand-rolled
//! `arc-swap` — behind the snapshot-isolated read path.
//!
//! Readers call [`SnapshotCell::load`] and get an `Arc` to the current
//! value with two atomic RMWs and one atomic load: pin a sharded
//! counter, read the pointer, take a strong reference, unpin. No mutex
//! is ever touched, so queries cannot contend with the writer or the
//! maintenance paths (the paper's §3.1/§4 claim that readers work from
//! an immutable snapshot while the writer proceeds).
//!
//! Writers call [`SnapshotCell::store`] — serialized externally by the
//! table's state mutex — which swaps the pointer and then waits for
//! every pin count to pass through zero before releasing the old value.
//! The wait is bounded by the handful of loads in flight at the moment
//! of the swap: a reader that pins after the swap observes the new
//! pointer, so it can delay the release only across its three-operation
//! critical section, never for the lifetime of the returned `Arc`.
//!
//! Correctness argument (all operations `SeqCst`, so they form one
//! total order): if a reader's pointer load precedes the writer's swap,
//! the reader's pin precedes it too, and the writer cannot observe that
//! pin shard at zero until the reader has unpinned — which happens only
//! after the reader has taken its own strong reference, so the writer's
//! release cannot free the value. If the reader's load follows the
//! swap, it returns the new pointer and the old value is never touched.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pin counters are sharded to keep concurrent readers from bouncing a
/// single cache line; each thread sticks to one shard.
const PIN_SHARDS: usize = 16;

#[repr(align(64))]
#[derive(Default)]
struct PinShard(AtomicUsize);

/// An `Arc<T>` cell readable without locks and swappable by one writer
/// at a time.
pub(crate) struct SnapshotCell<T> {
    ptr: AtomicPtr<T>,
    pins: [PinShard; PIN_SHARDS],
}

impl<T> SnapshotCell<T> {
    /// Wraps `value` as the initial published snapshot.
    pub(crate) fn new(value: Arc<T>) -> Self {
        SnapshotCell {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            pins: Default::default(),
        }
    }

    /// The calling thread's pin shard, assigned round-robin on first use.
    fn pin_shard(&self) -> &AtomicUsize {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % PIN_SHARDS;
        }
        &self.pins[SHARD.with(|s| *s)].0
    }

    /// Returns the current snapshot. Lock-free: one pin, one pointer
    /// load, one refcount increment, one unpin.
    pub(crate) fn load(&self) -> Arc<T> {
        let shard = self.pin_shard();
        shard.fetch_add(1, Ordering::SeqCst);
        let ptr = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and is still alive —
        // `store` releases an old pointer only after observing every pin
        // shard at zero, and this thread's pin was published before the
        // pointer load (see the module-level argument). The increment
        // takes a strong reference for the returned `Arc`; the cell
        // keeps its own.
        let out = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        shard.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// Publishes `value` and releases the cell's reference to the old
    /// snapshot once no in-flight `load` can still be dereferencing it.
    /// Callers must serialize stores (the table holds its state mutex).
    pub(crate) fn store(&self, value: Arc<T>) {
        let old = self
            .ptr
            .swap(Arc::into_raw(value) as *mut T, Ordering::SeqCst);
        for shard in &self.pins {
            while shard.0.load(Ordering::SeqCst) != 0 {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        // SAFETY: `old` came from `Arc::into_raw`; every reader pinned
        // before the swap has finished its critical section (pins hit
        // zero), and readers pinning afterwards see the new pointer, so
        // nobody can reach `old` through the cell any more.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the pointer holds the cell's one
        // strong reference.
        unsafe { drop(Arc::from_raw(*self.ptr.get_mut())) };
    }
}

// SAFETY: the cell hands out `Arc<T>` across threads, which requires
// the same bounds as `Arc` itself.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn load_returns_stored_value() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        // The first value was released by the store (only the cell held
        // it), the second is shared between the cell and our load.
        assert_eq!(Arc::strong_count(&cell.load()), 2);
    }

    #[test]
    fn drop_releases_the_current_value() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let cell = SnapshotCell::new(Arc::new(Probe));
        cell.store(Arc::new(Probe));
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        drop(cell);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_loads_never_see_freed_or_stale_values() {
        let cell = Arc::new(SnapshotCell::new(Arc::new(0u64)));
        let writers_done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            let done = writers_done.clone();
            handles.push(thread::spawn(move || {
                let mut last = 0u64;
                while done.load(Ordering::SeqCst) == 0 {
                    let v = *cell.load();
                    // Values only ever increase: a reader may observe a
                    // slightly older snapshot than the latest store but
                    // never travel backwards within its own timeline.
                    assert!(v >= last, "snapshot went backwards: {last} -> {v}");
                    last = v;
                }
            }));
        }
        for v in 1..=10_000u64 {
            cell.store(Arc::new(v));
        }
        writers_done.store(1, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.load(), 10_000);
    }
}
