use super::*;
use crate::db::Db;
use crate::query::Query;
use crate::schema::ColumnDef;
use crate::value::{ColumnType, Value};
use littletable_vfs::{SimClock, SimVfs, MICROS_PER_SEC};

const SEC: Micros = MICROS_PER_SEC;
const START: Micros = 1_700_000_000 * MICROS_PER_SEC;

fn usage_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("network", ColumnType::I64),
            ColumnDef::new("device", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("bytes", ColumnType::I64),
        ],
        &["network", "device", "ts"],
    )
    .unwrap()
}

fn test_db(opts: Options) -> (Db, SimVfs, SimClock) {
    let clock = SimClock::new(START);
    let vfs = SimVfs::instant();
    // Share the clock between the engine and the test driver.
    let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
    (db, vfs, clock)
}

fn usage_row(net: i64, dev: i64, ts: Micros, bytes: i64) -> Vec<Value> {
    vec![
        Value::I64(net),
        Value::I64(dev),
        Value::Timestamp(ts),
        Value::I64(bytes),
    ]
}

#[test]
fn insert_and_query_from_memory() {
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    let r = t
        .insert(vec![
            usage_row(1, 1, now, 100),
            usage_row(1, 2, now, 200),
            usage_row(2, 1, now, 300),
        ])
        .unwrap();
    assert_eq!(r.inserted, 3);
    // All rows, key order.
    let rows = t.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].values[3], Value::I64(100));
    // Prefix query: network 1 only.
    let rows = t
        .query_all(&Query::all().with_prefix(vec![Value::I64(1)]))
        .unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn query_after_flush_and_mixed() {
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..100 {
        t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
    }
    t.flush_all().unwrap();
    assert!(t.num_disk_tablets() >= 1);
    // More rows into memory.
    for i in 100..150 {
        t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
    }
    let rows = t.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 150);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.values[1], Value::I64(i as i64));
    }
}

#[test]
fn duplicate_keys_are_rejected() {
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    let r = t.insert(vec![usage_row(1, 1, now, 100)]).unwrap();
    assert_eq!(r.inserted, 1);
    // Same key from memory.
    let r = t.insert(vec![usage_row(1, 1, now, 999)]).unwrap();
    assert_eq!(r.duplicates, 1);
    // Same key after flush (slow path through disk).
    t.flush_all().unwrap();
    let r = t.insert(vec![usage_row(1, 1, now, 999)]).unwrap();
    assert_eq!(r.duplicates, 1);
    // Original value preserved.
    let rows = t.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].values[3], Value::I64(100));
}

#[test]
fn uniqueness_fast_paths_hit() {
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    // Ascending timestamps: fast path 1.
    for i in 0..10 {
        t.insert(vec![usage_row(1, 1, now + i, i)]).unwrap();
    }
    assert_eq!(t.stats().snapshot().unique_fast_ts, 10);
    t.flush_all().unwrap();
    // Same timestamp, larger key: fast path 2.
    t.insert(vec![usage_row(9, 9, now + 5, 0)]).unwrap();
    assert_eq!(t.stats().snapshot().unique_fast_key, 1);
    // Same timestamp, key in the middle: slow path.
    t.insert(vec![usage_row(1, 0, now + 5, 0)]).unwrap();
    assert!(t.stats().snapshot().unique_slow >= 1);
}

#[test]
fn ts_bounds_filter_rows() {
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..100 {
        t.insert(vec![usage_row(1, 1, now + i * SEC, i)]).unwrap();
    }
    let rows = t
        .query_all(&Query::all().with_ts_range(now + 10 * SEC, now + 20 * SEC))
        .unwrap();
    assert_eq!(rows.len(), 10);
    assert_eq!(rows[0].values[3], Value::I64(10));
}

#[test]
fn descending_and_limit() {
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..20 {
        t.insert(vec![usage_row(1, i, now, i)]).unwrap();
    }
    let rows = t
        .query_all(&Query::all().descending().with_limit(5))
        .unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].values[1], Value::I64(19));
    assert_eq!(rows[4].values[1], Value::I64(15));
}

#[test]
fn server_row_limit_sets_more_available() {
    let mut opts = Options::small_for_tests();
    opts.server_row_limit = 7;
    let (db, _, clock) = test_db(opts);
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..20 {
        t.insert(vec![usage_row(1, i, now, i)]).unwrap();
    }
    let mut cur = t.query(&Query::all()).unwrap();
    let mut n = 0;
    while cur.next_row().unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, 7);
    assert!(cur.more_available());
    // Client-style continuation: restart past the last key until the
    // server stops reporting more.
    let mut total = n;
    let mut last_dev = 6i64;
    loop {
        let mut cur = t
            .query(&Query::all().with_key_min(vec![Value::I64(1), Value::I64(last_dev)], false))
            .unwrap();
        while let Some(row) = cur.next_row().unwrap() {
            total += 1;
            last_dev = match row.values[1] {
                Value::I64(d) => d,
                _ => unreachable!(),
            };
        }
        if !cur.more_available() {
            break;
        }
    }
    assert_eq!(total, 20);
}

#[test]
fn latest_finds_most_recent_for_prefix() {
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..50 {
        t.insert(vec![usage_row(1, 7, now + i * SEC, i)]).unwrap();
        t.insert(vec![usage_row(1, 8, now + i * SEC, 1000 + i)])
            .unwrap();
    }
    t.flush_all().unwrap();
    // Newer rows in memory for device 7 only.
    t.insert(vec![usage_row(1, 7, now + 100 * SEC, 49_999)])
        .unwrap();
    // Full prefix (network, device).
    let row = t.latest(&[Value::I64(1), Value::I64(7)]).unwrap().unwrap();
    assert_eq!(row.values[3], Value::I64(49_999));
    let row = t.latest(&[Value::I64(1), Value::I64(8)]).unwrap().unwrap();
    assert_eq!(row.values[3], Value::I64(1049));
    // Partial prefix (network): latest across devices.
    let row = t.latest(&[Value::I64(1)]).unwrap().unwrap();
    assert_eq!(row.values[3], Value::I64(49_999));
    // Missing prefix.
    assert!(t.latest(&[Value::I64(99)]).unwrap().is_none());
    // Over-long prefix is an error.
    assert!(t
        .latest(&[Value::I64(1), Value::I64(1), Value::Timestamp(0)])
        .is_err());
}

#[test]
fn latest_and_query_all_count_queries_once() {
    // `latest` bumps both `queries` and `latest_calls`; `query_all`
    // drains a cursor but still counts as exactly one query.
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..10 {
        t.insert(vec![usage_row(1, 1, now + i * SEC, i)]).unwrap();
    }
    let before = t.stats().snapshot();
    t.latest(&[Value::I64(1)]).unwrap().unwrap();
    let after = t.stats().snapshot();
    assert_eq!(after.queries, before.queries + 1);
    assert_eq!(after.latest_calls, before.latest_calls + 1);
    t.query_all(&Query::all()).unwrap();
    let after2 = t.stats().snapshot();
    assert_eq!(after2.queries, after.queries + 1);
    assert_eq!(after2.latest_calls, after.latest_calls);
    // Every read went through the lock-free snapshot.
    assert!(after2.snapshot_loads >= 2);
}

#[test]
fn ttl_filters_and_reaps() {
    let (db, vfs, clock) = test_db(Options::small_for_tests());
    let ttl = 3600 * SEC;
    let t = db.create_table("usage", usage_schema(), Some(ttl)).unwrap();
    let now = clock.now_micros();
    t.insert(vec![usage_row(1, 1, now, 1)]).unwrap();
    t.insert(vec![usage_row(1, 2, now + 10 * SEC, 2)]).unwrap();
    t.flush_all().unwrap();
    assert_eq!(t.query_all(&Query::all()).unwrap().len(), 2);
    // Advance past the first row's expiry: it is filtered from results
    // even before the reaper runs.
    clock.set(now + ttl + 5 * SEC);
    assert_eq!(t.query_all(&Query::all()).unwrap().len(), 1);
    // Advance past both and reap: the tablet file disappears.
    clock.set(now + ttl + 3600 * SEC);
    assert_eq!(t.query_all(&Query::all()).unwrap().len(), 0);
    let files_before = vfs.list_dir("usage").unwrap().len();
    let reaped = t.ttl_reap(clock.now_micros()).unwrap();
    assert!(reaped >= 1);
    assert!(vfs.list_dir("usage").unwrap().len() < files_before);
}

#[test]
fn merging_reduces_tablet_count_preserving_rows() {
    let mut opts = Options::small_for_tests();
    opts.flush_size = 4 << 10;
    let (db, _, clock) = test_db(opts);
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..2000 {
        t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
    }
    t.flush_all().unwrap();
    let before = t.num_disk_tablets();
    assert!(before > 2, "need several tablets, got {before}");
    while t.run_merge_once(clock.now_micros()).unwrap() {}
    let after = t.num_disk_tablets();
    assert!(after < before, "merge should shrink {before} -> {after}");
    let rows = t.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 2000);
    assert!(t.stats().snapshot().merges >= 1);
}

#[test]
fn crash_preserves_flushed_prefix() {
    let (db, vfs, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..100 {
        t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
    }
    t.flush_all().unwrap();
    for i in 100..200 {
        t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
    }
    // Crash with rows 100..200 unflushed.
    vfs.crash();
    let db2 = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let t2 = db2.table("usage").unwrap();
    let rows = t2.query_all(&Query::all()).unwrap();
    // Exactly the flushed prefix survives, in insertion order by i.
    assert_eq!(rows.len(), 100);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.values[1], Value::I64(i as i64));
    }
}

#[test]
fn crash_mid_flush_leaves_no_orphans_and_keeps_prefix() {
    let (db, vfs, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..50 {
        t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
    }
    t.flush_all().unwrap();
    // Write an orphan tablet file, as if a crash hit between the file
    // write and the descriptor commit.
    let mut w = vfs.create("usage/tab-00000000000000ff.lt", 0).unwrap();
    w.append(b"partial garbage").unwrap();
    w.sync().unwrap();
    drop(w);
    vfs.sync_dir("usage").unwrap();
    vfs.crash();
    let db2 = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    assert!(!vfs.exists("usage/tab-00000000000000ff.lt"));
    let rows = db2
        .table("usage")
        .unwrap()
        .query_all(&Query::all())
        .unwrap();
    assert_eq!(rows.len(), 50);
}

#[test]
fn flush_dependencies_preserve_insert_order_across_periods() {
    // Rows alternate between an old week and the current day, forcing
    // two filling tablets with interleaved inserts. Sealing either must
    // drag the other along (they form a dependency cycle), so a crash
    // can never retain a later row while losing an earlier one.
    let mut opts = Options::small_for_tests();
    opts.flush_size = usize::MAX; // no size-based seal
    let (db, vfs, clock) = test_db(opts.clone());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    let old = now - 30 * 24 * 3600 * SEC;
    for i in 0..10 {
        t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
        t.insert(vec![usage_row(2, i, old + i, i)]).unwrap();
    }
    assert_eq!(t.num_filling(), 2);
    // Age-based seal: both tablets are in one atomic group.
    clock.advance(opts.flush_age + 1);
    t.maintain(clock.now_micros()).unwrap();
    assert_eq!(t.num_filling(), 0);
    vfs.crash();
    let db2 = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
    let rows = db2
        .table("usage")
        .unwrap()
        .query_all(&Query::all())
        .unwrap();
    // All or nothing: both tablets committed in one descriptor update.
    assert_eq!(rows.len(), 20);
}

#[test]
fn schema_evolution_end_to_end() {
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    t.insert(vec![usage_row(1, 1, now, 100)]).unwrap();
    t.flush_all().unwrap();
    t.add_column(ColumnDef::with_default(
        "packets",
        ColumnType::I64,
        Value::I64(-1),
    ))
    .unwrap();
    // Old rows (flushed and any memtable) read back with the default.
    t.insert(vec![vec![
        Value::I64(1),
        Value::I64(2),
        Value::Timestamp(now + 1),
        Value::I64(200),
        Value::I64(42),
    ]])
    .unwrap();
    let rows = t.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].values[4], Value::I64(-1));
    assert_eq!(rows[1].values[4], Value::I64(42));
    // Old-arity inserts now fail.
    assert!(t.insert(vec![usage_row(1, 3, now + 2, 1)]).is_err());
}

#[test]
fn widen_column_end_to_end() {
    let (db, vfs, clock) = test_db(Options::small_for_tests());
    let schema = Schema::new(
        vec![
            ColumnDef::new("n", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("count", ColumnType::I32),
        ],
        &["n", "ts"],
    )
    .unwrap();
    let t = db.create_table("c", schema, None).unwrap();
    let now = clock.now_micros();
    t.insert(vec![vec![
        Value::I64(1),
        Value::Timestamp(now),
        Value::I32(7),
    ]])
    .unwrap();
    t.flush_all().unwrap();
    t.widen_column("count").unwrap();
    t.insert(vec![vec![
        Value::I64(2),
        Value::Timestamp(now + 1),
        Value::I64(1 << 40),
    ]])
    .unwrap();
    let rows = t.query_all(&Query::all()).unwrap();
    assert_eq!(rows[0].values[2], Value::I64(7));
    assert_eq!(rows[1].values[2], Value::I64(1 << 40));
    // Schema survives reopen.
    db.flush_all().unwrap();
    let db2 = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let t2 = db2.table("c").unwrap();
    assert_eq!(t2.schema().columns()[2].ty, ColumnType::I64);
    assert_eq!(t2.query_all(&Query::all()).unwrap().len(), 2);
}

#[test]
fn backlog_forces_inline_flush() {
    let mut opts = Options::small_for_tests();
    opts.flush_size = 1 << 10;
    opts.max_sealed_backlog = 2;
    let (db, _, clock) = test_db(opts);
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..5000 {
        t.insert(vec![usage_row(1, i, now + i, i)]).unwrap();
    }
    // Backlog stayed bounded because inserts flushed inline.
    assert!(t.num_disk_tablets() > 0);
    let rows = t.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 5000);
}

#[test]
fn db_table_lifecycle() {
    let (db, vfs, clock) = test_db(Options::small_for_tests());
    assert!(db.table("missing").is_err());
    db.create_table("a", usage_schema(), None).unwrap();
    db.create_table("b", usage_schema(), None).unwrap();
    assert!(db.create_table("a", usage_schema(), None).is_err());
    assert!(db.create_table("bad/name", usage_schema(), None).is_err());
    assert_eq!(db.list_tables(), vec!["a".to_string(), "b".to_string()]);
    db.drop_table("a").unwrap();
    assert!(db.table("a").is_err());
    // Dropped table's files are gone; recreation works.
    db.create_table("a", usage_schema(), None).unwrap();
    // Reopen sees both tables.
    db.flush_all().unwrap();
    drop(db);
    let db2 = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    assert_eq!(db2.list_tables(), vec!["a".to_string(), "b".to_string()]);
}

#[test]
fn insert_visible_to_subsequent_query_during_flush_window() {
    // A query started after an insert completes must see the row even
    // if the row's group is mid-flush (sealed, not yet committed).
    let mut opts = Options::small_for_tests();
    opts.flush_size = 1; // every insert seals immediately
    opts.max_sealed_backlog = usize::MAX; // never inline-flush
    let (db, _, clock) = test_db(opts);
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    t.insert(vec![usage_row(1, 1, now, 1)]).unwrap();
    t.insert(vec![usage_row(1, 2, now + 1, 2)]).unwrap();
    // Rows are in sealed groups, none flushed.
    assert_eq!(t.num_disk_tablets(), 0);
    assert_eq!(t.query_all(&Query::all()).unwrap().len(), 2);
    while t.flush_next_group().unwrap() {}
    assert_eq!(t.query_all(&Query::all()).unwrap().len(), 2);
}

#[test]
fn scan_ratio_accounts_time_filtering() {
    let (db, _, clock) = test_db(Options::small_for_tests());
    let t = db.create_table("usage", usage_schema(), None).unwrap();
    let now = clock.now_micros();
    for i in 0..100 {
        t.insert(vec![usage_row(1, 1, now + i * SEC, i)]).unwrap();
    }
    t.flush_all().unwrap();
    // Key bounds cover all 100 rows of device 1, time bounds only 10:
    // the cursor scans ~100 and returns 10.
    let q = Query::all()
        .with_prefix(vec![Value::I64(1), Value::I64(1)])
        .with_ts_range(now, now + 10 * SEC);
    let mut cur = t.query(&q).unwrap();
    while cur.next_row().unwrap().is_some() {}
    assert_eq!(cur.returned(), 10);
    assert!(cur.scanned() >= 10);
    drop(cur);
    let snap = t.stats().snapshot();
    assert_eq!(snap.rows_returned, 10);
}
