//! The maintenance paths: flushing sealed groups, merging, TTL reaping,
//! bulk delete, cold-tier migration, and schema evolution.
//!
//! Each path does its disk work outside the state mutex, then commits
//! under it: mutate the tablet set, republish the read snapshot
//! ([`Table::publish_locked`]), and persist the descriptor. Readers
//! holding the previous snapshot keep their (pre-transition) view —
//! flushed memtablets stay alive through the snapshot's `Arc`s until
//! the last such reader drops it.

use super::state::{DiskHandle, SharedMemTablet, TableState};
use super::{MaintenanceReport, Table};
use crate::cursor::{DiskCursor, MergeCursor, RowSource};
use crate::descriptor::{tablet_file_name, TableDescriptor, TabletMeta};
use crate::error::{Error, Result};
use crate::keyenc::{encode_prefix, KeyRange};
use crate::memtable::MemTabletId;
use crate::mergepolicy::find_merge;
use crate::schema::{Schema, SchemaRef};
use crate::stats::TableStats;
use crate::tablet::TabletWriter;
use crate::util::hash_bytes;
use crate::value::Value;
use littletable_vfs::{join, Micros, Vfs};
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl Table {
    // ---------------------------------------------------------------- flush

    /// Flushes the oldest sealed group, if any. Returns whether a group
    /// was flushed.
    pub fn flush_next_group(&self) -> Result<bool> {
        let _flush = self.flush_lock.lock();
        let (group_id, tablets) = {
            let mut st = self.state.lock();
            if st.dropped {
                // A dropped table must not write new files into its
                // directory: `drop_table` may already have deleted it, and
                // a same-name table may own the path again.
                return Ok(false);
            }
            let Some(group) = st.sealed.front_mut() else {
                return Ok(false);
            };
            group.flushing = true;
            (group.id, group.tablets.clone())
        };
        let now = self.clock.now_micros();
        // Allocate tablet ids.
        let ids: Vec<u64> = {
            let mut st = self.state.lock();
            tablets
                .iter()
                .map(|_| {
                    let id = st.next_tablet_id;
                    st.next_tablet_id += 1;
                    id
                })
                .collect()
        };
        let written: Result<Vec<DiskHandle>> = (|| {
            let mut new_handles = Vec::new();
            for (mem, id) in tablets.iter().zip(&ids) {
                if mem.read().is_empty() {
                    continue;
                }
                let meta = self.write_mem_tablet(mem, *id, now)?;
                new_handles.push(DiskHandle {
                    reader: self.new_reader(self.vfs.clone(), join(&self.dir, &meta.file_name())),
                    meta,
                });
            }
            Ok(new_handles)
        })();
        let new_handles = match written {
            Ok(h) => h,
            Err(e) => {
                // fsync-gate: a failed write or sync means nothing from
                // this group is published. Reclaim whatever partial output
                // exists (best-effort — the disk may still be failing) and
                // hand the sealed group back for a later retry; reads keep
                // serving it from memory meanwhile.
                for id in &ids {
                    let _ = self.vfs.remove(&join(&self.dir, &tablet_file_name(*id)));
                }
                let mut st = self.state.lock();
                if let Some(g) = st.sealed.iter_mut().find(|g| g.id == group_id) {
                    g.flushing = false;
                }
                return Err(e);
            }
        };
        for h in &new_handles {
            TableStats::add(&self.stats.tablets_flushed, 1);
            TableStats::add(&self.stats.bytes_flushed, h.meta.bytes);
        }
        // Commit: swap the group for its disk handles in one snapshot
        // publish (readers see either all-mem or all-disk, never both),
        // then persist the descriptor.
        let mut st = self.state.lock();
        if st.dropped {
            // Dropped between the write and the commit (drop_table waits
            // on `flush_lock`, so this is the last flush it lets finish):
            // abandon the output instead of resurrecting files or a
            // descriptor in a directory about to be — or already —
            // deleted and possibly re-owned by a recreated table.
            drop(st);
            for h in &new_handles {
                let _ = self.vfs.remove(&join(&self.dir, &h.meta.file_name()));
            }
            return Ok(false);
        }
        st.disk.extend(new_handles);
        st.sort_disk();
        let pos = st
            .sealed
            .iter()
            .position(|g| g.id == group_id)
            .expect("flushing group still present");
        st.sealed.remove(pos);
        self.publish_locked(&st);
        self.save_descriptor_locked(&st)?;
        Ok(true)
    }

    fn write_mem_tablet(
        &self,
        tablet: &SharedMemTablet,
        id: u64,
        now: Micros,
    ) -> Result<TabletMeta> {
        // Sealed tablets take no further inserts; the read guard is held
        // across the file write only to satisfy the lock discipline.
        let mem = tablet.read();
        let schema = mem.schema().clone();
        let path = join(&self.dir, &tablet_file_name(id));
        let file = self.vfs.create(&path, mem.bytes() as u64)?;
        let mut w = TabletWriter::new(
            file,
            (*schema).clone(),
            self.opts.block_size,
            self.opts.bloom_filters,
            self.opts.block_format,
        );
        for (key, row) in mem.iter() {
            w.add_row(key, row)?;
        }
        let (min_ts, max_ts, rows, bytes) = w.finish()?;
        Ok(TabletMeta {
            id,
            min_ts,
            max_ts,
            rows,
            bytes,
            written_at: now,
            schema_version: schema.version(),
            cold: false,
            rolled_up: false,
        })
    }

    pub(super) fn save_descriptor_locked(&self, st: &TableState) -> Result<()> {
        let mut desc = TableDescriptor::new((*st.schema).clone(), st.ttl);
        desc.next_tablet_id = st.next_tablet_id;
        desc.tablets = st.metas();
        // Track save failures: the in-memory transition already committed,
        // so until a later save lands the on-disk `DESC` is stale and no
        // flush may report durability over it (see `resync_descriptor`).
        match desc.save(self.vfs.as_ref(), &self.dir) {
            Ok(()) => {
                self.desc_dirty.store(false, Ordering::Release);
                Ok(())
            }
            Err(e) => {
                self.desc_dirty.store(true, Ordering::Release);
                Err(e)
            }
        }
    }

    /// Re-saves the descriptor if a previous save failed after its
    /// transition committed in memory. Called on every `flush_all` /
    /// `maintain` so one bad save degrades a single operation, not the
    /// durability of every flush after it.
    fn resync_descriptor(&self) -> Result<()> {
        if !self.desc_dirty.load(Ordering::Acquire) {
            return Ok(());
        }
        let st = self.state.lock();
        if st.dropped {
            // Never re-materialize a descriptor for a dropped table: the
            // path may belong to a freshly created table of the same name.
            return Ok(());
        }
        self.save_descriptor_locked(&st)
    }

    /// Seals every filling tablet and flushes everything to disk.
    pub fn flush_all(&self) -> Result<()> {
        {
            let mut st = self.state.lock();
            let ids: Vec<MemTabletId> = st.filling.values().map(|t| t.id()).collect();
            for id in ids {
                self.seal_locked(&mut st, id);
            }
        }
        while self.flush_next_group()? {}
        self.resync_descriptor()
    }

    /// Flushes to disk every in-memory tablet holding rows with timestamps
    /// at or before `ts` — the command §4.1.2 of the paper proposes so
    /// that aggregators need not *assume* source data has reached disk.
    /// When this returns, every row with `row.ts <= ts` that was inserted
    /// before the call is durable.
    pub fn flush_before(&self, ts: Micros) -> Result<()> {
        {
            let mut st = self.state.lock();
            let ids: Vec<MemTabletId> = st
                .filling
                .values()
                .filter(|t| t.read().min_ts().is_some_and(|lo| lo <= ts))
                .map(|t| t.id())
                .collect();
            for id in ids {
                // The closure drags along any tablets that must flush
                // first, preserving prefix durability.
                if st.filling.values().any(|t| t.id() == id) {
                    self.seal_locked(&mut st, id);
                }
            }
        }
        while self.flush_next_group()? {}
        self.resync_descriptor()
    }

    // ----------------------------------------------------------- bulk delete

    /// Deletes every row whose primary key starts with `prefix` — the
    /// bulk-delete feature §7 of the paper describes investigating for
    /// compliance with regional privacy laws. In-memory data is flushed
    /// first; each affected on-disk tablet is rewritten without the
    /// matching rows (or dropped outright when nothing else remains), and
    /// the descriptor is replaced once. Returns the number of rows
    /// deleted.
    pub fn bulk_delete(&self, prefix: &[Value]) -> Result<u64> {
        let schema = self.schema();
        if prefix.is_empty() || prefix.len() >= schema.key_len() {
            return Err(Error::invalid(
                "bulk_delete takes a non-empty strict prefix of the key columns",
            ));
        }
        let encoded = encode_prefix(prefix, &schema.key_types())?;
        let range = KeyRange::for_prefix(encoded.clone());
        self.flush_all()?;

        // Take the merger's slot so no merge runs while we rewrite.
        {
            let mut st = self.state.lock();
            if st.merge_running {
                return Err(Error::invalid(
                    "bulk_delete cannot run while a merge is in progress",
                ));
            }
            st.merge_running = true;
        }
        let result = self.bulk_delete_inner(&schema, &encoded, &range);
        self.state.lock().merge_running = false;
        result
    }

    fn bulk_delete_inner(
        &self,
        schema: &SchemaRef,
        encoded: &[u8],
        range: &KeyRange,
    ) -> Result<u64> {
        let sources: Vec<DiskHandle> = self.state.lock().disk.clone();
        let now = self.clock.now_micros();
        let prefix_hash = hash_bytes(encoded);
        let mut deleted = 0u64;
        // (old id, replacement) pairs; None replacement = tablet dropped.
        let mut rewrites: Vec<(u64, Option<DiskHandle>)> = Vec::new();
        let mut new_ids: Vec<u64> = Vec::new();
        for h in &sources {
            let footer = h.reader.footer()?;
            if let Some(bloom) = &footer.bloom {
                if !bloom.may_contain(prefix_hash) {
                    continue;
                }
            }
            // Does this tablet hold any matching row at all?
            let mut probe = DiskCursor::new(h.reader.clone(), schema.clone(), range.clone(), false);
            if probe.next_row()?.is_none() {
                continue;
            }
            // Rewrite the tablet without the matching rows.
            let new_id = {
                let mut st = self.state.lock();
                let id = st.next_tablet_id;
                st.next_tablet_id += 1;
                id
            };
            new_ids.push(new_id);
            let path = join(&self.dir, &tablet_file_name(new_id));
            let file = self.vfs.create(&path, h.meta.bytes)?;
            let mut w = TabletWriter::new(
                file,
                (**schema).clone(),
                self.opts.block_size,
                self.opts.bloom_filters,
                self.opts.block_format,
            );
            let mut cur = DiskCursor::new(h.reader.clone(), schema.clone(), KeyRange::all(), false)
                .with_read_run(1 << 20);
            while let Some((key, row)) = cur.next_row()? {
                if range.contains(&key) {
                    deleted += 1;
                    continue;
                }
                w.add_row(&key, &row)?;
            }
            if w.row_count() == 0 {
                drop(w);
                let _ = self.vfs.remove(&path);
                rewrites.push((h.meta.id, None));
            } else {
                let (min_ts, max_ts, rows, bytes) = w.finish()?;
                let meta = TabletMeta {
                    id: new_id,
                    min_ts,
                    max_ts,
                    rows,
                    bytes,
                    written_at: now,
                    schema_version: schema.version(),
                    cold: false,
                    rolled_up: h.meta.rolled_up,
                };
                rewrites.push((
                    h.meta.id,
                    Some(DiskHandle {
                        reader: self.new_reader(self.vfs.clone(), path),
                        meta,
                    }),
                ));
            }
        }
        if rewrites.is_empty() {
            return Ok(0);
        }
        // Single atomic commit, then reclaim the old files.
        let mut st = self.state.lock();
        for (old_id, replacement) in &rewrites {
            st.disk.retain(|h| h.meta.id != *old_id);
            if let Some(h) = replacement {
                st.disk.push(h.clone());
            }
        }
        st.sort_disk();
        self.publish_locked(&st);
        self.save_descriptor_locked(&st)?;
        drop(st);
        // A bulk delete mutates data without going through `insert`, so the
        // query-result cache's insert_seq key would otherwise keep serving
        // pre-delete results.
        self.insert_seq.fetch_add(1, Ordering::SeqCst);
        for (old_id, _) in &rewrites {
            let _ = self
                .vfs
                .remove(&join(&self.dir, &tablet_file_name(*old_id)));
        }
        Ok(deleted)
    }

    // ----------------------------------------------------------- maintenance

    /// Runs one maintenance pass at time `now`: seals aged tablets,
    /// flushes sealed groups, performs at most one merge, and reaps
    /// TTL-expired tablets.
    pub fn maintain(&self, now: Micros) -> Result<MaintenanceReport> {
        let mut report = MaintenanceReport::default();
        // 1. Age-based seals (§3.4.1: flush no later than 10 minutes after
        //    a tablet's first insert).
        {
            let mut st = self.state.lock();
            let due: Vec<MemTabletId> = st
                .filling
                .values()
                .filter(|t| {
                    let mem = t.read();
                    !mem.is_empty() && now - mem.first_insert_at() >= self.opts.flush_age
                })
                .map(|t| t.id())
                .collect();
            report.sealed_by_age = due.len();
            for id in due {
                // The closure may have sealed it already with a sibling.
                if st.filling.values().any(|t| t.id() == id) {
                    self.seal_locked(&mut st, id);
                }
            }
        }
        // 2. Flush everything sealed.
        while self.flush_next_group()? {
            report.groups_flushed += 1;
        }
        // 3. One merge.
        if self.opts.merge_enabled && self.run_merge_once(now)? {
            report.merges = 1;
        }
        // 4. TTL expiry.
        report.tablets_expired = self.ttl_reap(now)?;
        // 5. Heal a descriptor left stale by an earlier failed save.
        self.resync_descriptor()?;
        Ok(report)
    }

    /// Performs at most one merge step; returns whether a merge ran.
    pub fn run_merge_once(&self, now: Micros) -> Result<bool> {
        let (sources, schema, ttl, new_id) = {
            let mut st = self.state.lock();
            if st.merge_running || st.dropped {
                return Ok(false);
            }
            let mut metas = st.metas();
            if self.rollup_source.load(Ordering::Acquire) {
                // Tablets not yet folded into every rollup must keep their
                // identity (fold idempotency is keyed on tablet id), so the
                // merger only considers rolled-up tablets here; the fold
                // pass marks tablets and unblocks them.
                metas.retain(|m| m.rolled_up);
            }
            let policy = self.opts.merge_policy();
            let Some(ids) = find_merge(&metas, now, &policy) else {
                return Ok(false);
            };
            st.merge_running = true;
            let sources: Vec<DiskHandle> = st
                .disk
                .iter()
                .filter(|h| ids.contains(&h.meta.id))
                .cloned()
                .collect();
            let new_id = st.next_tablet_id;
            st.next_tablet_id += 1;
            (sources, st.schema.clone(), st.ttl, new_id)
        };
        let result = self.execute_merge(&sources, &schema, ttl, new_id, now);
        let mut st = self.state.lock();
        st.merge_running = false;
        if st.dropped {
            // Dropped while merging: the sources are already gone from
            // the published snapshot (and their files deleted); committing
            // would write a descriptor into a directory this table no
            // longer owns. Abandon the merge output.
            drop(st);
            let _ = self.vfs.remove(&join(&self.dir, &tablet_file_name(new_id)));
            return Ok(false);
        }
        match result {
            Ok(new_handle) => {
                let source_ids: Vec<u64> = sources.iter().map(|h| h.meta.id).collect();
                st.disk.retain(|h| !source_ids.contains(&h.meta.id));
                if let Some(h) = new_handle {
                    st.disk.push(h);
                }
                st.sort_disk();
                self.publish_locked(&st);
                self.save_descriptor_locked(&st)?;
                drop(st);
                // Readers still holding the pre-merge snapshot keep the
                // source readers alive via Arc; file removal on the
                // SimVfs/posix VFS unlinks, so open handles stay valid.
                for h in &sources {
                    let _ = self.vfs.remove(&join(&self.dir, &h.meta.file_name()));
                }
                TableStats::add(&self.stats.merges, 1);
                Ok(true)
            }
            Err(e) => {
                drop(st);
                let _ = self.vfs.remove(&join(&self.dir, &tablet_file_name(new_id)));
                Err(e)
            }
        }
    }

    /// Merge-sorts `sources` into one new tablet (§3.4.1), translating
    /// rows to the newest schema and dropping rows that have already
    /// expired. Returns `None` when every row had expired.
    fn execute_merge(
        &self,
        sources: &[DiskHandle],
        schema: &SchemaRef,
        ttl: Option<Micros>,
        new_id: u64,
        now: Micros,
    ) -> Result<Option<DiskHandle>> {
        let cutoff = ttl.map(|t| now.saturating_sub(t)).unwrap_or(Micros::MIN);
        let cursors: Vec<Box<dyn RowSource + Send>> = sources
            .iter()
            .map(|h| {
                // §3.4.1: merges read in ~1 MB runs so the disk spends at
                // most half its time seeking between the input tablets.
                Box::new(
                    DiskCursor::new(h.reader.clone(), schema.clone(), KeyRange::all(), false)
                        .with_read_run(1 << 20),
                ) as Box<dyn RowSource + Send>
            })
            .collect();
        let mut merge = MergeCursor::new(cursors, false);
        let path = join(&self.dir, &tablet_file_name(new_id));
        let size_hint: u64 = sources.iter().map(|h| h.meta.bytes).sum();
        let file = self.vfs.create(&path, size_hint)?;
        let mut w = TabletWriter::new(
            file,
            (**schema).clone(),
            self.opts.block_size,
            self.opts.bloom_filters,
            self.opts.block_format,
        );
        while let Some((key, row)) = merge.next_row()? {
            if row.ts(schema)? < cutoff {
                continue;
            }
            w.add_row(&key, &row)?;
        }
        if w.row_count() == 0 {
            drop(w);
            let _ = self.vfs.remove(&path);
            return Ok(None);
        }
        let (min_ts, max_ts, rows, bytes) = w.finish()?;
        TableStats::add(&self.stats.bytes_merge_written, bytes);
        let meta = TabletMeta {
            id: new_id,
            min_ts,
            max_ts,
            rows,
            bytes,
            written_at: now,
            schema_version: schema.version(),
            cold: false,
            rolled_up: sources.iter().all(|h| h.meta.rolled_up),
        };
        Ok(Some(DiskHandle {
            reader: self.new_reader(self.vfs.clone(), path),
            meta,
        }))
    }

    /// Removes on-disk tablets whose every row has expired (§3.3).
    /// Returns the number of tablets reclaimed.
    pub fn ttl_reap(&self, now: Micros) -> Result<usize> {
        let dead: Vec<DiskHandle> = {
            let mut st = self.state.lock();
            if st.dropped {
                // drop_table already deleted (or is deleting) every file.
                return Ok(0);
            }
            let Some(ttl) = st.ttl else { return Ok(0) };
            if st.merge_running {
                // A merge may be reading any tablet; wait for the next pass.
                return Ok(0);
            }
            let cutoff = now.saturating_sub(ttl);
            let (keep, dead): (Vec<_>, Vec<_>) =
                st.disk.drain(..).partition(|h| h.meta.max_ts >= cutoff);
            st.disk = keep;
            if dead.is_empty() {
                return Ok(0);
            }
            self.publish_locked(&st);
            self.save_descriptor_locked(&st)?;
            dead
        };
        for h in &dead {
            let path = join(&self.dir, &h.meta.file_name());
            if h.meta.cold {
                if let Some(cold) = &self.cold_vfs {
                    let _ = cold.remove(&path);
                }
            } else {
                let _ = self.vfs.remove(&path);
            }
        }
        TableStats::add(&self.stats.tablets_expired, dead.len() as u64);
        Ok(dead.len())
    }

    // ------------------------------------------------------------ cold store

    /// Moves every on-disk tablet whose newest row is older than `cutoff`
    /// to the cold store (§6: "LHAM introduced the idea of moving older
    /// data in a log-structured system to write-once media... we are
    /// considering using Amazon S3 as an additional backing store for old
    /// LittleTable data"). Cold tablets keep serving queries through the
    /// cold VFS, are excluded from merging, and still expire by TTL.
    /// Returns the number of tablets migrated.
    pub fn migrate_to_cold(&self, cutoff: Micros) -> Result<usize> {
        let cold = self
            .cold_vfs
            .clone()
            .ok_or_else(|| Error::invalid("no cold store configured"))?;
        // Take the merger's slot so sources cannot be merged away.
        {
            let mut st = self.state.lock();
            if st.merge_running {
                return Ok(0);
            }
            st.merge_running = true;
        }
        let result = self.migrate_to_cold_inner(&cold, cutoff);
        self.state.lock().merge_running = false;
        result
    }

    fn migrate_to_cold_inner(&self, cold: &Arc<dyn Vfs>, cutoff: Micros) -> Result<usize> {
        let candidates: Vec<DiskHandle> = self
            .state
            .lock()
            .disk
            .iter()
            .filter(|h| !h.meta.cold && h.meta.max_ts < cutoff)
            .cloned()
            .collect();
        if candidates.is_empty() {
            return Ok(0);
        }
        cold.mkdir_all(&self.dir)?;
        let mut migrated = Vec::with_capacity(candidates.len());
        for h in &candidates {
            let path = join(&self.dir, &h.meta.file_name());
            let src = self.vfs.open(&path)?;
            let len = src.len()?;
            let mut buf = vec![0u8; len as usize];
            src.read_exact_at(0, &mut buf)?;
            let mut w = cold.create(&path, len)?;
            w.append(&buf)?;
            w.sync()?;
            let mut meta = h.meta.clone();
            meta.cold = true;
            migrated.push(DiskHandle {
                reader: self.new_reader(cold.clone(), path),
                meta,
            });
        }
        cold.sync_dir(&self.dir)?;
        // Single descriptor commit flips the tablets to the cold tier,
        // then the hot copies are reclaimed.
        let mut st = self.state.lock();
        for h in &migrated {
            st.disk.retain(|x| x.meta.id != h.meta.id);
            st.disk.push(h.clone());
        }
        st.sort_disk();
        self.publish_locked(&st);
        self.save_descriptor_locked(&st)?;
        drop(st);
        for h in &candidates {
            let _ = self.vfs.remove(&join(&self.dir, &h.meta.file_name()));
        }
        Ok(migrated.len())
    }

    // ---------------------------------------------------------- schema & ttl

    /// Appends a column to the schema (§3.5). Existing tablets are not
    /// rewritten; filling tablets are sealed so no tablet mixes schema
    /// versions.
    pub fn add_column(&self, col: crate::schema::ColumnDef) -> Result<()> {
        let mut st = self.state.lock();
        let new_schema = st.schema.add_column(col)?;
        self.install_schema_locked(&mut st, new_schema)
    }

    /// Widens an `int32` column to `int64` (§3.5).
    pub fn widen_column(&self, name: &str) -> Result<()> {
        let mut st = self.state.lock();
        let new_schema = st.schema.widen_column(name)?;
        self.install_schema_locked(&mut st, new_schema)
    }

    fn install_schema_locked(&self, st: &mut TableState, new_schema: Schema) -> Result<()> {
        let ids: Vec<MemTabletId> = st.filling.values().map(|t| t.id()).collect();
        for id in ids {
            if st.filling.values().any(|t| t.id() == id) {
                self.seal_locked(st, id);
            }
        }
        st.schema = Arc::new(new_schema);
        self.publish_locked(st);
        self.save_descriptor_locked(st)
    }

    /// Changes the table's TTL (§3.5).
    pub fn set_ttl(&self, ttl: Option<Micros>) -> Result<()> {
        let mut st = self.state.lock();
        st.ttl = ttl;
        self.publish_locked(&st);
        self.save_descriptor_locked(&st)
    }
}
