//! The read path: `query`, `query_all`, `latest`, and the streaming
//! [`QueryCursor`].
//!
//! Both entry points run entirely from one `read_view()` — a lock-free
//! snapshot load plus an insert-sequence cutoff. Disk tablets are
//! immutable files behind `Arc`'d readers; in-memory tablets are
//! snapshotted under their own read locks with the cutoff filtering out
//! rows inserted after the view was taken. Expensive work (range
//! copying, cross-version `translate_row`) happens outside every lock,
//! so readers cannot stall the writer or the maintenance paths.

use super::state::SharedMemTablet;
use super::Table;
use crate::cursor::{DiskCursor, MemSource, MergeCursor, RowSource};
use crate::error::{Error, Result};
use crate::keyenc::{encode_prefix, KeyRange};
use crate::query::Query;
use crate::row::Row;
use crate::schema::SchemaRef;
use crate::stats::TableStats;
use crate::tablet::TabletReader;
use crate::util::hash_bytes;
use crate::value::Value;
use littletable_vfs::Micros;
use std::sync::Arc;

/// Keyed rows copied out of a memtablet snapshot.
type KeyedRows = Vec<(Vec<u8>, Row)>;

/// Snapshots one shared memtablet for a query: the rows inside `range`
/// stamped below `cutoff_seq`, translated to the `newest` schema when
/// the tablet was written under an older one. Returns `None` when the
/// tablet's timespan misses `[ts_lo, ts_hi]`. The per-tablet read lock
/// covers only the range copy; translation runs after it is released.
pub(super) fn mem_rows(
    t: &SharedMemTablet,
    range: &KeyRange,
    ts_lo: Micros,
    ts_hi: Micros,
    cutoff_seq: u64,
    newest: &SchemaRef,
) -> Result<Option<KeyedRows>> {
    let (mut rows, from) = {
        let mem = t.read();
        match (mem.min_ts(), mem.max_ts()) {
            (Some(lo), Some(hi)) if hi >= ts_lo && lo <= ts_hi => {}
            _ => return Ok(None),
        }
        (mem.snapshot_range(range, cutoff_seq), mem.schema().clone())
    };
    if from.version() != newest.version() {
        for (_, row) in rows.iter_mut() {
            let vals = std::mem::take(&mut row.values);
            row.values = from.translate_row(newest, vals)?;
        }
    }
    Ok(Some(rows))
}

impl Table {
    /// Executes a query, returning a streaming cursor over matching rows
    /// in key order. The fast path acquires no mutex: one snapshot load,
    /// then per-memtablet read locks for the row copies.
    pub fn query(&self, q: &Query) -> Result<QueryCursor> {
        TableStats::add(&self.stats.queries, 1);
        let now = self.clock.now_micros();
        let (snap, cutoff_seq) = self.read_view();
        if snap.dropped {
            return Err(Error::NoSuchTable(self.name().to_string()));
        }
        let schema = snap.schema.clone();
        let range = q.key_range(&schema)?;
        let (ts_lo, ts_hi) = q.ts_interval();
        // TTL: expired rows are filtered from results (§3.3).
        let ts_lo = match snap.ttl {
            Some(ttl) => ts_lo.max(now.saturating_sub(ttl)),
            None => ts_lo,
        };
        let mut sources: Vec<Box<dyn RowSource + Send>> = Vec::new();
        if !range.is_certainly_empty() && ts_lo <= ts_hi {
            for h in &snap.disk {
                if h.meta.max_ts >= ts_lo && h.meta.min_ts <= ts_hi {
                    sources.push(Box::new(DiskCursor::new(
                        h.reader.clone(),
                        schema.clone(),
                        range.clone(),
                        q.descending,
                    )));
                }
            }
            for t in &snap.mem {
                if let Some(rows) = mem_rows(t, &range, ts_lo, ts_hi, cutoff_seq, &schema)? {
                    sources.push(Box::new(MemSource::new(rows, q.descending)));
                }
            }
        }
        Ok(QueryCursor {
            merge: MergeCursor::new(sources, q.descending),
            schema,
            ts_lo,
            ts_hi,
            remaining: q.limit,
            server_remaining: self.opts.server_row_limit,
            more_available: false,
            done: false,
            scanned: 0,
            returned: 0,
            stats: self.stats.clone(),
        })
    }

    /// Convenience: runs a query and collects every row. Counts as one
    /// query — the cursor it drains adds no second increment.
    pub fn query_all(&self, q: &Query) -> Result<Vec<Row>> {
        let mut cur = self.query(q)?;
        let mut out = Vec::new();
        while let Some(row) = cur.next_row()? {
            out.push(row);
        }
        Ok(out)
    }

    /// Finds the most recent row whose key starts with `prefix` (§3.4.5):
    /// works backwards through each group of tablets with overlapping
    /// timespans, consulting Bloom filters where available. Shares the
    /// lock-free snapshot fast path with [`Table::query`].
    pub fn latest(&self, prefix: &[Value]) -> Result<Option<Row>> {
        TableStats::add(&self.stats.queries, 1);
        TableStats::add(&self.stats.latest_calls, 1);
        let now = self.clock.now_micros();
        let (snap, cutoff_seq) = self.read_view();
        if snap.dropped {
            return Err(Error::NoSuchTable(self.name().to_string()));
        }
        let schema = snap.schema.clone();
        let types = schema.key_types();
        if prefix.len() >= schema.key_len() {
            return Err(Error::invalid(
                "latest() takes a strict prefix of the key columns",
            ));
        }
        let encoded = encode_prefix(prefix, &types)?;
        let range = KeyRange::for_prefix(encoded.clone());
        let cutoff = snap
            .ttl
            .map(|ttl| now.saturating_sub(ttl))
            .unwrap_or(Micros::MIN);
        // The prefix determines every key column except (at least) the
        // timestamp, so within the subtree the timestamp dominates the
        // remaining sort order only when the prefix is full.
        let full_prefix = prefix.len() == schema.key_len() - 1;

        enum Src {
            Mem(Vec<(Vec<u8>, Row)>),
            Disk(Arc<TabletReader>),
        }
        let mut spans: Vec<(Micros, Micros, Src)> = Vec::new();
        for h in &snap.disk {
            if h.meta.max_ts >= cutoff {
                spans.push((h.meta.min_ts, h.meta.max_ts, Src::Disk(h.reader.clone())));
            }
        }
        for t in &snap.mem {
            let span = {
                let mem = t.read();
                match (mem.min_ts(), mem.max_ts()) {
                    (Some(lo), Some(hi)) if hi >= cutoff => Some((lo, hi)),
                    _ => None,
                }
            };
            if let Some((lo, hi)) = span {
                if let Some(rows) =
                    mem_rows(t, &range, Micros::MIN, Micros::MAX, cutoff_seq, &schema)?
                {
                    spans.push((lo, hi, Src::Mem(rows)));
                }
            }
        }

        // Group spans whose time ranges overlap (connected intervals).
        spans.sort_by_key(|(lo, _, _)| *lo);
        let mut groups: Vec<Vec<(Micros, Micros, Src)>> = Vec::new();
        let mut group_hi = Micros::MIN;
        for span in spans {
            if groups.is_empty() || span.0 > group_hi {
                group_hi = span.1;
                groups.push(vec![span]);
            } else {
                group_hi = group_hi.max(span.1);
                groups.last_mut().unwrap().push(span);
            }
        }

        let prefix_hash = hash_bytes(&encoded);
        let mut scanned = 0u64;
        for group in groups.into_iter().rev() {
            let mut sources: Vec<Box<dyn RowSource + Send>> = Vec::new();
            for (_, _, src) in group {
                match src {
                    Src::Mem(rows) => sources.push(Box::new(MemSource::new(rows, true))),
                    Src::Disk(reader) => {
                        if self.opts.bloom_filters {
                            if let Some(bloom) = &reader.footer()?.bloom {
                                if !bloom.may_contain(prefix_hash) {
                                    continue;
                                }
                            }
                        }
                        sources.push(Box::new(DiskCursor::new(
                            reader,
                            schema.clone(),
                            range.clone(),
                            true,
                        )));
                    }
                }
            }
            if sources.is_empty() {
                continue;
            }
            let mut merge = MergeCursor::new(sources, true);
            let mut best: Option<(Micros, Row)> = None;
            while let Some((_, row)) = merge.next_row()? {
                scanned += 1;
                let ts = row.ts(&schema)?;
                if ts < cutoff {
                    continue;
                }
                if full_prefix {
                    // Descending key order with ts as the final component:
                    // the first unexpired row is the latest.
                    best = Some((ts, row));
                    break;
                }
                if best.as_ref().is_none_or(|(b, _)| ts > *b) {
                    best = Some((ts, row));
                }
            }
            if let Some((_, row)) = best {
                TableStats::add(&self.stats.rows_scanned, scanned);
                TableStats::add(&self.stats.rows_returned, 1);
                return Ok(Some(row));
            }
        }
        TableStats::add(&self.stats.rows_scanned, scanned);
        Ok(None)
    }
}

/// A streaming query result: rows in key order, filtered by the query's
/// timestamp bounds and the table's TTL.
pub struct QueryCursor {
    merge: MergeCursor,
    schema: SchemaRef,
    ts_lo: Micros,
    ts_hi: Micros,
    remaining: Option<usize>,
    server_remaining: usize,
    more_available: bool,
    done: bool,
    scanned: u64,
    returned: u64,
    stats: Arc<crate::stats::TableStats>,
}

impl QueryCursor {
    /// Produces the next matching row, or `None` at the end.
    pub fn next_row(&mut self) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        if self.remaining == Some(0) {
            self.done = true;
            return Ok(None);
        }
        loop {
            if self.server_remaining == 0 {
                // The server's own cap: the client sees `more_available`
                // and re-submits from the last returned key (§3.5).
                self.more_available = true;
                self.done = true;
                return Ok(None);
            }
            match self.merge.next_row()? {
                None => {
                    self.done = true;
                    return Ok(None);
                }
                Some((_, row)) => {
                    self.scanned += 1;
                    let ts = row.ts(&self.schema)?;
                    if ts < self.ts_lo || ts > self.ts_hi {
                        continue;
                    }
                    self.returned += 1;
                    self.server_remaining -= 1;
                    if let Some(r) = &mut self.remaining {
                        *r -= 1;
                    }
                    return Ok(Some(row));
                }
            }
        }
    }

    /// True when the server row limit cut the result short; re-submit the
    /// query starting past the last returned key for more.
    pub fn more_available(&self) -> bool {
        self.more_available
    }

    /// Rows examined so far (inside key bounds, before time filtering).
    pub fn scanned(&self) -> u64 {
        self.scanned
    }

    /// Rows returned so far.
    pub fn returned(&self) -> u64 {
        self.returned
    }

    /// The schema rows are returned under.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }
}

impl Drop for QueryCursor {
    fn drop(&mut self) {
        TableStats::add(&self.stats.rows_scanned, self.scanned);
        TableStats::add(&self.stats.rows_returned, self.returned);
        // Every row the merge produced was decoded into a `Row`; the
        // pushdown path counts its materializations the same way.
        TableStats::add(&self.stats.rows_materialized, self.scanned);
    }
}

impl Iterator for QueryCursor {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_row().transpose()
    }
}
