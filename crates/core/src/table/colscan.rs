//! Vectorized aggregate pushdown over columnar tablets.
//!
//! [`Table::pushdown_scan`] walks the same read-view snapshot as
//! [`Table::query`], but instead of merging rows in key order it hands
//! the caller the cheapest unit that still answers an aggregate
//! exactly, per block:
//!
//! * [`ScanUnit::Stats`] — the block's footer statistics (row count and
//!   per-column zone maps). No block bytes are touched at all; enough
//!   for `COUNT`/`MIN`/`MAX` when every predicate is decided by zones.
//! * [`ScanUnit::Block`] — a decoded columnar block whose rows are all
//!   proven inside the key and time bounds; the caller aggregates
//!   straight over column slices, re-checking only the listed
//!   `uncertain` predicates. No keys and no [`Row`]s are materialized.
//! * [`ScanUnit::Rows`] — fully filtered, materialized rows, used for
//!   boundary blocks, memtablets, and tablets that predate the columnar
//!   format (or were written under an older schema version).
//!
//! Correctness leans on two engine invariants: primary keys are unique
//! across the whole table (insert-time uniqueness, §3.4.4), so no
//! dedup between tablets is needed; and zone maps are never stored over
//! NaN-containing float slices, so a zone proof is a proof about every
//! row. Units arrive in no particular global order — aggregates do not
//! care — and the scan honors neither `descending` nor `limit`.

use super::Table;
use crate::block::Block;
use crate::cursor::{DiskCursor, RowSource};
use crate::error::{Error, Result};
use crate::keyenc::KeyRange;
use crate::query::Query;
use crate::row::Row;
use crate::stats::TableStats;
use crate::value::Value;
use std::cmp::Ordering;
use std::ops::Bound;
use std::sync::Arc;

/// Comparison operator of a pushed-down predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Compares two values for predicate evaluation: the integer family
/// (`I32`/`I64`/`Timestamp`) compares across widths, floats by
/// `partial_cmp` (`None` against NaN), strings and blobs bytewise.
/// `None` means incomparable — such pairs satisfy no operator.
pub fn cmp_values(a: &Value, b: &Value) -> Option<Ordering> {
    let int = |v: &Value| match v {
        Value::I32(x) => Some(*x as i64),
        Value::I64(x) => Some(*x),
        Value::Timestamp(x) => Some(*x),
        _ => None,
    };
    if let (Some(x), Some(y)) = (int(a), int(b)) {
        return Some(x.cmp(&y));
    }
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => x.partial_cmp(y),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Blob(x), Value::Blob(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// A per-row filter `row[col] op value`, pushed below the scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPredicate {
    /// Column index in the (newest) schema.
    pub col: usize,
    /// Operator.
    pub op: PredOp,
    /// Comparison value.
    pub value: Value,
}

/// How a predicate relates to a block, judged from its zone map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ZoneVerdict {
    /// Every row in the block satisfies the predicate.
    AllMatch,
    /// No row in the block satisfies the predicate.
    NoneMatch,
    /// The zone cannot decide; rows must be checked individually.
    Uncertain,
}

impl ColumnPredicate {
    /// Evaluates the predicate against one value. Incomparable pairs
    /// (including NaN on either side) match no operator, mirroring the
    /// SQL layer's residual-filter semantics.
    pub fn matches(&self, v: &Value) -> bool {
        match (self.op, cmp_values(v, &self.value)) {
            (PredOp::Eq, Some(Ordering::Equal)) => true,
            (PredOp::Ne, Some(o)) => o != Ordering::Equal,
            (PredOp::Lt, Some(Ordering::Less)) => true,
            (PredOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (PredOp::Gt, Some(Ordering::Greater)) => true,
            (PredOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }

    /// Judges the predicate against a block's `(min, max)` zone.
    /// `None` zones are always [`ZoneVerdict::Uncertain`] — absence of
    /// a zone (strings, NaN-containing floats, pre-v3 tablets) proves
    /// nothing.
    fn judge(&self, zone: Option<&(Value, Value)>) -> ZoneVerdict {
        let Some((lo, hi)) = zone else {
            return ZoneVerdict::Uncertain;
        };
        let (Some(v_lo), Some(v_hi)) = (cmp_values(&self.value, lo), cmp_values(&self.value, hi))
        else {
            return ZoneVerdict::Uncertain;
        };
        use Ordering::*;
        use ZoneVerdict::*;
        match self.op {
            PredOp::Eq => match (v_lo, v_hi) {
                (Less, _) | (_, Greater) => NoneMatch,
                (Equal, Equal) => AllMatch,
                _ => Uncertain,
            },
            PredOp::Ne => match (v_lo, v_hi) {
                (Less, _) | (_, Greater) => AllMatch,
                (Equal, Equal) => NoneMatch,
                _ => Uncertain,
            },
            // row < v: certain when max < v, impossible when min >= v.
            PredOp::Lt => match (v_lo, v_hi) {
                (_, Greater) => AllMatch,
                (Less | Equal, _) => NoneMatch,
                _ => Uncertain,
            },
            PredOp::Le => match (v_lo, v_hi) {
                (_, Greater | Equal) => AllMatch,
                (Less, _) => NoneMatch,
                _ => Uncertain,
            },
            PredOp::Gt => match (v_lo, v_hi) {
                (Less, _) => AllMatch,
                (_, Greater | Equal) => NoneMatch,
                _ => Uncertain,
            },
            PredOp::Ge => match (v_lo, v_hi) {
                (Less | Equal, _) => AllMatch,
                (_, Greater) => NoneMatch,
                _ => Uncertain,
            },
        }
    }
}

/// What [`Table::pushdown_scan`] should scan and how.
#[derive(Debug, Clone)]
pub struct PushdownRequest {
    /// The bounding box (key bounds × time bounds). `descending` and
    /// `limit` are ignored — aggregation consumes everything.
    pub query: Query,
    /// Conjunctive per-row filters below the box.
    pub predicates: Vec<ColumnPredicate>,
    /// `Some(cols)` allows [`ScanUnit::Stats`] answers, provided each
    /// listed column has a zone map in the block's index entry (the
    /// caller lists the columns its `MIN`/`MAX` aggregates read;
    /// `COUNT(*)` alone is an empty list). `None` forbids stats-only
    /// answers (needed for `SUM`/`AVG`, which must see the values).
    pub stats_cols: Option<Vec<usize>>,
}

/// One unit of aggregate input, in increasing order of cost.
#[derive(Debug)]
pub enum ScanUnit {
    /// Footer statistics for one block entirely inside the bounding box
    /// with every predicate proven true: `rows` rows whose per-column
    /// `(min, max)` zones are `zones`. The block's bytes were not read.
    Stats {
        /// Row count of the block.
        rows: u64,
        /// Per-schema-column zone maps of the block.
        zones: Vec<Option<(Value, Value)>>,
    },
    /// A decoded columnar block entirely inside the bounding box.
    /// Rows at indices failing a predicate in `uncertain` (indices into
    /// [`PushdownRequest::predicates`]) must be skipped by the caller;
    /// every other predicate is already proven for every row.
    Block {
        /// The decoded block; column slices via [`Block::column`].
        block: Arc<Block>,
        /// Indices of predicates the zones could not decide.
        uncertain: Vec<usize>,
    },
    /// Fully filtered rows (key bounds, time bounds, and all predicates
    /// applied), from boundary blocks, memtablets, or row-format
    /// tablets.
    Rows(Vec<Row>),
}

/// Whether the block delimited by `(prev_last, last]` lies entirely
/// inside `range`.
fn span_contained(prev_last: &[u8], last: &[u8], range: &KeyRange) -> bool {
    let start_ok = match &range.start {
        Bound::Unbounded => true,
        // All keys in the block are > prev_last, so prev_last >= s
        // proves every key > s (which satisfies both bound kinds).
        Bound::Included(s) | Bound::Excluded(s) => prev_last >= s.as_slice(),
    };
    let end_ok = match &range.end {
        Bound::Unbounded => true,
        Bound::Included(e) => last <= e.as_slice(),
        Bound::Excluded(e) => last < e.as_slice(),
    };
    start_ok && end_ok
}

/// Whether the block delimited by `(prev_last, last]` could contain any
/// key of `range`.
fn span_intersects(prev_last: &[u8], last: &[u8], range: &KeyRange) -> bool {
    let above_start = match &range.start {
        Bound::Unbounded => true,
        Bound::Included(s) => last >= s.as_slice(),
        Bound::Excluded(s) => last > s.as_slice(),
    };
    let below_end = match &range.end {
        Bound::Unbounded => true,
        // All keys are > prev_last: once prev_last >= e, no key can be
        // <= e (let alone < e).
        Bound::Included(e) | Bound::Excluded(e) => prev_last < e.as_slice(),
    };
    above_start && below_end
}

impl Table {
    /// Streams aggregate-grade scan units for `req`'s bounding box to
    /// `emit`, cheapest unit first per block: footer stats where zones
    /// prove everything, decoded column slices where only the box is
    /// proven, materialized rows at the boundaries. Runs from one
    /// lock-free read view, like [`Table::query`].
    pub fn pushdown_scan(
        &self,
        req: &PushdownRequest,
        emit: &mut dyn FnMut(ScanUnit) -> Result<()>,
    ) -> Result<()> {
        TableStats::add(&self.stats.pushdown_scans, 1);
        let now = self.clock.now_micros();
        let (snap, cutoff_seq) = self.read_view();
        if snap.dropped {
            return Err(Error::NoSuchTable(self.name().to_string()));
        }
        let schema = snap.schema.clone();
        let range = req.query.key_range(&schema)?;
        let (ts_lo, ts_hi) = req.query.ts_interval();
        let ts_lo = match snap.ttl {
            Some(ttl) => ts_lo.max(now.saturating_sub(ttl)),
            None => ts_lo,
        };
        if range.is_certainly_empty() || ts_lo > ts_hi {
            return Ok(());
        }
        let mut materialized = 0u64;
        let mut pruned = 0u64;
        for h in &snap.disk {
            if h.meta.max_ts < ts_lo || h.meta.min_ts > ts_hi {
                continue;
            }
            let footer = h.reader.footer()?;
            let columnar = footer.format == crate::block::BlockFormat::Columnar
                && footer.schema.version() == schema.version();
            if !columnar {
                // Row-format or schema-lagging tablet: the row cursor
                // already handles decoding and version translation.
                let mut cur =
                    DiskCursor::new(h.reader.clone(), schema.clone(), range.clone(), false);
                let mut batch = Vec::new();
                while let Some((_, row)) = cur.next_row()? {
                    materialized += 1;
                    let ts = row.ts(&schema)?;
                    if ts < ts_lo || ts > ts_hi {
                        continue;
                    }
                    if !req.predicates.iter().all(|p| p.matches(&row.values[p.col])) {
                        continue;
                    }
                    batch.push(row);
                    if batch.len() >= 4096 {
                        emit(ScanUnit::Rows(std::mem::take(&mut batch)))?;
                    }
                }
                if !batch.is_empty() {
                    emit(ScanUnit::Rows(batch))?;
                }
                continue;
            }
            let ts_index = schema.ts_index();
            let mut prev_last: &[u8] = b"";
            for (bi, entry) in footer.blocks.iter().enumerate() {
                let prev = std::mem::replace(&mut prev_last, entry.last_key.as_slice());
                if !span_intersects(prev, &entry.last_key, &range) {
                    // Whole block outside the key bounds; once past the
                    // upper bound every later block is too.
                    match &range.end {
                        Bound::Included(e) | Bound::Excluded(e) if prev >= e.as_slice() => break,
                        _ => continue,
                    }
                }
                // Time bounds, judged from the timestamp column's zone.
                let ts_zone = entry.zones.get(ts_index).and_then(|z| z.as_ref());
                let ts_contained = match ts_zone {
                    Some((Value::Timestamp(lo), Value::Timestamp(hi))) => {
                        if *hi < ts_lo || *lo > ts_hi {
                            pruned += 1;
                            continue;
                        }
                        *lo >= ts_lo && *hi <= ts_hi
                    }
                    _ => false,
                };
                // Predicates, judged from their columns' zones.
                let mut uncertain = Vec::new();
                let mut impossible = false;
                for (pi, p) in req.predicates.iter().enumerate() {
                    match p.judge(entry.zones.get(p.col).and_then(|z| z.as_ref())) {
                        ZoneVerdict::AllMatch => {}
                        ZoneVerdict::NoneMatch => {
                            impossible = true;
                            break;
                        }
                        ZoneVerdict::Uncertain => uncertain.push(pi),
                    }
                }
                if impossible {
                    pruned += 1;
                    continue;
                }
                let contained = ts_contained && span_contained(prev, &entry.last_key, &range);
                if contained && uncertain.is_empty() {
                    if let Some(cols) = &req.stats_cols {
                        let zoned = cols
                            .iter()
                            .all(|&c| entry.zones.get(c).map(|z| z.is_some()).unwrap_or(false));
                        if zoned {
                            emit(ScanUnit::Stats {
                                rows: entry.rows as u64,
                                zones: entry.zones.clone(),
                            })?;
                            continue;
                        }
                    }
                }
                let block = h.reader.read_block(bi)?;
                if contained {
                    emit(ScanUnit::Block { block, uncertain })?;
                    continue;
                }
                // Boundary block: materialize and filter row by row.
                let mut rows = Vec::new();
                for ri in 0..block.len() {
                    materialized += 1;
                    if !range.contains(block.key(ri)?) {
                        continue;
                    }
                    let row = block.row(ri, &schema)?;
                    let ts = row.ts(&schema)?;
                    if ts < ts_lo || ts > ts_hi {
                        continue;
                    }
                    if !req.predicates.iter().all(|p| p.matches(&row.values[p.col])) {
                        continue;
                    }
                    rows.push(row);
                }
                if !rows.is_empty() {
                    emit(ScanUnit::Rows(rows))?;
                }
            }
        }
        for t in &snap.mem {
            if let Some(rows) = super::read::mem_rows(t, &range, ts_lo, ts_hi, cutoff_seq, &schema)?
            {
                let mut out = Vec::with_capacity(rows.len());
                for (_, row) in rows {
                    materialized += 1;
                    let ts = row.ts(&schema)?;
                    if ts < ts_lo || ts > ts_hi {
                        continue;
                    }
                    if !req.predicates.iter().all(|p| p.matches(&row.values[p.col])) {
                        continue;
                    }
                    out.push(row);
                }
                if !out.is_empty() {
                    emit(ScanUnit::Rows(out))?;
                }
            }
        }
        TableStats::add(&self.stats.blocks_pruned, pruned);
        TableStats::add(&self.stats.rows_materialized, materialized);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockFormat;
    use crate::db::Db;
    use crate::options::Options;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::ColumnType;
    use littletable_vfs::{Micros, SimClock, SimVfs, MICROS_PER_SEC};

    const SEC: Micros = MICROS_PER_SEC;
    const START: Micros = 1_700_000_000 * MICROS_PER_SEC;

    fn usage_schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("device", ColumnType::Str),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("bytes", ColumnType::I64),
                ColumnDef::new("load", ColumnType::F64),
            ],
            &["device", "ts"],
        )
        .unwrap()
    }

    /// A flushed table with `n` rows across several small columnar
    /// blocks: 4 devices, ascending timestamps, bytes = 10*i.
    fn flushed_table(n: usize, format: BlockFormat) -> (Db, Arc<Table>) {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        let opts = Options {
            block_size: 512,
            block_format: format,
            ..Options::small_for_tests()
        };
        let db = Db::open(Arc::new(vfs), Arc::new(clock), opts).unwrap();
        let t = db.create_table("usage", usage_schema(), None).unwrap();
        let chunk = n.div_ceil(4);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::Str(format!("dev-{}", i / chunk)),
                    Value::Timestamp(START + (i % chunk) as Micros * SEC),
                    Value::I64(10 * i as i64),
                    Value::F64(i as f64 / 2.0),
                ]
            })
            .collect();
        t.insert(rows).unwrap();
        t.flush_all().unwrap();
        assert!(t.num_disk_tablets() >= 1);
        (db, t)
    }

    fn scan(t: &Table, req: &PushdownRequest) -> Vec<ScanUnit> {
        let mut units = Vec::new();
        t.pushdown_scan(req, &mut |u| {
            units.push(u);
            Ok(())
        })
        .unwrap();
        units
    }

    /// Row count implied by a unit list (stats rows + block rows with
    /// uncertain predicates re-checked + materialized rows).
    fn unit_rows(units: &[ScanUnit], req: &PushdownRequest) -> u64 {
        let mut n = 0u64;
        for u in units {
            match u {
                ScanUnit::Stats { rows, .. } => n += rows,
                ScanUnit::Block { block, uncertain } => {
                    for ri in 0..block.len() {
                        let ok = uncertain.iter().all(|&pi| {
                            let p = &req.predicates[pi];
                            let col = block.column(p.col).unwrap();
                            p.matches(&col.value(ri))
                        });
                        if ok {
                            n += 1;
                        }
                    }
                }
                ScanUnit::Rows(rows) => n += rows.len() as u64,
            }
        }
        n
    }

    fn req_all() -> PushdownRequest {
        PushdownRequest {
            query: Query::all(),
            predicates: Vec::new(),
            stats_cols: None,
        }
    }

    #[test]
    fn cmp_values_families() {
        use Ordering::*;
        assert_eq!(cmp_values(&Value::I32(3), &Value::I64(4)), Some(Less));
        assert_eq!(
            cmp_values(&Value::Timestamp(9), &Value::I32(9)),
            Some(Equal)
        );
        assert_eq!(
            cmp_values(&Value::F64(1.5), &Value::F64(1.0)),
            Some(Greater)
        );
        assert_eq!(cmp_values(&Value::F64(f64::NAN), &Value::F64(1.0)), None);
        assert_eq!(cmp_values(&Value::F64(1.0), &Value::I64(1)), None);
        assert_eq!(
            cmp_values(&Value::Str("a".into()), &Value::Str("b".into())),
            Some(Less)
        );
    }

    #[test]
    fn predicate_matches_mirrors_sql_semantics() {
        let p = |op| ColumnPredicate {
            col: 2,
            op,
            value: Value::I64(50),
        };
        assert!(p(PredOp::Eq).matches(&Value::I64(50)));
        assert!(p(PredOp::Ne).matches(&Value::I64(49)));
        assert!(p(PredOp::Lt).matches(&Value::I32(49)));
        assert!(!p(PredOp::Ge).matches(&Value::I64(49)));
        // Incomparable (wrong family, NaN) matches nothing — not even Ne.
        assert!(!p(PredOp::Ne).matches(&Value::Str("50".into())));
        let nan = ColumnPredicate {
            col: 3,
            op: PredOp::Ne,
            value: Value::F64(f64::NAN),
        };
        assert!(!nan.matches(&Value::F64(1.0)));
    }

    #[test]
    fn zone_judgement_table() {
        let zone = (Value::I64(10), Value::I64(20));
        let judge = |op, v: i64| {
            ColumnPredicate {
                col: 0,
                op,
                value: Value::I64(v),
            }
            .judge(Some(&zone))
        };
        use ZoneVerdict::*;
        assert_eq!(judge(PredOp::Eq, 5), NoneMatch);
        assert_eq!(judge(PredOp::Eq, 15), Uncertain);
        assert_eq!(judge(PredOp::Eq, 25), NoneMatch);
        let point = (Value::I64(7), Value::I64(7));
        let p = ColumnPredicate {
            col: 0,
            op: PredOp::Eq,
            value: Value::I64(7),
        };
        assert_eq!(p.judge(Some(&point)), AllMatch);
        assert_eq!(judge(PredOp::Ne, 5), AllMatch);
        assert_eq!(judge(PredOp::Ne, 15), Uncertain);
        assert_eq!(judge(PredOp::Lt, 25), AllMatch);
        assert_eq!(judge(PredOp::Lt, 10), NoneMatch);
        assert_eq!(judge(PredOp::Lt, 15), Uncertain);
        assert_eq!(judge(PredOp::Le, 20), AllMatch);
        assert_eq!(judge(PredOp::Le, 9), NoneMatch);
        assert_eq!(judge(PredOp::Gt, 5), AllMatch);
        assert_eq!(judge(PredOp::Gt, 20), NoneMatch);
        assert_eq!(judge(PredOp::Ge, 10), AllMatch);
        assert_eq!(judge(PredOp::Ge, 21), NoneMatch);
        // Absent zone proves nothing.
        let p = ColumnPredicate {
            col: 0,
            op: PredOp::Lt,
            value: Value::I64(0),
        };
        assert_eq!(p.judge(None), Uncertain);
    }

    #[test]
    fn stats_only_full_scan_reads_no_blocks() {
        let (_db, t) = flushed_table(400, BlockFormat::Columnar);
        let req = PushdownRequest {
            stats_cols: Some(vec![2]),
            ..req_all()
        };
        let units = scan(&t, &req);
        assert!(units.len() > 1, "expected several blocks");
        assert!(units.iter().all(|u| matches!(u, ScanUnit::Stats { .. })));
        assert_eq!(unit_rows(&units, &req), 400);
        // MIN/MAX over the zones match the true extremes.
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        for u in &units {
            if let ScanUnit::Stats { zones, .. } = u {
                let Some((Value::I64(a), Value::I64(b))) = &zones[2] else {
                    panic!("bytes column must be zoned");
                };
                lo = lo.min(*a);
                hi = hi.max(*b);
            }
        }
        assert_eq!((lo, hi), (0, 3990));
        let s = t.stats().snapshot();
        assert_eq!(s.rows_materialized, 0, "stats path must not decode rows");
        assert_eq!(s.pushdown_scans, 1);
    }

    #[test]
    fn block_units_cover_sum_exactly() {
        let (_db, t) = flushed_table(400, BlockFormat::Columnar);
        let req = req_all(); // stats_cols: None → SUM needs values
        let units = scan(&t, &req);
        let mut sum = 0i64;
        let mut saw_block = false;
        for u in &units {
            match u {
                ScanUnit::Block { block, uncertain } => {
                    saw_block = true;
                    assert!(uncertain.is_empty());
                    // Sum straight off the column slice.
                    let col = block.column(2).unwrap();
                    for ri in 0..col.len() {
                        match col.value(ri) {
                            Value::I64(v) => sum += v,
                            v => panic!("unexpected {v:?}"),
                        }
                    }
                }
                ScanUnit::Rows(rows) => {
                    for r in rows {
                        match &r.values[2] {
                            Value::I64(v) => sum += v,
                            v => panic!("unexpected {v:?}"),
                        }
                    }
                }
                ScanUnit::Stats { .. } => panic!("stats forbidden when stats_cols is None"),
            }
        }
        assert!(
            saw_block,
            "full scan over flushed data should yield Block units"
        );
        assert_eq!(sum, (0..400).map(|i| 10 * i as i64).sum::<i64>());
    }

    #[test]
    fn key_boundary_blocks_materialize_rows() {
        let (_db, t) = flushed_table(400, BlockFormat::Columnar);
        // Prefix query for one device: blocks fully inside the prefix
        // may come back as Block units; the edges come back as Rows.
        let req = PushdownRequest {
            query: Query::all().with_prefix(vec![Value::Str("dev-1".into())]),
            ..req_all()
        };
        let units = scan(&t, &req);
        assert_eq!(unit_rows(&units, &req), 100);
        for u in &units {
            if let ScanUnit::Rows(rows) = u {
                for r in rows {
                    assert_eq!(r.values[0], Value::Str("dev-1".into()));
                }
            }
        }
    }

    #[test]
    fn ts_bounds_prune_and_bound_blocks() {
        let (_db, t) = flushed_table(400, BlockFormat::Columnar);
        // Each device spans START..START+99s; restrict to a half-open
        // 10s window [20s, 30s) → 10 timestamps per device.
        let q = Query::all().with_ts_range(START + 20 * SEC, START + 30 * SEC);
        let req = PushdownRequest {
            query: q,
            ..req_all()
        };
        let units = scan(&t, &req);
        assert_eq!(unit_rows(&units, &req), 40);
        for u in &units {
            if let ScanUnit::Rows(rows) = u {
                for r in rows {
                    let Value::Timestamp(ts) = r.values[1] else {
                        panic!()
                    };
                    assert!((START + 20 * SEC..START + 30 * SEC).contains(&ts));
                }
            }
        }
        let s = t.stats().snapshot();
        assert!(s.blocks_pruned > 0, "far-away blocks should be zone-pruned");
    }

    #[test]
    fn predicates_prune_and_recheck() {
        let (_db, t) = flushed_table(400, BlockFormat::Columnar);
        // bytes >= 3000 → rows 300..400 qualify; early blocks prune.
        let req = PushdownRequest {
            predicates: vec![ColumnPredicate {
                col: 2,
                op: PredOp::Ge,
                value: Value::I64(3000),
            }],
            ..req_all()
        };
        let units = scan(&t, &req);
        assert_eq!(unit_rows(&units, &req), 100);
        let s = t.stats().snapshot();
        assert!(s.blocks_pruned > 0, "low-bytes blocks should prune");
        // An impossible predicate prunes everything without I/O.
        let req = PushdownRequest {
            predicates: vec![ColumnPredicate {
                col: 2,
                op: PredOp::Lt,
                value: Value::I64(0),
            }],
            ..req_all()
        };
        assert_eq!(unit_rows(&scan(&t, &req), &req), 0);
    }

    #[test]
    fn memtable_rows_are_included() {
        let (_db, t) = flushed_table(100, BlockFormat::Columnar);
        // 50 more rows, unflushed, timestamps past the flushed range.
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| {
                vec![
                    Value::Str("dev-9".into()),
                    Value::Timestamp(START + (500 + i) * SEC),
                    Value::I64(7),
                    Value::F64(0.0),
                ]
            })
            .collect();
        t.insert(rows).unwrap();
        let req = req_all();
        assert_eq!(unit_rows(&scan(&t, &req), &req), 150);
    }

    #[test]
    fn row_format_tablets_fall_back_to_rows() {
        let (_db, t) = flushed_table(200, BlockFormat::Row);
        let req = PushdownRequest {
            stats_cols: Some(vec![2]),
            predicates: vec![ColumnPredicate {
                col: 2,
                op: PredOp::Ge,
                value: Value::I64(1000),
            }],
            ..req_all()
        };
        let units = scan(&t, &req);
        assert!(units.iter().all(|u| matches!(u, ScanUnit::Rows(_))));
        assert_eq!(unit_rows(&units, &req), 100);
    }

    #[test]
    fn matches_row_path_on_random_boxes() {
        let (_db, t) = flushed_table(300, BlockFormat::Columnar);
        let cases = [
            Query::all(),
            Query::all().with_prefix(vec![Value::Str("dev-2".into())]),
            Query::all().with_ts_range(START + 10 * SEC, START + 40 * SEC),
            Query::all()
                .with_key_min(vec![Value::Str("dev-1".into())], true)
                .with_ts_range(START, START + 33 * SEC),
        ];
        for q in cases {
            let expect = t.query_all(&q).unwrap().len() as u64;
            let req = PushdownRequest {
                query: q,
                ..req_all()
            };
            assert_eq!(unit_rows(&scan(&t, &req), &req), expect);
        }
    }
}
