//! Tests for the paper's proposed extensions implemented here:
//! `flush_before` (§4.1.2), `bulk_delete` (§7), schema evolution
//! interacting with merges, and the §6 cold tier.

mod extension_tests {
    use crate::db::Db;
    use crate::options::Options;
    use crate::query::Query;
    use crate::schema::{ColumnDef, Schema};
    use crate::table::Table;
    use crate::value::{ColumnType, Value};
    use littletable_vfs::{Clock, Micros, SimClock, SimVfs, Vfs, MICROS_PER_SEC};
    use std::sync::Arc;

    const START: Micros = 1_700_000_000_000_000;

    fn usage_schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("customer", ColumnType::I64),
                ColumnDef::new("device", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("v", ColumnType::I64),
            ],
            &["customer", "device", "ts"],
        )
        .unwrap()
    }

    fn setup() -> (Db, SimVfs, SimClock, Arc<Table>) {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        let mut opts = Options::small_for_tests();
        opts.flush_size = 8 << 10;
        let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
        let t = db.create_table("u", usage_schema(), None).unwrap();
        (db, vfs, clock, t)
    }

    fn row(c: i64, d: i64, ts: Micros) -> Vec<Value> {
        vec![
            Value::I64(c),
            Value::I64(d),
            Value::Timestamp(ts),
            Value::I64(c * 100 + d),
        ]
    }

    #[test]
    fn flush_before_makes_old_rows_durable() {
        let (_db, vfs, clock, t) = setup();
        let mut opts = Options::small_for_tests();
        opts.flush_size = 8 << 10;
        // Old rows and new rows in separate periods; only the old must
        // flush.
        let old_ts = START - 30 * 24 * 3600 * MICROS_PER_SEC;
        t.insert(vec![row(1, 1, old_ts)]).unwrap();
        t.insert(vec![row(1, 2, START)]).unwrap();
        t.flush_before(old_ts + 1).unwrap();
        // Crash: the old row survives (and, by prefix durability, so does
        // anything inserted before it — here nothing).
        vfs.crash();
        let db2 = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
        let rows = db2.table("u").unwrap().query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[2], Value::Timestamp(old_ts));
    }

    #[test]
    fn flush_before_respects_dependency_closure() {
        let (_db, vfs, clock, t) = setup();
        // Interleave inserts across two periods so a dependency cycle
        // forms; flushing "before" must drag the sibling along, keeping
        // the prefix guarantee.
        let old_ts = START - 30 * 24 * 3600 * MICROS_PER_SEC;
        for i in 0..5 {
            t.insert(vec![row(1, i, START + i)]).unwrap();
            t.insert(vec![row(2, i, old_ts + i)]).unwrap();
        }
        t.flush_before(old_ts + 10).unwrap();
        vfs.crash();
        let db2 = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        // All ten rows survive: the cycle commits atomically.
        let rows = db2.table("u").unwrap().query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn bulk_delete_removes_exactly_the_prefix() {
        let (_db, _vfs, clock, t) = setup();
        for c in 1..=3i64 {
            for d in 1..=4i64 {
                for k in 0..50 {
                    t.insert(vec![row(c, d, START + k)]).unwrap();
                }
            }
        }
        t.flush_all().unwrap();
        while t.run_merge_once(clock.now_micros()).unwrap() {}
        // Customer 2 exercises its right to be forgotten.
        let deleted = t.bulk_delete(&[Value::I64(2)]).unwrap();
        assert_eq!(deleted, 200);
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 400);
        assert!(rows.iter().all(|r| r.values[0] != Value::I64(2)));
        // Narrower prefix: one device of customer 1.
        let deleted = t.bulk_delete(&[Value::I64(1), Value::I64(3)]).unwrap();
        assert_eq!(deleted, 50);
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 350);
        // Deleting again is a no-op.
        assert_eq!(t.bulk_delete(&[Value::I64(2)]).unwrap(), 0);
    }

    #[test]
    fn bulk_delete_covers_unflushed_rows_and_survives_restart() {
        let (_db, vfs, clock, t) = setup();
        for k in 0..20 {
            t.insert(vec![row(7, 1, START + k)]).unwrap();
            t.insert(vec![row(8, 1, START + k)]).unwrap();
        }
        // No flush yet: bulk_delete must flush and still remove them.
        let deleted = t.bulk_delete(&[Value::I64(7)]).unwrap();
        assert_eq!(deleted, 20);
        vfs.crash();
        let db2 = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let rows = db2.table("u").unwrap().query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 20);
        assert!(rows.iter().all(|r| r.values[0] == Value::I64(8)));
    }

    #[test]
    fn bulk_delete_drops_empty_tablets_and_reclaims_files() {
        let (_db, vfs, _clock, t) = setup();
        // One tablet holding only customer 9.
        for k in 0..100 {
            t.insert(vec![row(9, 1, START + k)]).unwrap();
        }
        t.flush_all().unwrap();
        let files_before = vfs.list_dir("u").unwrap().len();
        let deleted = t.bulk_delete(&[Value::I64(9)]).unwrap();
        assert_eq!(deleted, 100);
        assert_eq!(t.num_disk_tablets(), 0);
        assert!(vfs.list_dir("u").unwrap().len() < files_before);
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 0);
        // New inserts for the deleted customer work fine.
        t.insert(vec![row(9, 1, START + 1000)]).unwrap();
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 1);
    }

    #[test]
    fn bulk_delete_validates_prefix() {
        let (_db, _vfs, _clock, t) = setup();
        assert!(t.bulk_delete(&[]).is_err());
        assert!(t
            .bulk_delete(&[Value::I64(1), Value::I64(1), Value::Timestamp(0)])
            .is_err());
        assert!(t.bulk_delete(&[Value::Str("wrong type".into())]).is_err());
    }
}

mod evolution_merge_tests {
    //! Schema evolution interacting with merges and bulk deletes: merged
    //! output is written under the newest schema, translating old rows.

    use crate::db::Db;
    use crate::options::Options;
    use crate::query::Query;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{ColumnType, Value};
    use littletable_vfs::{Clock, Micros, SimClock, SimVfs};
    use std::sync::Arc;

    const START: Micros = 1_700_000_000_000_000;

    #[test]
    fn merge_translates_rows_to_newest_schema() {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        let db = Db::open(
            Arc::new(vfs),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let schema = Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("c", ColumnType::I32),
            ],
            &["n", "ts"],
        )
        .unwrap();
        let t = db.create_table("t", schema, None).unwrap();
        // Two tablets under schema v1.
        for chunk in 0..2i64 {
            for i in 0..100 {
                let k = chunk * 100 + i;
                t.insert(vec![vec![
                    Value::I64(k),
                    Value::Timestamp(START + k),
                    Value::I32(k as i32),
                ]])
                .unwrap();
            }
            t.flush_all().unwrap();
        }
        // Evolve twice: widen + append.
        t.widen_column("c").unwrap();
        t.add_column(ColumnDef::with_default(
            "label",
            ColumnType::Str,
            Value::Str("old".into()),
        ))
        .unwrap();
        // One more tablet under schema v3.
        t.insert(vec![vec![
            Value::I64(200),
            Value::Timestamp(START + 200),
            Value::I64(1 << 40),
            Value::Str("new".into()),
        ]])
        .unwrap();
        t.flush_all().unwrap();
        assert!(t.num_disk_tablets() >= 3);
        while t.run_merge_once(clock.now_micros()).unwrap() {}
        // After merging everything is readable under v3 with translated
        // values, and the merged tablet's recorded schema is v3.
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 201);
        assert_eq!(rows[0].values[2], Value::I64(0));
        assert_eq!(rows[0].values[3], Value::Str("old".into()));
        assert_eq!(rows[200].values[2], Value::I64(1 << 40));
        assert_eq!(rows[200].values[3], Value::Str("new".into()));
        let (snap, _) = t.read_view();
        assert!(snap.disk.iter().any(|h| h.meta.schema_version == 3));
    }

    #[test]
    fn bulk_delete_after_evolution_rewrites_under_newest_schema() {
        let clock = SimClock::new(START);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let schema = Schema::new(
            vec![
                ColumnDef::new("cust", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["cust", "ts"],
        )
        .unwrap();
        let t = db.create_table("t", schema, None).unwrap();
        for c in 1..=2i64 {
            for i in 0..50 {
                t.insert(vec![vec![
                    Value::I64(c),
                    Value::Timestamp(START + c * 1000 + i),
                ]])
                .unwrap();
            }
        }
        t.flush_all().unwrap();
        t.add_column(ColumnDef::new("extra", ColumnType::I64))
            .unwrap();
        let deleted = t.bulk_delete(&[Value::I64(1)]).unwrap();
        assert_eq!(deleted, 50);
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 50);
        // Survivors were rewritten with the new column's default.
        assert!(rows.iter().all(|r| r.values.len() == 3
            && r.values[0] == Value::I64(2)
            && r.values[2] == Value::I64(0)));
    }
}

mod cold_store_tests {
    //! The §6 cold-tier extension: old tablets move to a write-once
    //! backing store and keep serving queries from there.

    use crate::db::Db;
    use crate::options::Options;
    use crate::query::Query;
    use crate::schema::{ColumnDef, Schema};
    use crate::table::Table;
    use crate::value::{ColumnType, Value};
    use littletable_vfs::{Clock, Micros, SimClock, SimVfs, Vfs};
    use std::sync::Arc;

    const START: Micros = 1_700_000_000_000_000;
    const DAY: Micros = 86_400 * 1_000_000;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    fn setup() -> (Db, SimVfs, SimVfs, SimClock) {
        let clock = SimClock::new(START);
        let hot = SimVfs::instant();
        let cold = SimVfs::instant();
        let db = Db::open_with_cold(
            Arc::new(hot.clone()),
            Some(Arc::new(cold.clone())),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        (db, hot, cold, clock)
    }

    fn fill(t: &Table, base: Micros, n: i64) {
        for i in 0..n {
            t.insert(vec![vec![
                Value::I64(base / 1000 + i),
                Value::Timestamp(base + i),
            ]])
            .unwrap();
        }
        t.flush_all().unwrap();
    }

    #[test]
    fn old_tablets_migrate_and_keep_serving() {
        let (db, hot, cold, clock) = setup();
        let t = db.create_table("t", schema(), None).unwrap();
        fill(&t, START - 30 * DAY, 200); // old data
        fill(&t, START, 200); // recent data
        let migrated = t.migrate_to_cold(START - DAY).unwrap();
        assert_eq!(migrated, 1);
        assert!(t.cold_bytes() > 0);
        // The cold file exists in the cold store, not the hot one.
        let cold_files = cold.list_dir("t").unwrap();
        assert_eq!(cold_files.iter().filter(|f| f.ends_with(".lt")).count(), 1);
        let hot_files = hot.list_dir("t").unwrap();
        assert_eq!(hot_files.iter().filter(|f| f.ends_with(".lt")).count(), 1);
        // Queries span both tiers transparently.
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 400);
        // Migration is idempotent.
        assert_eq!(t.migrate_to_cold(START - DAY).unwrap(), 0);
        // Cold tablets never merge.
        assert!(!t.run_merge_once(clock.now_micros()).unwrap());
    }

    #[test]
    fn cold_tablets_survive_restart() {
        let (db, hot, cold, clock) = setup();
        let t = db.create_table("t", schema(), None).unwrap();
        fill(&t, START - 30 * DAY, 100);
        t.migrate_to_cold(START).unwrap();
        drop(db);
        let db2 = Db::open_with_cold(
            Arc::new(hot.clone()),
            Some(Arc::new(cold.clone())),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let t2 = db2.table("t").unwrap();
        assert_eq!(t2.query_all(&Query::all()).unwrap().len(), 100);
        assert!(t2.cold_bytes() > 0);
        // Opening without a cold store fails loudly rather than serving
        // partial data.
        let res = Db::open(
            Arc::new(hot.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn ttl_reaps_cold_tablets_from_the_cold_store() {
        let (db, _hot, cold, clock) = setup();
        let ttl = 10 * DAY;
        let t = db.create_table("t", schema(), Some(ttl)).unwrap();
        fill(&t, START - 30 * DAY, 50);
        t.migrate_to_cold(START).unwrap();
        clock.set(START + ttl);
        let reaped = t.ttl_reap(clock.now_micros()).unwrap();
        assert_eq!(reaped, 1);
        let cold_files = cold.list_dir("t").unwrap();
        assert_eq!(cold_files.iter().filter(|f| f.ends_with(".lt")).count(), 0);
    }

    #[test]
    fn migrate_without_cold_store_is_an_error() {
        let clock = SimClock::new(START);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let t = db.create_table("t", schema(), None).unwrap();
        assert!(t.migrate_to_cold(START).is_err());
    }

    #[test]
    fn drop_table_cleans_both_tiers() {
        let (db, hot, cold, _clock) = setup();
        let t = db.create_table("t", schema(), None).unwrap();
        fill(&t, START - 30 * DAY, 50);
        t.migrate_to_cold(START).unwrap();
        db.drop_table("t").unwrap();
        assert!(hot
            .list_dir("t")
            .unwrap_or_default()
            .iter()
            .all(|f| !f.ends_with(".lt")));
        assert!(cold
            .list_dir("t")
            .unwrap_or_default()
            .iter()
            .all(|f| !f.ends_with(".lt")));
    }
}

mod mixed_format_tests {
    //! Row-format (footer v2) and columnar (footer v3) tablets
    //! coexisting in one table: queries span both transparently, and a
    //! merge rewrites everything to the configured columnar format.

    use crate::block::BlockFormat;
    use crate::db::Db;
    use crate::descriptor::parse_tablet_file_name;
    use crate::options::Options;
    use crate::query::Query;
    use crate::schema::{ColumnDef, Schema};
    use crate::table::{PushdownRequest, ScanUnit, Table};
    use crate::tablet::TabletReader;
    use crate::value::{ColumnType, Value};
    use littletable_vfs::{Clock, Micros, SimClock, SimVfs, Vfs, MICROS_PER_SEC};
    use std::sync::Arc;

    const START: Micros = 1_700_000_000_000_000;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("host", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("v", ColumnType::I64),
            ],
            &["host", "ts"],
        )
        .unwrap()
    }

    fn opts(format: BlockFormat) -> Options {
        Options {
            block_format: format,
            ..Options::small_for_tests()
        }
    }

    /// Footer formats of every live tablet file in the table's dir.
    fn disk_formats(vfs: &SimVfs, t: &Table) -> Vec<BlockFormat> {
        let vfs: Arc<dyn Vfs> = Arc::new(vfs.clone());
        let mut out = Vec::new();
        for entry in vfs.list_dir(t.dir()).unwrap() {
            if parse_tablet_file_name(&entry).is_none() {
                continue;
            }
            let path = littletable_vfs::join(t.dir(), &entry);
            let r = TabletReader::with_cache(vfs.clone(), path, None);
            out.push(r.footer().unwrap().format);
        }
        out
    }

    fn insert_batch(t: &Table, hosts: std::ops::Range<i64>, n: i64) {
        for h in hosts {
            let rows: Vec<Vec<Value>> = (0..n)
                .map(|k| {
                    vec![
                        Value::I64(h),
                        Value::Timestamp(START + k * MICROS_PER_SEC),
                        Value::I64(h * 1000 + k),
                    ]
                })
                .collect();
            t.insert(rows).unwrap();
        }
    }

    #[test]
    fn merge_rewrites_mixed_versions_to_columnar() {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();

        // Era 1: a row-format deployment writes a v2 tablet.
        let db = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            opts(BlockFormat::Row),
        )
        .unwrap();
        let t = db.create_table("m", schema(), None).unwrap();
        insert_batch(&t, 0..4, 50);
        t.flush_all().unwrap();
        assert_eq!(disk_formats(&vfs, &t), vec![BlockFormat::Row]);
        drop(t);
        drop(db);

        // Era 2: the upgraded deployment writes columnar and reads both.
        let db = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            opts(BlockFormat::Columnar),
        )
        .unwrap();
        let t = db.table("m").unwrap();
        // Columnar is much denser on disk, and the merge policy only
        // merges an adjacent pair when the older tablet is at most twice
        // the newer one's size — so give the columnar era more rows.
        insert_batch(&t, 4..16, 50);
        t.flush_all().unwrap();
        let formats = disk_formats(&vfs, &t);
        assert!(formats.contains(&BlockFormat::Row));
        assert!(formats.contains(&BlockFormat::Columnar));

        // Reads span both formats before any merge.
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 800);
        let mut units = 0;
        let mut count = 0u64;
        t.pushdown_scan(
            &PushdownRequest {
                query: Query::all(),
                predicates: Vec::new(),
                stats_cols: Some(Vec::new()),
            },
            &mut |u| {
                units += 1;
                match u {
                    ScanUnit::Stats { rows, .. } => count += rows,
                    ScanUnit::Block { block, .. } => count += block.len() as u64,
                    ScanUnit::Rows(rows) => count += rows.len() as u64,
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(units > 1);
        assert_eq!(count, 800);

        // Merge: the mixed-version inputs produce columnar output.
        while t.run_merge_once(clock.now_micros()).unwrap() {}
        let formats = disk_formats(&vfs, &t);
        assert!(!formats.is_empty());
        assert!(
            formats.iter().all(|f| *f == BlockFormat::Columnar),
            "merge must rewrite to the configured format, got {formats:?}"
        );
        let rows = t.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 800);
        for (i, r) in rows.iter().enumerate() {
            let h = (i / 50) as i64;
            let k = (i % 50) as i64;
            assert_eq!(r.values[2], Value::I64(h * 1000 + k));
        }
    }

    #[test]
    fn row_format_deployment_reads_columnar_tablets() {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        // Columnar deployment writes v3 …
        let db = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            opts(BlockFormat::Columnar),
        )
        .unwrap();
        let t = db.create_table("m", schema(), None).unwrap();
        insert_batch(&t, 0..4, 25);
        t.flush_all().unwrap();
        drop(t);
        drop(db);
        // … and a rolled-back row-format deployment still reads it.
        let db = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            opts(BlockFormat::Row),
        )
        .unwrap();
        let t = db.table("m").unwrap();
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 100);
    }
}
