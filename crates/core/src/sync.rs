//! Shared lock-free publication primitives.
//!
//! [`SnapshotCell`] is an atomically swappable `Arc<T>` — the engine's
//! hand-rolled `arc-swap`. It started life behind the table read path
//! (PR 3's snapshot-isolated `query`/`latest`) and is now the one
//! primitive every copy-on-write publish point in the engine shares: the
//! per-table [`crate::table::Table`] tablet snapshot and the Db-wide
//! table catalog both publish immutable state through a cell, so their
//! readers are a single atomic load away from a consistent view.
//!
//! Readers call [`SnapshotCell::load`] (an owning `Arc`) or
//! [`SnapshotCell::with`] (a borrowed view, cheaper — no refcount
//! traffic) and never touch a mutex, so they cannot contend with the
//! writer or with each other beyond the sharded pin cache lines. Each
//! access bumps its shard's packed state word on entry (incrementing
//! both the in-flight count in the low bits and a monotonic access
//! total in the high bits), reads the pointer, and decrements the
//! in-flight count when done — two atomic RMWs per access, with the
//! access statistic folded in for free.
//!
//! Writers call [`SnapshotCell::store`] — serialized externally by the
//! owner's writer mutex. A store swaps the pointer and *retires* the
//! superseded value onto a small pending list instead of blocking: the
//! value is released once every shard has been **observed empty** (zero
//! accesses in flight) at least once since the swap. The sweep runs at
//! each store (and at drop), so with no reader mid-access the old value
//! is released before `store` returns; with readers mid-access the
//! release is deferred rather than the writer descheduled — publish
//! latency never depends on reader scheduling.
//!
//! Correctness argument (pointer swap and shard accesses are `SeqCst`,
//! so they form one total order): an access that observes the old
//! pointer published its in-flight increment before its pointer load,
//! hence before the swap. If a post-swap sweep observes a shard's
//! in-flight count at zero, every access on that shard that began
//! before that observation has finished — in particular every access
//! that could have seen the old pointer — and any access that begins
//! after the observation loads the pointer after the swap, so it sees
//! the new value. Shard emptiness is an instant-in-time fact read from
//! a single atomic word, so later traffic cannot forge it (a naive
//! `exits >= enters-at-swap` comparison over separate counters can be
//! satisfied by *post-swap* accesses exiting on behalf of a stuck
//! pre-swap reader; the packed in-flight count cannot).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pin counters are sharded to keep concurrent readers from bouncing a
/// single cache line; each thread sticks to one shard (several threads
/// may share one — the protocol does not rely on shard exclusivity).
const PIN_SHARDS: usize = 16;

/// Low bits of a shard's packed state word: accesses currently in
/// flight. 16 bits bounds concurrent accesses per shard at 65 535 —
/// far beyond any real thread count — while leaving 48 bits for the
/// monotonic access total above it.
const IN_FLIGHT_BITS: u32 = 16;
const IN_FLIGHT_MASK: u64 = (1 << IN_FLIGHT_BITS) - 1;
/// Added on entry: bumps the in-flight count and the access total in
/// one RMW.
const ENTER: u64 = (1 << IN_FLIGHT_BITS) | 1;

/// One shard's packed access state: `state & IN_FLIGHT_MASK` accesses
/// are in flight, `state >> IN_FLIGHT_BITS` have ever begun.
#[repr(align(64))]
#[derive(Default)]
struct PinShard {
    state: AtomicU64,
}

/// A superseded value awaiting release: safe to drop once every shard
/// has been observed empty since the swap that retired it.
struct Retired<T> {
    /// Held solely so the sweep drops it at the safe point.
    #[allow(dead_code)]
    value: Arc<T>,
    /// Bit `s` set once shard `s` has been observed with no access in
    /// flight after the swap. All bits set ⇒ releasable.
    cleared: u16,
}

/// An `Arc<T>` cell readable without locks and swappable by one writer
/// at a time.
///
/// Publication protocol: build the complete new value off to the side
/// (copy-on-write from the current one if convenient), then `store` it
/// while holding whatever mutex serializes your writers. Readers never
/// observe a partially built value, and a reader's `Arc` keeps the
/// superseded value alive for as long as the reader needs it.
pub struct SnapshotCell<T> {
    ptr: AtomicPtr<T>,
    pins: [PinShard; PIN_SHARDS],
    /// Superseded values not yet proven unreachable. Swept at each
    /// store; normally empty (a store with no access in flight retires
    /// and releases in one motion).
    retired: Mutex<Vec<Retired<T>>>,
}

/// Decrements the in-flight count on drop so a panic inside a
/// [`SnapshotCell::with`] closure cannot leave its access permanently
/// in flight.
struct ExitGuard<'a>(&'a AtomicU64);

impl Drop for ExitGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> SnapshotCell<T> {
    /// Wraps `value` as the initial published snapshot.
    pub fn new(value: Arc<T>) -> Self {
        SnapshotCell {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            pins: Default::default(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The calling thread's pin shard, assigned round-robin on first use.
    fn pin_shard(&self) -> &PinShard {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % PIN_SHARDS;
        }
        &self.pins[SHARD.with(|s| *s)]
    }

    /// Returns the current snapshot. Lock-free: one entry increment, one
    /// pointer load, one refcount increment, one exit decrement.
    pub fn load(&self) -> Arc<T> {
        let shard = self.pin_shard();
        shard.state.fetch_add(ENTER, Ordering::SeqCst);
        let ptr = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and is still alive —
        // a retired value is released only once every shard has been
        // observed empty after the retiring swap, and this access's
        // in-flight increment was published before the pointer load
        // (see the module-level argument). The increment takes a strong
        // reference for the returned `Arc`; the cell keeps its own.
        let out = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        shard.state.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// Runs `f` against the current snapshot without materializing an
    /// `Arc` — the cheapest read: two shard RMWs and a pointer load, no
    /// refcount traffic. The access stays in flight for the duration of
    /// `f` (delaying release of a concurrently superseded value, never
    /// blocking anyone), so keep the closure short; clone out of it or
    /// use [`SnapshotCell::load`] to hold the snapshot.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let shard = self.pin_shard();
        shard.state.fetch_add(ENTER, Ordering::SeqCst);
        let _exit = ExitGuard(&shard.state);
        let ptr = self.ptr.load(Ordering::SeqCst);
        // SAFETY: as in `load` — the in-flight access keeps any value
        // this load can observe out of the retired sweep.
        f(unsafe { &*ptr })
    }

    /// Total accesses (`load` + `with`) over the cell's lifetime.
    pub fn loads(&self) -> u64 {
        self.pins
            .iter()
            .map(|s| s.state.load(Ordering::Relaxed) >> IN_FLIGHT_BITS)
            .sum()
    }

    /// Sweeps the retired list: records which shards are currently
    /// empty into each entry's cleared mask and drops entries whose
    /// every shard has been observed empty since their swap. Caller
    /// holds the retired lock.
    fn sweep(&self, retired: &mut Vec<Retired<T>>) {
        let mut empty: u16 = 0;
        for (i, shard) in self.pins.iter().enumerate() {
            if shard.state.load(Ordering::SeqCst) & IN_FLIGHT_MASK == 0 {
                empty |= 1 << i;
            }
        }
        retired.retain_mut(|r| {
            r.cleared |= empty;
            r.cleared != u16::MAX
        });
    }

    /// Publishes `value`. The superseded snapshot is released as soon as
    /// every pin shard has been observed idle — immediately when no
    /// access is in flight, otherwise at a later store's sweep (or the
    /// cell's drop). Never blocks on readers. Callers must serialize
    /// stores (hold your writer mutex).
    pub fn store(&self, value: Arc<T>) {
        let old = self
            .ptr
            .swap(Arc::into_raw(value) as *mut T, Ordering::SeqCst);
        // SAFETY: `old` came from `Arc::into_raw` and the cell held its
        // one strong reference; ownership moves onto the retired list,
        // which releases it only once provably unreachable.
        let old = unsafe { Arc::from_raw(old) };
        let mut retired = self.retired.lock();
        retired.push(Retired {
            value: old,
            cleared: 0,
        });
        self.sweep(&mut retired);
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the pointer holds the cell's one
        // strong reference. Anything still on the retired list drops
        // with its Vec.
        unsafe { drop(Arc::from_raw(*self.ptr.get_mut())) };
    }
}

// SAFETY: the cell hands out `Arc<T>` across threads, which requires
// the same bounds as `Arc` itself.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn load_returns_stored_value() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        // The first value was released by the store (only the cell held
        // it), the second is shared between the cell and our load.
        assert_eq!(Arc::strong_count(&cell.load()), 2);
    }

    #[test]
    fn with_observes_stores_and_counts_accesses() {
        let cell = SnapshotCell::new(Arc::new(7u64));
        assert_eq!(cell.with(|v| *v), 7);
        cell.store(Arc::new(8));
        assert_eq!(cell.with(|v| *v), 8);
        let before = cell.loads();
        cell.load();
        cell.with(|_| ());
        assert_eq!(cell.loads(), before + 2);
    }

    #[test]
    fn drop_releases_the_current_value() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let cell = SnapshotCell::new(Arc::new(Probe));
        // No access in flight: the store's sweep releases immediately.
        cell.store(Arc::new(Probe));
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        drop(cell);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_loads_never_see_freed_or_stale_values() {
        // More readers than pin shards, so shards are shared between
        // threads — the regime where a quiescence check that compares
        // monotonic exit counts (rather than observing shard emptiness)
        // frees values still being dereferenced.
        let cell = Arc::new(SnapshotCell::new(Arc::new(0u64)));
        let writers_done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for mode in 0..(PIN_SHARDS + 4) {
            let cell = cell.clone();
            let done = writers_done.clone();
            handles.push(thread::spawn(move || {
                let mut last = 0u64;
                while done.load(Ordering::SeqCst) == 0 {
                    let v = if mode % 2 == 0 {
                        *cell.load()
                    } else {
                        cell.with(|v| *v)
                    };
                    // Values only ever increase: a reader may observe a
                    // slightly older snapshot than the latest store but
                    // never travel backwards within its own timeline.
                    assert!(v >= last, "snapshot went backwards: {last} -> {v}");
                    last = v;
                }
            }));
        }
        for v in 1..=10_000u64 {
            cell.store(Arc::new(v));
        }
        writers_done.store(1, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.load(), 10_000);
    }
}
