//! Table schemas and the supported schema evolutions.
//!
//! A schema is a list of typed, defaulted columns plus an ordered subset of
//! them forming the primary key. Per §3.1 of the paper, the final primary
//! key column must be a timestamp named `ts`; LittleTable clusters tables
//! by that column and sorts within clusters by the full key.
//!
//! Supported evolutions (§3.5): appending columns, widening an `int32`
//! column to `int64`, and changing the TTL (the TTL lives in the table
//! descriptor, not here). Old tablets are never rewritten; rows are
//! translated to the newest schema as they are read.

use crate::error::{Error, Result};
use crate::util::{put_string, put_varint, Reader};
use crate::value::{ColumnType, Value};
use std::fmt;
use std::sync::Arc;

/// The reserved name of the timestamp key column.
pub const TS_COLUMN: &str = "ts";

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// Value used when translating rows written before this column existed.
    pub default: Value,
}

impl ColumnDef {
    /// A column whose default is the type's zero value.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            default: ty.zero(),
        }
    }

    /// A column with an explicit default.
    pub fn with_default(name: impl Into<String>, ty: ColumnType, default: Value) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            default,
        }
    }
}

/// A table schema: columns plus the primary-key column indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    version: u32,
    columns: Vec<ColumnDef>,
    /// Indices into `columns`, in key order. The last one is the `ts`
    /// column.
    key: Vec<usize>,
}

impl Schema {
    /// Validates and builds a schema. `key` lists primary-key column
    /// *names* in order; the last must be the timestamp column `ts`.
    pub fn new(columns: Vec<ColumnDef>, key: &[&str]) -> Result<Self> {
        Self::with_version(1, columns, key)
    }

    /// As [`Schema::new`] with an explicit version, used when decoding.
    pub fn with_version(version: u32, columns: Vec<ColumnDef>, key: &[&str]) -> Result<Self> {
        if columns.is_empty() {
            return Err(Error::invalid("schema must have at least one column"));
        }
        for (i, c) in columns.iter().enumerate() {
            if c.name.is_empty() {
                return Err(Error::invalid("column names must be non-empty"));
            }
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(Error::invalid(format!(
                    "duplicate column name {:?}",
                    c.name
                )));
            }
            if !c.default.fits(c.ty) {
                return Err(Error::invalid(format!(
                    "default for column {:?} has wrong type",
                    c.name
                )));
            }
        }
        if key.is_empty() {
            return Err(Error::invalid("primary key must be non-empty"));
        }
        let mut key_idx = Vec::with_capacity(key.len());
        for name in key {
            let idx = columns
                .iter()
                .position(|c| c.name == *name)
                .ok_or_else(|| Error::invalid(format!("key column {name:?} not in schema")))?;
            if key_idx.contains(&idx) {
                return Err(Error::invalid(format!("key column {name:?} listed twice")));
            }
            key_idx.push(idx);
        }
        let last = &columns[*key_idx.last().unwrap()];
        if last.name != TS_COLUMN || last.ty != ColumnType::Timestamp {
            return Err(Error::invalid(
                "the final primary key column must be a timestamp named \"ts\"",
            ));
        }
        // Doubles make poor key components (NaN breaks total order) and the
        // paper's hierarchical keys are ints and strings; forbid them.
        for &i in &key_idx[..key_idx.len() - 1] {
            if columns[i].ty == ColumnType::F64 {
                return Err(Error::invalid("double columns cannot be key components"));
            }
        }
        Ok(Schema {
            version,
            columns,
            key: key_idx,
        })
    }

    /// Monotonically increasing schema version, bumped by every evolution.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// All columns, in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Indices of the primary-key columns, in key order.
    pub fn key_indices(&self) -> &[usize] {
        &self.key
    }

    /// Number of primary-key columns (including `ts`).
    pub fn key_len(&self) -> usize {
        self.key.len()
    }

    /// Index of the timestamp column within the row.
    pub fn ts_index(&self) -> usize {
        *self.key.last().unwrap()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The key column types in key order (including the trailing timestamp).
    pub fn key_types(&self) -> Vec<ColumnType> {
        self.key.iter().map(|&i| self.columns[i].ty).collect()
    }

    /// Validates a row against this schema, coercing I32 values into I64
    /// columns. Returns the normalized row values.
    pub fn check_row(&self, values: Vec<Value>) -> Result<Vec<Value>> {
        if values.len() != self.columns.len() {
            return Err(Error::invalid(format!(
                "row has {} values but schema has {} columns",
                values.len(),
                self.columns.len()
            )));
        }
        values
            .into_iter()
            .zip(&self.columns)
            .map(|(v, c)| v.coerce(c.ty))
            .collect()
    }

    // ---- evolution ----

    /// Appends a column (§3.5). Returns the evolved schema.
    pub fn add_column(&self, col: ColumnDef) -> Result<Schema> {
        if self.column_index(&col.name).is_some() {
            return Err(Error::SchemaChange(format!(
                "column {:?} already exists",
                col.name
            )));
        }
        if !col.default.fits(col.ty) {
            return Err(Error::SchemaChange("default has wrong type".into()));
        }
        let mut columns = self.columns.clone();
        columns.push(col);
        let names: Vec<String> = self.key.iter().map(|&i| columns[i].name.clone()).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        Schema::with_version(self.version + 1, columns, &name_refs)
    }

    /// Widens an `int32` column to `int64` (§3.5).
    pub fn widen_column(&self, name: &str) -> Result<Schema> {
        let idx = self
            .column_index(name)
            .ok_or_else(|| Error::SchemaChange(format!("no column {name:?}")))?;
        if self.columns[idx].ty != ColumnType::I32 {
            return Err(Error::SchemaChange(format!(
                "column {name:?} is {}, only int32 can be widened",
                self.columns[idx].ty
            )));
        }
        let mut columns = self.columns.clone();
        columns[idx].ty = ColumnType::I64;
        columns[idx].default = columns[idx].default.clone().coerce(ColumnType::I64)?;
        let names: Vec<String> = self.key.iter().map(|&i| columns[i].name.clone()).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        Schema::with_version(self.version + 1, columns, &name_refs)
    }

    /// Translates a row written under `self` into `newer`'s shape: missing
    /// trailing columns take their defaults and widened ints are converted.
    /// The key columns are assumed compatible — evolutions cannot change
    /// the key structure.
    pub fn translate_row(&self, newer: &Schema, mut values: Vec<Value>) -> Result<Vec<Value>> {
        debug_assert_eq!(values.len(), self.columns.len());
        for (i, v) in values.iter_mut().enumerate() {
            let want = newer.columns[i].ty;
            if !v.fits(want) {
                return Err(Error::corrupt(format!(
                    "cannot translate column {:?} from {} to {}",
                    self.columns[i].name,
                    v.column_type(),
                    want
                )));
            }
            if v.column_type() != want {
                let taken = std::mem::replace(v, Value::I32(0));
                *v = taken.coerce(want)?;
            }
        }
        for col in &newer.columns[values.len()..] {
            values.push(col.default.clone());
        }
        Ok(values)
    }

    // ---- serialization ----

    /// Serializes the schema into `out` (used in tablet footers and table
    /// descriptors).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.version as u64);
        put_varint(out, self.columns.len() as u64);
        for c in &self.columns {
            put_string(out, &c.name);
            out.push(c.ty.tag());
            encode_value(out, &c.default);
        }
        put_varint(out, self.key.len() as u64);
        for &i in &self.key {
            put_varint(out, i as u64);
        }
    }

    /// Decodes a schema previously written by [`Schema::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Schema> {
        let version = r.varint()? as u32;
        let ncols = r.varint()? as usize;
        if ncols == 0 || ncols > 4096 {
            return Err(Error::corrupt(format!("implausible column count {ncols}")));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = r.string()?;
            let ty = ColumnType::from_tag(r.u8()?)?;
            let default = decode_value(r, ty)?;
            columns.push(ColumnDef { name, ty, default });
        }
        let nkey = r.varint()? as usize;
        if nkey == 0 || nkey > ncols {
            return Err(Error::corrupt(format!("implausible key length {nkey}")));
        }
        let mut key = Vec::with_capacity(nkey);
        for _ in 0..nkey {
            let i = r.varint()? as usize;
            if i >= ncols {
                return Err(Error::corrupt("key index out of range"));
            }
            key.push(i);
        }
        let names: Vec<&str> = key.iter().map(|&i| columns[i].name.as_str()).collect();
        let names2 = names.clone();
        Schema::with_version(version, columns.clone(), &names2).map_err(|e| match e {
            Error::Invalid(m) => Error::Corrupt(m),
            e => e,
        })
    }
}

/// Encodes a single typed value (used for defaults; row payloads use the
/// same primitives via the row codec).
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    use crate::util::zigzag;
    match v {
        Value::I32(x) => put_varint(out, zigzag(*x as i64)),
        Value::I64(x) => put_varint(out, zigzag(*x)),
        Value::F64(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::Timestamp(x) => put_varint(out, zigzag(*x)),
        Value::Str(s) => put_string(out, s),
        Value::Blob(b) => crate::util::put_len_prefixed(out, b),
    }
}

/// Decodes a value of a known type written by [`encode_value`].
pub fn decode_value(r: &mut Reader<'_>, ty: ColumnType) -> Result<Value> {
    use crate::util::unzigzag;
    Ok(match ty {
        ColumnType::I32 => {
            let v = unzigzag(r.varint()?);
            let v32 = i32::try_from(v).map_err(|_| Error::corrupt("i32 out of range"))?;
            Value::I32(v32)
        }
        ColumnType::I64 => Value::I64(unzigzag(r.varint()?)),
        ColumnType::F64 => Value::F64(r.f64()?),
        ColumnType::Timestamp => Value::Timestamp(unzigzag(r.varint()?)),
        ColumnType::Str => Value::Str(r.string()?),
        ColumnType::Blob => Value::Blob(r.len_prefixed()?.to_vec()),
    })
}

/// Shared, immutable schema handle.
pub type SchemaRef = Arc<Schema>;

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}(", self.version)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ") key(")?;
        for (i, &k) in self.key.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.columns[k].name)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage_schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("network", ColumnType::I64),
                ColumnDef::new("device", ColumnType::I64),
                ColumnDef::new(TS_COLUMN, ColumnType::Timestamp),
                ColumnDef::new("bytes", ColumnType::I64),
                ColumnDef::new("rate", ColumnType::F64),
            ],
            &["network", "device", "ts"],
        )
        .unwrap()
    }

    #[test]
    fn builds_valid_schema() {
        let s = usage_schema();
        assert_eq!(s.key_len(), 3);
        assert_eq!(s.ts_index(), 2);
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn rejects_missing_ts_key() {
        let r = Schema::new(
            vec![
                ColumnDef::new("a", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["a"],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_ts_of_wrong_type() {
        let r = Schema::new(vec![ColumnDef::new("ts", ColumnType::I64)], &["ts"]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_duplicate_columns_and_keys() {
        assert!(Schema::new(
            vec![
                ColumnDef::new("a", ColumnType::I64),
                ColumnDef::new("a", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["a", "ts"],
        )
        .is_err());
        assert!(Schema::new(
            vec![
                ColumnDef::new("a", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["a", "a", "ts"],
        )
        .is_err());
    }

    #[test]
    fn rejects_double_key_component() {
        let r = Schema::new(
            vec![
                ColumnDef::new("x", ColumnType::F64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["x", "ts"],
        );
        assert!(r.is_err());
    }

    #[test]
    fn check_row_validates_and_coerces() {
        let s = usage_schema();
        let row = s
            .check_row(vec![
                Value::I32(1), // coerces into I64 column
                Value::I64(2),
                Value::Timestamp(100),
                Value::I64(4096),
                Value::F64(68.3),
            ])
            .unwrap();
        assert_eq!(row[0], Value::I64(1));
        assert!(s.check_row(vec![Value::I64(1)]).is_err());
        assert!(s
            .check_row(vec![
                Value::Str("no".into()),
                Value::I64(2),
                Value::Timestamp(100),
                Value::I64(4096),
                Value::F64(68.3),
            ])
            .is_err());
    }

    #[test]
    fn add_column_bumps_version_and_translates() {
        let s1 = usage_schema();
        let s2 = s1
            .add_column(ColumnDef::with_default(
                "packets",
                ColumnType::I64,
                Value::I64(-1),
            ))
            .unwrap();
        assert_eq!(s2.version(), 2);
        assert_eq!(s2.num_columns(), 6);
        let old_row = vec![
            Value::I64(1),
            Value::I64(2),
            Value::Timestamp(100),
            Value::I64(4096),
            Value::F64(68.3),
        ];
        let new_row = s1.translate_row(&s2, old_row).unwrap();
        assert_eq!(new_row[5], Value::I64(-1));
    }

    #[test]
    fn widen_column_translates_values() {
        let s1 = Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("count", ColumnType::I32),
            ],
            &["n", "ts"],
        )
        .unwrap();
        let s2 = s1.widen_column("count").unwrap();
        assert_eq!(s2.columns()[2].ty, ColumnType::I64);
        let row = s1
            .translate_row(&s2, vec![Value::I64(1), Value::Timestamp(5), Value::I32(7)])
            .unwrap();
        assert_eq!(row[2], Value::I64(7));
        // Widening a non-I32 column fails.
        assert!(s2.widen_column("count").is_err());
        assert!(s2.widen_column("missing").is_err());
    }

    #[test]
    fn add_existing_column_fails() {
        let s = usage_schema();
        assert!(s
            .add_column(ColumnDef::new("bytes", ColumnType::I64))
            .is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        let s1 = usage_schema()
            .add_column(ColumnDef::with_default(
                "note",
                ColumnType::Str,
                Value::Str("n/a".into()),
            ))
            .unwrap();
        let mut buf = Vec::new();
        s1.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let s2 = Schema::decode(&mut r).unwrap();
        assert_eq!(s1, s2);
        assert!(r.is_empty());
    }

    #[test]
    fn decode_rejects_corrupt() {
        let mut buf = Vec::new();
        usage_schema().encode(&mut buf);
        for cut in [1usize, 3, 7, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(Schema::decode(&mut r).is_err(), "cut={cut}");
        }
    }
}
