//! The flush-dependency graph (§3.4.3).
//!
//! With several in-memory tablets filling at once (one per time period), a
//! client's inserts may interleave between tablets, but LittleTable still
//! guarantees that if a row survives a crash, every row inserted into the
//! same table *before* it survives too. To maintain this, the engine tracks
//! the tablet `t` that most recently received an insert; when an insert
//! lands in a different tablet `t'`, it records the edge `t → t'` ("t must
//! be flushed before t'"). Before flushing a tablet the engine flushes the
//! transitive closure of its predecessors along with it, committing all of
//! them in a single atomic descriptor update.

use crate::memtable::MemTabletId;
use std::collections::{HashMap, HashSet, VecDeque};

/// Directed flush-before constraints between in-memory tablets.
#[derive(Debug, Default)]
pub struct FlushDeps {
    /// `before → afters`: `before` must flush no later than each of
    /// `afters`.
    forward: HashMap<MemTabletId, HashSet<MemTabletId>>,
    /// Reverse adjacency for closure computation.
    reverse: HashMap<MemTabletId, HashSet<MemTabletId>>,
}

impl FlushDeps {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `before` must be flushed before (or with) `after`.
    pub fn add_edge(&mut self, before: MemTabletId, after: MemTabletId) {
        if before == after {
            return;
        }
        self.forward.entry(before).or_default().insert(after);
        self.reverse.entry(after).or_default().insert(before);
    }

    /// All tablets that must be flushed together with (or before) `t`:
    /// the transitive predecessors of `t`, excluding `t` itself. Cycles are
    /// handled naturally — every member of a cycle reaches the others.
    pub fn closure_before(&self, t: MemTabletId) -> HashSet<MemTabletId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(t);
        while let Some(cur) = queue.pop_front() {
            if let Some(preds) = self.reverse.get(&cur) {
                for &p in preds {
                    if p != t && seen.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        seen
    }

    /// Orders `group` (which must be closed under `closure_before`) so that
    /// every edge points forward — a topological order that breaks cycles
    /// by id, which is safe because cycle members commit atomically anyway.
    pub fn order_group(&self, group: &HashSet<MemTabletId>) -> Vec<MemTabletId> {
        // Kahn's algorithm restricted to the group; ties and cycles resolve
        // by smallest id for determinism.
        let mut indegree: HashMap<MemTabletId, usize> = group.iter().map(|&t| (t, 0)).collect();
        for &t in group {
            if let Some(next) = self.forward.get(&t) {
                for n in next {
                    if let Some(d) = indegree.get_mut(n) {
                        *d += 1;
                    }
                }
            }
        }
        let mut ready: Vec<MemTabletId> = indegree
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&t, _)| t)
            .collect();
        let mut out = Vec::with_capacity(group.len());
        let mut remaining: HashSet<MemTabletId> = group.clone();
        while out.len() < group.len() {
            if ready.is_empty() {
                // Cycle: pick the smallest remaining id.
                let &min = remaining.iter().min().unwrap();
                ready.push(min);
                indegree.insert(min, 0);
            }
            ready.sort_unstable();
            let t = ready.remove(0);
            if !remaining.remove(&t) {
                continue;
            }
            out.push(t);
            if let Some(next) = self.forward.get(&t) {
                for n in next {
                    if remaining.contains(n) {
                        let d = indegree.get_mut(n).unwrap();
                        if *d > 0 {
                            *d -= 1;
                            if *d == 0 {
                                ready.push(*n);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Removes flushed tablets from the graph.
    pub fn remove(&mut self, flushed: &HashSet<MemTabletId>) {
        for t in flushed {
            if let Some(next) = self.forward.remove(t) {
                for n in next {
                    if let Some(r) = self.reverse.get_mut(&n) {
                        r.remove(t);
                    }
                }
            }
            if let Some(preds) = self.reverse.remove(t) {
                for p in preds {
                    if let Some(f) = self.forward.get_mut(&p) {
                        f.remove(t);
                    }
                }
            }
        }
    }

    /// Number of tablets with at least one recorded constraint.
    pub fn len(&self) -> usize {
        let mut ids: HashSet<MemTabletId> = self.forward.keys().copied().collect();
        ids.extend(self.reverse.keys());
        ids.len()
    }

    /// True when no constraints are recorded.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty() && self.reverse.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> MemTabletId {
        MemTabletId(n)
    }

    fn set(ids: &[u64]) -> HashSet<MemTabletId> {
        ids.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn simple_chain_closure() {
        let mut d = FlushDeps::new();
        d.add_edge(id(1), id(2)); // 1 before 2
        d.add_edge(id(2), id(3)); // 2 before 3
        assert_eq!(d.closure_before(id(3)), set(&[1, 2]));
        assert_eq!(d.closure_before(id(2)), set(&[1]));
        assert_eq!(d.closure_before(id(1)), set(&[]));
    }

    #[test]
    fn cycle_closure_includes_both() {
        let mut d = FlushDeps::new();
        d.add_edge(id(1), id(2));
        d.add_edge(id(2), id(1));
        assert_eq!(d.closure_before(id(1)), set(&[2]));
        assert_eq!(d.closure_before(id(2)), set(&[1]));
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut d = FlushDeps::new();
        d.add_edge(id(1), id(1));
        assert!(d.is_empty());
    }

    #[test]
    fn order_respects_edges() {
        let mut d = FlushDeps::new();
        d.add_edge(id(3), id(1));
        d.add_edge(id(1), id(2));
        let mut group = d.closure_before(id(2));
        group.insert(id(2));
        let order = d.order_group(&group);
        let pos = |t: u64| order.iter().position(|&x| x == id(t)).unwrap();
        assert!(pos(3) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn order_handles_cycles_deterministically() {
        let mut d = FlushDeps::new();
        d.add_edge(id(5), id(7));
        d.add_edge(id(7), id(5));
        let group = set(&[5, 7]);
        let order = d.order_group(&group);
        assert_eq!(order.len(), 2);
        // Deterministic: smallest id first within the cycle.
        assert_eq!(order[0], id(5));
    }

    #[test]
    fn remove_clears_constraints() {
        let mut d = FlushDeps::new();
        d.add_edge(id(1), id(2));
        d.add_edge(id(2), id(3));
        d.remove(&set(&[1, 2]));
        assert_eq!(d.closure_before(id(3)), set(&[]));
        d.remove(&set(&[3]));
        assert!(d.is_empty());
    }

    #[test]
    fn diamond_closure() {
        let mut d = FlushDeps::new();
        d.add_edge(id(1), id(2));
        d.add_edge(id(1), id(3));
        d.add_edge(id(2), id(4));
        d.add_edge(id(3), id(4));
        assert_eq!(d.closure_before(id(4)), set(&[1, 2, 3]));
        assert_eq!(d.len(), 4);
    }
}
