//! Per-table and per-database operational counters.
//!
//! [`TableStats`] backs the production-metrics figures of §5.2: rows
//! scanned versus rows returned (Fig. 9), insert and query rates
//! (§5.2.3), and flush/merge activity (write amplification, §5.1.3).
//! [`DbStats`] covers the database-wide hot paths those tables share:
//! lock-free catalog resolution and the adaptive block-cache split.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters updated by the insert, query, flush, and merge paths.
#[derive(Debug, Default)]
pub struct TableStats {
    /// Rows accepted by inserts.
    pub rows_inserted: AtomicU64,
    /// Rows rejected as duplicate primary keys.
    pub duplicate_keys: AtomicU64,
    /// Queries started (range queries via `query`/`query_all` plus
    /// `latest` calls — every read that opens a cursor).
    pub queries: AtomicU64,
    /// `latest` calls, also counted in `queries`.
    pub latest_calls: AtomicU64,
    /// Read-path snapshot acquisitions: one per `query`/`latest` fast
    /// path (an atomic pointer load, no mutex).
    pub snapshot_loads: AtomicU64,
    /// Snapshots published by the write and maintenance paths (one per
    /// tablet-set or schema transition).
    pub snapshot_publishes: AtomicU64,
    /// Rows popped from the merge cursor (inside key bounds).
    pub rows_scanned: AtomicU64,
    /// Rows that also passed the timestamp and TTL filters and were
    /// returned.
    pub rows_returned: AtomicU64,
    /// In-memory tablets flushed to disk.
    pub tablets_flushed: AtomicU64,
    /// Bytes written by flushes (compressed file sizes).
    pub bytes_flushed: AtomicU64,
    /// Merge operations completed.
    pub merges: AtomicU64,
    /// Bytes written by merges (compressed output file sizes).
    pub bytes_merge_written: AtomicU64,
    /// Tablets removed by TTL expiry.
    pub tablets_expired: AtomicU64,
    /// Inserts resolved by the "newest timestamp" fast path.
    pub unique_fast_ts: AtomicU64,
    /// Inserts resolved by the "largest key in period" fast path.
    pub unique_fast_key: AtomicU64,
    /// Inserts that needed the point-query slow path.
    pub unique_slow: AtomicU64,
    /// Block reads served from the decompressed-block cache.
    pub cache_hits: AtomicU64,
    /// Block reads that missed the decompressed tier but were served from
    /// the compressed tier — a decompress instead of a disk seek.
    pub cache_compressed_hits: AtomicU64,
    /// Block reads that missed both cache tiers and hit disk. Stays 0
    /// when the cache is disabled (uncached reads are not counted).
    pub cache_misses: AtomicU64,
    /// Decompressed bytes of this table's blocks evicted from the
    /// decompressed tier (including demotions to the compressed tier).
    pub cache_evicted_bytes: AtomicU64,
    /// Tablet footers of this table evicted from the shared cache; each
    /// reload costs the three cold-footer seeks of §3.2.
    pub footer_evictions: AtomicU64,
    /// Maintenance operations re-attempted after a transient I/O error
    /// (one count per retry, not per eventual success).
    pub io_retries: AtomicU64,
    /// Maintenance cycles that gave up on an operation after exhausting
    /// retries (the error was surfaced, not swallowed).
    pub maintenance_errors: AtomicU64,
    /// Tablet files set aside at open because they were missing or failed
    /// footer/CRC validation (see `Options::strict_open`).
    pub tablets_quarantined: AtomicU64,
    /// Pushdown scans started (aggregate queries routed through
    /// [`crate::table::Table::pushdown_scan`] instead of the row cursor).
    pub pushdown_scans: AtomicU64,
    /// Blocks skipped outright by a pushdown scan because their zone
    /// maps proved no row could match.
    pub blocks_pruned: AtomicU64,
    /// Rows materialized into [`crate::row::Row`] values on the read
    /// path (cursor emits plus pushdown boundary rows). The pushdown win
    /// shows up as this counter staying far below `rows_scanned`.
    pub rows_materialized: AtomicU64,
    /// Aggregate queries (or portions of them) answered from a rollup
    /// table instead of scanning this base table.
    pub rollup_hits: AtomicU64,
    /// On-disk tablets of this table folded into rollup tables.
    pub rollup_folds: AtomicU64,
    /// Aggregate queries on this table answered from the query-result
    /// cache without touching either the base table or its rollups.
    pub result_cache_hits: AtomicU64,
    /// Aggregate queries that consulted the query-result cache and missed.
    pub result_cache_misses: AtomicU64,
}

/// A plain-value snapshot of [`TableStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`TableStats::rows_inserted`].
    pub rows_inserted: u64,
    /// See [`TableStats::duplicate_keys`].
    pub duplicate_keys: u64,
    /// See [`TableStats::queries`].
    pub queries: u64,
    /// See [`TableStats::latest_calls`].
    pub latest_calls: u64,
    /// See [`TableStats::snapshot_loads`].
    pub snapshot_loads: u64,
    /// See [`TableStats::snapshot_publishes`].
    pub snapshot_publishes: u64,
    /// See [`TableStats::rows_scanned`].
    pub rows_scanned: u64,
    /// See [`TableStats::rows_returned`].
    pub rows_returned: u64,
    /// See [`TableStats::tablets_flushed`].
    pub tablets_flushed: u64,
    /// See [`TableStats::bytes_flushed`].
    pub bytes_flushed: u64,
    /// See [`TableStats::merges`].
    pub merges: u64,
    /// See [`TableStats::bytes_merge_written`].
    pub bytes_merge_written: u64,
    /// See [`TableStats::tablets_expired`].
    pub tablets_expired: u64,
    /// See [`TableStats::unique_fast_ts`].
    pub unique_fast_ts: u64,
    /// See [`TableStats::unique_fast_key`].
    pub unique_fast_key: u64,
    /// See [`TableStats::unique_slow`].
    pub unique_slow: u64,
    /// See [`TableStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`TableStats::cache_compressed_hits`].
    pub cache_compressed_hits: u64,
    /// See [`TableStats::cache_misses`].
    pub cache_misses: u64,
    /// See [`TableStats::cache_evicted_bytes`].
    pub cache_evicted_bytes: u64,
    /// See [`TableStats::footer_evictions`].
    pub footer_evictions: u64,
    /// See [`TableStats::io_retries`].
    pub io_retries: u64,
    /// See [`TableStats::maintenance_errors`].
    pub maintenance_errors: u64,
    /// See [`TableStats::tablets_quarantined`].
    pub tablets_quarantined: u64,
    /// See [`TableStats::pushdown_scans`].
    pub pushdown_scans: u64,
    /// See [`TableStats::blocks_pruned`].
    pub blocks_pruned: u64,
    /// See [`TableStats::rows_materialized`].
    pub rows_materialized: u64,
    /// See [`TableStats::rollup_hits`].
    pub rollup_hits: u64,
    /// See [`TableStats::rollup_folds`].
    pub rollup_folds: u64,
    /// See [`TableStats::result_cache_hits`].
    pub result_cache_hits: u64,
    /// See [`TableStats::result_cache_misses`].
    pub result_cache_misses: u64,
}

impl TableStats {
    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a coherent-enough snapshot (individual counters are exact;
    /// cross-counter consistency is best-effort, which is fine for
    /// monitoring).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows_inserted: self.rows_inserted.load(Ordering::Relaxed),
            duplicate_keys: self.duplicate_keys.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            latest_calls: self.latest_calls.load(Ordering::Relaxed),
            snapshot_loads: self.snapshot_loads.load(Ordering::Relaxed),
            snapshot_publishes: self.snapshot_publishes.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_returned: self.rows_returned.load(Ordering::Relaxed),
            tablets_flushed: self.tablets_flushed.load(Ordering::Relaxed),
            bytes_flushed: self.bytes_flushed.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            bytes_merge_written: self.bytes_merge_written.load(Ordering::Relaxed),
            tablets_expired: self.tablets_expired.load(Ordering::Relaxed),
            unique_fast_ts: self.unique_fast_ts.load(Ordering::Relaxed),
            unique_fast_key: self.unique_fast_key.load(Ordering::Relaxed),
            unique_slow: self.unique_slow.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_compressed_hits: self.cache_compressed_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evicted_bytes: self.cache_evicted_bytes.load(Ordering::Relaxed),
            footer_evictions: self.footer_evictions.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            maintenance_errors: self.maintenance_errors.load(Ordering::Relaxed),
            tablets_quarantined: self.tablets_quarantined.load(Ordering::Relaxed),
            pushdown_scans: self.pushdown_scans.load(Ordering::Relaxed),
            blocks_pruned: self.blocks_pruned.load(Ordering::Relaxed),
            rows_materialized: self.rows_materialized.load(Ordering::Relaxed),
            rollup_hits: self.rollup_hits.load(Ordering::Relaxed),
            rollup_folds: self.rollup_folds.load(Ordering::Relaxed),
            result_cache_hits: self.result_cache_hits.load(Ordering::Relaxed),
            result_cache_misses: self.result_cache_misses.load(Ordering::Relaxed),
        }
    }
}

/// Database-wide counters: catalog mutation traffic plus, via
/// [`crate::db::Db::stats`], the adaptive cache-split telemetry.
/// Catalog *loads* are counted by the snapshot cell itself (its sharded
/// pin counters double as the statistic), so the hot lookup path
/// carries no bookkeeping beyond its own pin.
#[derive(Debug, Default)]
pub struct DbStats {
    /// Catalog snapshots published (create/drop, one per mutation).
    pub catalog_publishes: AtomicU64,
}

/// A plain-value snapshot of the database-wide counters, including the
/// shared cache's adaptive-split telemetry. This is what the benches and
/// the server stats path read.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DbStatsSnapshot {
    /// Catalog snapshot loads: one per `Db::table()` / `list_tables()` /
    /// maintenance sweep — each a single atomic load, no lock.
    pub catalog_loads: u64,
    /// Catalog snapshots published by `create_table` / `drop_table`.
    pub catalog_publishes: u64,
    /// Tables in the current catalog snapshot.
    pub tables: u64,
    /// Would-have-hits against the decompressed tier's ghost list.
    pub ghost_hits_decompressed: u64,
    /// Would-have-hits against the compressed tier's ghost list.
    pub ghost_hits_compressed: u64,
    /// Cache rebalances that actually moved budget between the tiers.
    pub cache_rebalances: u64,
    /// The compressed tier's current share of the joint cache budget in
    /// [0, 1]; 0.0 when the cache is disabled.
    pub cache_split_fraction: f64,
    /// Query-result cache hits across all tables.
    pub result_cache_hits: u64,
    /// Query-result cache misses across all tables.
    pub result_cache_misses: u64,
    /// Entries currently resident in the query-result cache.
    pub result_cache_entries: u64,
    /// Estimated bytes charged to the query-result cache.
    pub result_cache_bytes: u64,
}

impl StatsSnapshot {
    /// Average rows scanned per row returned (Fig. 9's metric); 1.0 when
    /// nothing has been returned.
    pub fn scan_ratio(&self) -> f64 {
        if self.rows_returned == 0 {
            1.0
        } else {
            self.rows_scanned as f64 / self.rows_returned as f64
        }
    }

    /// Fraction of block reads served from either cache tier (a
    /// compressed-tier hit avoids the disk just like a decompressed one,
    /// at the cost of one decompress); 0.0 before any block has been read.
    pub fn cache_hit_ratio(&self) -> f64 {
        let served = self.cache_hits + self.cache_compressed_hits;
        let total = served + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }

    /// Write amplification so far: total bytes written (flush + merge)
    /// per byte flushed.
    pub fn write_amplification(&self) -> f64 {
        if self.bytes_flushed == 0 {
            1.0
        } else {
            (self.bytes_flushed + self.bytes_merge_written) as f64 / self.bytes_flushed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_back_counts() {
        let s = TableStats::default();
        TableStats::add(&s.rows_inserted, 10);
        TableStats::add(&s.rows_scanned, 14);
        TableStats::add(&s.rows_returned, 10);
        let snap = s.snapshot();
        assert_eq!(snap.rows_inserted, 10);
        assert!((snap.scan_ratio() - 1.4).abs() < 1e-9);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.scan_ratio(), 1.0);
        assert_eq!(snap.write_amplification(), 1.0);
    }

    #[test]
    fn hit_ratio_counts_both_tiers() {
        let s = TableStats::default();
        TableStats::add(&s.cache_hits, 2);
        TableStats::add(&s.cache_compressed_hits, 1);
        TableStats::add(&s.cache_misses, 1);
        assert!((s.snapshot().cache_hit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn write_amplification_counts_merges() {
        let s = TableStats::default();
        TableStats::add(&s.bytes_flushed, 100);
        TableStats::add(&s.bytes_merge_written, 100);
        assert!((s.snapshot().write_amplification() - 2.0).abs() < 1e-9);
    }
}
