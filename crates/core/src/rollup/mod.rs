//! The continuous rollup (downsampling) tier.
//!
//! Dashboards over the aggregator workload (§4.1.2) ask for per-period
//! SUM/COUNT/MIN/MAX/AVG and distinct counts far more often than they
//! ask for raw rows. A *rollup* materializes those answers ahead of
//! time: for a base table and a period `P`, it maintains one row per
//! (key-prefix dims, source tablet, P-aligned bucket) holding the row
//! count, per-column sums and extrema, and a mergeable HyperLogLog
//! sketch per distinct-counted column.
//!
//! Rollups are stored as *ordinary LittleTable tables*, so they inherit
//! snapshot isolation, crash recovery, descriptor atomicity, and the
//! fault sweep for free. Their schema is derived from the base table's
//! (see [`rollup_schema`]), with primary key `(dims…, chunk, ts)` where
//! `chunk` is the id of the base tablet the partial came from and `ts`
//! is the bucket start.
//!
//! # Maintenance protocol
//!
//! Folding happens at maintenance time, after flush/merge, under the
//! base table's merge-exclusion slot:
//!
//! 1. list the base's on-disk tablets not yet marked `rolled_up`;
//! 2. scan each one and accumulate partial aggregates per
//!    `(dims, bucket)`;
//! 3. insert the partials into every registered rollup table — keys are
//!    deterministic (`chunk` = source tablet id), so a crash-and-refold
//!    simply has its duplicates rejected by the engine;
//! 4. `flush_all` the rollup tables;
//! 5. mark the source tablets `rolled_up` in the base's descriptor.
//!
//! A crash between any two steps is safe: the mark is the commitment
//! point, and everything before it is idempotent. Because tablet
//! identity is the idempotency key, a base table feeding rollups only
//! merges tablets that are already rolled up
//! (see `Table::rollup_source`) — merging first would re-chunk rows and
//! double-count them on the refold.
//!
//! # Serving
//!
//! Every row with `ts` below the base's *rollup watermark*
//! ([`crate::Table::rollup_watermark`]) is fully represented in the
//! rollup tables; the SQL layer answers bucketed aggregates from the
//! rollup below the watermark and scans only the un-rolled-up tail
//! above it, merging the two (partial aggregates are additive).

use crate::cursor::{DiskCursor, RowSource};
use crate::error::{Error, Result};
use crate::keyenc::KeyRange;
use crate::schema::{ColumnDef, Schema};
use crate::stats::TableStats;
use crate::table::{cmp_values, Table};
use crate::util::{crc32, put_string, put_varint, Reader};
use crate::value::{ColumnType, Value};
use littletable_hll::HyperLogLog;
use littletable_vfs::{join, Micros, Vfs};
use std::cmp::Ordering as CmpOrdering;
use std::collections::HashMap;
use std::sync::Arc;

/// File name of the rollup spec within a rollup table's directory. Its
/// presence is what distinguishes a rollup table from a base table at
/// `Db::open`.
pub const SPEC_FILE: &str = "ROLLUP";
const SPEC_TMP: &str = "ROLLUP.tmp";
const SPEC_MAGIC: u32 = 0x4C54_524C; // "LTRL"
const SPEC_VERSION: u8 = 1;

/// The durable definition of one rollup: which base table it folds,
/// at what period, and which columns get sums/extrema and HLL sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupSpec {
    /// Name of the rollup table itself.
    pub name: String,
    /// Name of the base table being folded.
    pub base: String,
    /// Bucket width in micros; bucket starts are multiples of it.
    pub period: Micros,
    /// Base value columns (int32/int64/double) given `_sum`/`_min`/`_max`
    /// columns in the rollup.
    pub value_cols: Vec<String>,
    /// Base columns given a `_hll` HyperLogLog sketch column for
    /// `COUNT(DISTINCT …)`.
    pub distinct_cols: Vec<String>,
}

impl RollupSpec {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.push(SPEC_VERSION);
        put_string(&mut body, &self.name);
        put_string(&mut body, &self.base);
        put_varint(&mut body, self.period as u64);
        put_varint(&mut body, self.value_cols.len() as u64);
        for c in &self.value_cols {
            put_string(&mut body, c);
        }
        put_varint(&mut body, self.distinct_cols.len() as u64);
        for c in &self.distinct_cols {
            put_string(&mut body, c);
        }
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&SPEC_MAGIC.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode(data: &[u8]) -> Result<RollupSpec> {
        let mut r = Reader::new(data);
        if r.u32()? != SPEC_MAGIC {
            return Err(Error::corrupt("bad rollup spec magic"));
        }
        let crc = r.u32()?;
        let body = r.bytes(r.remaining())?;
        if crc32(body) != crc {
            return Err(Error::corrupt("rollup spec checksum mismatch"));
        }
        let mut r = Reader::new(body);
        let ver = r.u8()?;
        if ver != SPEC_VERSION {
            return Err(Error::corrupt(format!("unknown rollup spec version {ver}")));
        }
        let name = r.string()?;
        let base = r.string()?;
        let period = r.varint()? as Micros;
        let n = r.varint()? as usize;
        let mut value_cols = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            value_cols.push(r.string()?);
        }
        let n = r.varint()? as usize;
        let mut distinct_cols = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            distinct_cols.push(r.string()?);
        }
        if !r.is_empty() {
            return Err(Error::corrupt("trailing bytes after rollup spec"));
        }
        Ok(RollupSpec {
            name,
            base,
            period,
            value_cols,
            distinct_cols,
        })
    }

    /// Durably writes the spec into the rollup table's directory.
    pub(crate) fn save(&self, vfs: &dyn Vfs, dir: &str) -> Result<()> {
        let tmp = join(dir, SPEC_TMP);
        let dst = join(dir, SPEC_FILE);
        let data = self.encode();
        let mut f = vfs.create(&tmp, data.len() as u64)?;
        f.append(&data)?;
        f.sync()?;
        drop(f);
        vfs.rename(&tmp, &dst)?;
        vfs.sync_dir(dir)?;
        Ok(())
    }

    /// Loads a spec from a rollup table's directory.
    pub(crate) fn load(vfs: &dyn Vfs, dir: &str) -> Result<RollupSpec> {
        let tmp = join(dir, SPEC_TMP);
        if vfs.exists(&tmp) && vfs.remove(&tmp).is_ok() {
            let _ = vfs.sync_dir(dir);
        }
        let path = join(dir, SPEC_FILE);
        let f = vfs.open(&path)?;
        let len = f.len()? as usize;
        let mut data = vec![0u8; len];
        f.read_exact_at(0, &mut data)?;
        Self::decode(&data)
    }
}

/// The rollup column type that holds sums/extrema of a base value
/// column: the int family widens to `int64`, doubles stay doubles.
fn stat_type(base: ColumnType) -> Result<ColumnType> {
    match base {
        ColumnType::I32 | ColumnType::I64 => Ok(ColumnType::I64),
        ColumnType::F64 => Ok(ColumnType::F64),
        other => Err(Error::invalid(format!(
            "rollup value columns must be numeric, got {other}"
        ))),
    }
}

/// Derives the rollup table's schema from the base table's.
///
/// Layout: the base's non-timestamp key columns (the *dims*), then
/// `chunk int64` (source base-tablet id), `ts timestamp` (bucket start),
/// `rows int64`, then `{v}_sum`/`{v}_min`/`{v}_max` per value column and
/// `{d}_hll blob` per distinct column. Primary key `(dims…, chunk, ts)`.
pub fn rollup_schema(base: &Schema, spec: &RollupSpec) -> Result<Schema> {
    if spec.period <= 0 {
        return Err(Error::invalid("rollup period must be positive"));
    }
    let mut columns = Vec::new();
    let mut key_names: Vec<String> = Vec::new();
    let key = base.key_indices();
    for &i in &key[..key.len() - 1] {
        let c = &base.columns()[i];
        columns.push(ColumnDef::new(c.name.clone(), c.ty));
        key_names.push(c.name.clone());
    }
    columns.push(ColumnDef::new("chunk", ColumnType::I64));
    key_names.push("chunk".into());
    columns.push(ColumnDef::new("ts", ColumnType::Timestamp));
    key_names.push("ts".into());
    columns.push(ColumnDef::new("rows", ColumnType::I64));
    for name in &spec.value_cols {
        let idx = base
            .column_index(name)
            .ok_or_else(|| Error::invalid(format!("no column {name:?} in base table")))?;
        let ty = stat_type(base.columns()[idx].ty)?;
        columns.push(ColumnDef::new(format!("{name}_sum"), ty));
        columns.push(ColumnDef::new(format!("{name}_min"), ty));
        columns.push(ColumnDef::new(format!("{name}_max"), ty));
    }
    for name in &spec.distinct_cols {
        let idx = base
            .column_index(name)
            .ok_or_else(|| Error::invalid(format!("no column {name:?} in base table")))?;
        if idx == base.ts_index() {
            return Err(Error::invalid(
                "the timestamp column cannot be distinct-counted",
            ));
        }
        columns.push(ColumnDef::new(format!("{name}_hll"), ColumnType::Blob));
    }
    let key_refs: Vec<&str> = key_names.iter().map(|s| s.as_str()).collect();
    Schema::new(columns, &key_refs)
}

/// The bucket start containing `ts` for a period: the largest multiple
/// of `period` at or below `ts`. Matches SQL's `TIME_BUCKET`.
pub fn bucket_of(ts: Micros, period: Micros) -> Micros {
    ts - ts.rem_euclid(period)
}

/// Hashable identity of a value for distinct counting. The int family
/// (including timestamps) normalizes to one encoding so `int32` columns
/// widened to `int64` keep their sketch identities.
pub fn distinct_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    match v {
        Value::I32(x) => {
            out.push(0);
            out.extend_from_slice(&(*x as i64).to_le_bytes());
        }
        Value::I64(x) => {
            out.push(0);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Timestamp(x) => {
            out.push(0);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(2);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            out.push(3);
            out.extend_from_slice(b);
        }
    }
    out
}

/// One tablet's groups for one rollup: encoded (dims, bucket) key to
/// the original dim values, the bucket, and the running aggregate.
type AccMap = HashMap<Vec<u8>, (Vec<Value>, Micros, Acc)>;

/// One partial aggregate under accumulation.
struct Acc {
    rows: i64,
    /// Per value column: (sum over the int family as i64 or f64, min,
    /// max). Sums start at the type's zero; extrema start `None`.
    sums_i: Vec<i64>,
    sums_f: Vec<f64>,
    mins: Vec<Option<Value>>,
    maxs: Vec<Option<Value>>,
    hlls: Vec<HyperLogLog>,
}

impl Acc {
    fn new(n_vals: usize, n_distinct: usize) -> Self {
        Acc {
            rows: 0,
            sums_i: vec![0; n_vals],
            sums_f: vec![0.0; n_vals],
            mins: vec![None; n_vals],
            maxs: vec![None; n_vals],
            hlls: (0..n_distinct)
                .map(|_| HyperLogLog::default_precision())
                .collect(),
        }
    }
}

/// Column bindings of one rollup spec against the base schema, resolved
/// once per fold.
struct Binding {
    spec: Arc<RollupSpec>,
    table: Arc<Table>,
    val_idx: Vec<usize>,
    val_float: Vec<bool>,
    distinct_idx: Vec<usize>,
}

fn bind(base_schema: &Schema, targets: &[(Arc<RollupSpec>, Arc<Table>)]) -> Result<Vec<Binding>> {
    let mut out = Vec::with_capacity(targets.len());
    for (spec, table) in targets {
        let mut val_idx = Vec::new();
        let mut val_float = Vec::new();
        for name in &spec.value_cols {
            let idx = base_schema
                .column_index(name)
                .ok_or_else(|| Error::invalid(format!("rollup column {name:?} missing in base")))?;
            val_float.push(stat_type(base_schema.columns()[idx].ty)? == ColumnType::F64);
            val_idx.push(idx);
        }
        let mut distinct_idx = Vec::new();
        for name in &spec.distinct_cols {
            let idx = base_schema
                .column_index(name)
                .ok_or_else(|| Error::invalid(format!("rollup column {name:?} missing in base")))?;
            distinct_idx.push(idx);
        }
        out.push(Binding {
            spec: spec.clone(),
            table: table.clone(),
            val_idx,
            val_float,
            distinct_idx,
        });
    }
    Ok(out)
}

/// Widens a base value to its rollup stat column type.
fn widen(v: Value) -> Value {
    match v {
        Value::I32(x) => Value::I64(x as i64),
        other => other,
    }
}

/// Folds the base table's not-yet-rolled-up on-disk tablets into every
/// registered rollup table, then marks them rolled up. Returns the
/// number of tablets folded. With `include_rolled`, re-folds everything
/// (the backfill path for a newly created rollup; duplicate partials
/// are rejected by the engine's uniqueness check, making it idempotent).
pub(crate) fn fold_base(
    base: &Arc<Table>,
    targets: &[(Arc<RollupSpec>, Arc<Table>)],
    include_rolled: bool,
) -> Result<usize> {
    if targets.is_empty() {
        return Ok(0);
    }
    if !base.try_begin_merge_exclusion() {
        return Ok(0);
    }
    let result = fold_base_inner(base, targets, include_rolled);
    base.end_merge_exclusion();
    result
}

/// The backfill variant of [`fold_base`]: *waits* for the base's
/// merge-exclusion slot instead of skipping the pass, because `CREATE
/// ROLLUP` must not return before the existing data is folded.
pub(crate) fn fold_backfill(
    base: &Arc<Table>,
    targets: &[(Arc<RollupSpec>, Arc<Table>)],
) -> Result<usize> {
    loop {
        if base.try_begin_merge_exclusion() {
            break;
        }
        if base.is_dropped() {
            return Err(Error::invalid("base table dropped during rollup backfill"));
        }
        std::thread::yield_now();
    }
    let result = fold_base_inner(base, targets, true);
    base.end_merge_exclusion();
    result
}

fn fold_base_inner(
    base: &Arc<Table>,
    targets: &[(Arc<RollupSpec>, Arc<Table>)],
    include_rolled: bool,
) -> Result<usize> {
    let tablets = base.unfolded_tablets(include_rolled);
    if tablets.is_empty() {
        return Ok(0);
    }
    let schema = base.schema();
    let bindings = bind(&schema, targets)?;
    let key = schema.key_indices();
    let dims: Vec<usize> = key[..key.len() - 1].to_vec();
    let ts_idx = schema.ts_index();
    let mut folded: Vec<u64> = Vec::with_capacity(tablets.len());
    for (meta, reader) in &tablets {
        // One pass over the tablet feeds every rollup's accumulators.
        // `Value` has no `Hash`/`Eq` (doubles), so groups are keyed by
        // the engine's order-preserving key encoding of the dims plus
        // the bucket, with the original values carried alongside.
        let mut accs: Vec<AccMap> = bindings.iter().map(|_| HashMap::new()).collect();
        let mut cur = DiskCursor::new(reader.clone(), schema.clone(), KeyRange::all(), false)
            .with_read_run(1 << 20);
        while let Some((_key, row)) = cur.next_row()? {
            let ts = match &row.values[ts_idx] {
                Value::Timestamp(t) => *t,
                other => {
                    return Err(Error::corrupt(format!(
                        "non-timestamp ts value {other} in base row"
                    )))
                }
            };
            for (b, acc_map) in bindings.iter().zip(accs.iter_mut()) {
                let bucket = bucket_of(ts, b.spec.period);
                let dim_vals: Vec<Value> = dims.iter().map(|&i| row.values[i].clone()).collect();
                let mut group_key = Vec::new();
                for v in &dim_vals {
                    crate::keyenc::encode_component(&mut group_key, v)?;
                }
                group_key.extend_from_slice(&bucket.to_le_bytes());
                let (_, _, acc) = acc_map.entry(group_key).or_insert_with(|| {
                    (
                        dim_vals,
                        bucket,
                        Acc::new(b.val_idx.len(), b.distinct_idx.len()),
                    )
                });
                acc.rows += 1;
                for (vi, &ci) in b.val_idx.iter().enumerate() {
                    let v = &row.values[ci];
                    if b.val_float[vi] {
                        if let Value::F64(x) = v {
                            acc.sums_f[vi] += x;
                        }
                    } else {
                        match v {
                            Value::I32(x) => acc.sums_i[vi] += *x as i64,
                            Value::I64(x) => acc.sums_i[vi] += x,
                            _ => {}
                        }
                    }
                    let better_min = acc.mins[vi]
                        .as_ref()
                        .is_none_or(|m| cmp_values(v, m) == Some(CmpOrdering::Less));
                    if better_min {
                        acc.mins[vi] = Some(v.clone());
                    }
                    let better_max = acc.maxs[vi]
                        .as_ref()
                        .is_none_or(|m| cmp_values(v, m) == Some(CmpOrdering::Greater));
                    if better_max {
                        acc.maxs[vi] = Some(v.clone());
                    }
                }
                for (di, &ci) in b.distinct_idx.iter().enumerate() {
                    acc.hlls[di].add_bytes(&distinct_bytes(&row.values[ci]));
                }
            }
        }
        // Assemble and insert this tablet's partials into each rollup.
        for (b, acc_map) in bindings.iter().zip(accs) {
            let mut rows: Vec<Vec<Value>> = Vec::with_capacity(acc_map.len());
            for (_, (dim_vals, bucket, acc)) in acc_map {
                let mut row = dim_vals;
                row.push(Value::I64(meta.id as i64));
                row.push(Value::Timestamp(bucket));
                row.push(Value::I64(acc.rows));
                for vi in 0..b.val_idx.len() {
                    if b.val_float[vi] {
                        row.push(Value::F64(acc.sums_f[vi]));
                    } else {
                        row.push(Value::I64(acc.sums_i[vi]));
                    }
                    row.push(widen(acc.mins[vi].clone().unwrap_or(Value::I64(0))));
                    row.push(widen(acc.maxs[vi].clone().unwrap_or(Value::I64(0))));
                }
                for hll in &acc.hlls {
                    row.push(Value::Blob(hll.to_bytes()));
                }
                rows.push(row);
            }
            if !rows.is_empty() {
                // Duplicates mean a previous fold of this tablet already
                // landed (crash before the rolled_up mark); rejection is
                // the idempotency we rely on.
                b.table.insert(rows)?;
            }
        }
        folded.push(meta.id);
    }
    // Make the partials durable before the rolled_up mark commits: the
    // mark is the point of no return, after which these tablets become
    // merge-eligible and lose their identity.
    for b in &bindings {
        b.table.flush_all()?;
    }
    base.mark_rolled_up(&folded)?;
    TableStats::add(&base.stats().rollup_folds, folded.len() as u64);
    Ok(folded.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("net", ColumnType::I64),
                ColumnDef::new("dev", ColumnType::I32),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("bytes", ColumnType::I64),
                ColumnDef::new("load", ColumnType::F64),
                ColumnDef::new("user", ColumnType::Str),
            ],
            &["net", "dev", "ts"],
        )
        .unwrap()
    }

    fn spec() -> RollupSpec {
        RollupSpec {
            name: "usage_1h".into(),
            base: "usage".into(),
            period: 3_600_000_000,
            value_cols: vec!["bytes".into(), "load".into()],
            distinct_cols: vec!["user".into()],
        }
    }

    #[test]
    fn spec_round_trips() {
        let s = spec();
        let back = RollupSpec::decode(&s.encode()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn spec_detects_corruption() {
        let mut data = spec().encode();
        data[9] ^= 0x10;
        assert!(RollupSpec::decode(&data).is_err());
        assert!(RollupSpec::decode(&data[..6]).is_err());
    }

    #[test]
    fn schema_derivation_layout() {
        let s = rollup_schema(&base_schema(), &spec()).unwrap();
        let names: Vec<&str> = s.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "net",
                "dev",
                "chunk",
                "ts",
                "rows",
                "bytes_sum",
                "bytes_min",
                "bytes_max",
                "load_sum",
                "load_min",
                "load_max",
                "user_hll",
            ]
        );
        // Dims keep their base types; stats widen int32 to int64.
        assert_eq!(s.columns()[1].ty, ColumnType::I32);
        assert_eq!(s.columns()[5].ty, ColumnType::I64);
        assert_eq!(s.columns()[8].ty, ColumnType::F64);
        assert_eq!(s.key_len(), 4);
    }

    #[test]
    fn schema_derivation_rejects_bad_columns() {
        let mut sp = spec();
        sp.value_cols = vec!["user".into()];
        assert!(rollup_schema(&base_schema(), &sp).is_err());
        let mut sp = spec();
        sp.value_cols = vec!["nope".into()];
        assert!(rollup_schema(&base_schema(), &sp).is_err());
        let mut sp = spec();
        sp.distinct_cols = vec!["ts".into()];
        assert!(rollup_schema(&base_schema(), &sp).is_err());
        let mut sp = spec();
        sp.period = 0;
        assert!(rollup_schema(&base_schema(), &sp).is_err());
    }

    #[test]
    fn buckets_align_to_period() {
        assert_eq!(bucket_of(0, 10), 0);
        assert_eq!(bucket_of(9, 10), 0);
        assert_eq!(bucket_of(10, 10), 10);
        assert_eq!(bucket_of(-1, 10), -10);
        assert_eq!(bucket_of(-10, 10), -10);
    }

    #[test]
    fn distinct_bytes_normalizes_int_family() {
        assert_eq!(
            distinct_bytes(&Value::I32(7)),
            distinct_bytes(&Value::I64(7))
        );
        assert_ne!(
            distinct_bytes(&Value::I64(7)),
            distinct_bytes(&Value::F64(7.0))
        );
        assert_ne!(
            distinct_bytes(&Value::Str("a".into())),
            distinct_bytes(&Value::Blob(b"a".to_vec()))
        );
    }

    use crate::db::Db;
    use crate::options::Options;
    use crate::query::Query;
    use littletable_hll::HyperLogLog;
    use littletable_vfs::{SimClock, SimVfs};

    const START: Micros = 1_700_000_000_000_000;
    const HOUR: Micros = 3_600_000_000;

    fn test_db() -> (Db, SimVfs, SimClock) {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        let db = Db::open(
            std::sync::Arc::new(vfs.clone()),
            std::sync::Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        (db, vfs, clock)
    }

    fn row(net: i64, dev: i32, ts: Micros, bytes: i64, load: f64, user: &str) -> Vec<Value> {
        vec![
            Value::I64(net),
            Value::I32(dev),
            Value::Timestamp(ts),
            Value::I64(bytes),
            Value::F64(load),
            Value::Str(user.into()),
        ]
    }

    fn seed_base(db: &Db) -> std::sync::Arc<crate::table::Table> {
        let t = db.create_table("usage", base_schema(), None).unwrap();
        // Two networks, two buckets, with a flush between batches so the
        // fold sees more than one source tablet.
        let mut batch = Vec::new();
        for i in 0..20 {
            batch.push(row(1, 1, START + i * 60_000_000, 100, 0.5, "alice"));
            batch.push(row(2, 1, START + i * 60_000_000, 10, 1.5, "bob"));
        }
        t.insert(batch).unwrap();
        t.flush_all().unwrap();
        let mut batch = Vec::new();
        for i in 0..20 {
            batch.push(row(1, 1, START + HOUR + i * 60_000_000, 7, 0.25, "carol"));
        }
        t.insert(batch).unwrap();
        t.flush_all().unwrap();
        t
    }

    #[test]
    fn create_rollup_backfills_existing_tablets() {
        let (db, _, _) = test_db();
        let base = seed_base(&db);
        let r = db
            .create_rollup(
                "usage_1h",
                "usage",
                HOUR,
                vec!["bytes".into(), "load".into()],
                vec!["user".into()],
            )
            .unwrap();
        let rows = r.query_all(&Query::all()).unwrap();
        // Aggregate partials across source tablets per (net, bucket).
        let mut per_group: std::collections::BTreeMap<(i64, Micros), (i64, i64)> =
            std::collections::BTreeMap::new();
        for row in &rows {
            let net = match row.values[0] {
                Value::I64(n) => n,
                _ => panic!("bad net"),
            };
            let bucket = match row.values[3] {
                Value::Timestamp(t) => t,
                _ => panic!("bad bucket"),
            };
            let n = match row.values[4] {
                Value::I64(n) => n,
                _ => panic!("bad rows"),
            };
            let sum = match row.values[5] {
                Value::I64(s) => s,
                _ => panic!("bad sum"),
            };
            let e = per_group.entry((net, bucket)).or_insert((0, 0));
            e.0 += n;
            e.1 += sum;
        }
        let mut expect = std::collections::BTreeMap::new();
        expect.insert((1, bucket_of(START, HOUR)), (20, 2000));
        expect.insert((2, bucket_of(START, HOUR)), (20, 200));
        expect.insert((1, bucket_of(START + HOUR, HOUR)), (20, 140));
        assert_eq!(per_group, expect);
        // Every backfilled tablet is marked so maintenance will not refold.
        assert_eq!(
            crate::rollup::fold_base(&base, &db_targets(&db), false).unwrap(),
            0
        );
    }

    fn db_targets(
        db: &Db,
    ) -> Vec<(
        std::sync::Arc<RollupSpec>,
        std::sync::Arc<crate::table::Table>,
    )> {
        db.rollup_specs_for("usage")
            .into_iter()
            .map(|s| {
                let t = db.table(&s.name).unwrap();
                (s, t)
            })
            .collect()
    }

    #[test]
    fn maintenance_folds_new_tablets_incrementally() {
        let (db, _, _) = test_db();
        let base = seed_base(&db);
        db.create_rollup("usage_1h", "usage", HOUR, vec!["bytes".into()], vec![])
            .unwrap();
        // New data after the rollup exists gets folded by maintenance.
        base.insert(vec![row(9, 9, START + 2 * HOUR, 42, 0.0, "dave")])
            .unwrap();
        base.flush_all().unwrap();
        let report = db.maintain_table("usage").unwrap();
        assert_eq!(report.tablets_folded, 1);
        let r = db.table("usage_1h").unwrap();
        let rows = r
            .query_all(&Query::all().with_prefix(vec![Value::I64(9)]))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[5], Value::I64(42));
        assert!(base.stats().snapshot().rollup_folds >= 1);
    }

    #[test]
    fn hll_partials_merge_to_true_distinct_count() {
        let (db, _, _) = test_db();
        let t = db.create_table("usage", base_schema(), None).unwrap();
        // 50 distinct users spread over several tablets within one bucket.
        for chunk in 0..5 {
            let mut batch = Vec::new();
            for u in 0..10 {
                let user = format!("user-{}", chunk * 10 + u);
                batch.push(row(1, 1, START + (chunk * 10 + u) * 1_000, 1, 0.0, &user));
            }
            t.insert(batch).unwrap();
            t.flush_all().unwrap();
        }
        db.create_rollup("usage_1h", "usage", HOUR, vec![], vec!["user".into()])
            .unwrap();
        let r = db.table("usage_1h").unwrap();
        let mut merged = HyperLogLog::default_precision();
        for row in r.query_all(&Query::all()).unwrap() {
            let blob = match row.values.last().unwrap() {
                Value::Blob(b) => b.clone(),
                _ => panic!("expected hll blob"),
            };
            merged.merge(&HyperLogLog::from_bytes(&blob).unwrap());
        }
        let est = merged.estimate();
        assert!((40.0..60.0).contains(&est), "estimate {est} out of range");
    }

    #[test]
    fn rollups_survive_reopen_and_keep_folding() {
        let clock = SimClock::new(START);
        let vfs = SimVfs::instant();
        let db = Db::open(
            std::sync::Arc::new(vfs.clone()),
            std::sync::Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let t = db.create_table("usage", base_schema(), None).unwrap();
        t.insert(vec![row(1, 1, START, 5, 0.0, "alice")]).unwrap();
        t.flush_all().unwrap();
        db.create_rollup("usage_1h", "usage", HOUR, vec!["bytes".into()], vec![])
            .unwrap();
        db.shutdown();
        drop(db);

        let db = Db::open(
            std::sync::Arc::new(vfs.clone()),
            std::sync::Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let specs = db.rollup_specs_for("usage");
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name, "usage_1h");
        // The reopened base keeps feeding the rollup.
        let t = db.table("usage").unwrap();
        t.insert(vec![row(1, 1, START + HOUR, 6, 0.0, "bob")])
            .unwrap();
        t.flush_all().unwrap();
        let report = db.maintain_table("usage").unwrap();
        assert_eq!(report.tablets_folded, 1);
        let rows = db
            .table("usage_1h")
            .unwrap()
            .query_all(&Query::all())
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn drop_table_removes_dependent_rollups() {
        let (db, _, _) = test_db();
        seed_base(&db);
        db.create_rollup("usage_1h", "usage", HOUR, vec!["bytes".into()], vec![])
            .unwrap();
        db.drop_table("usage").unwrap();
        assert!(db.table("usage_1h").is_err());
        assert!(db.list_rollups().is_empty());
    }

    #[test]
    fn drop_rollup_clears_merge_gate() {
        let (db, _, _) = test_db();
        let base = seed_base(&db);
        db.create_rollup("usage_1h", "usage", HOUR, vec!["bytes".into()], vec![])
            .unwrap();
        assert!(base
            .rollup_source
            .load(std::sync::atomic::Ordering::Acquire));
        db.drop_rollup("usage_1h").unwrap();
        assert!(!base
            .rollup_source
            .load(std::sync::atomic::Ordering::Acquire));
        assert!(db.drop_rollup("usage").is_err());
    }

    #[test]
    fn watermark_tracks_unfolded_data() {
        let (db, _, _) = test_db();
        let base = seed_base(&db);
        // Nothing folded yet: watermark sits at the oldest unfolded row.
        assert_eq!(base.rollup_watermark(), START);
        db.create_rollup("usage_1h", "usage", HOUR, vec!["bytes".into()], vec![])
            .unwrap();
        // Everything on disk is folded and memory is empty.
        assert_eq!(base.rollup_watermark(), Micros::MAX);
        base.insert(vec![row(1, 1, START + 3 * HOUR, 1, 0.0, "x")])
            .unwrap();
        assert_eq!(base.rollup_watermark(), START + 3 * HOUR);
    }
}
