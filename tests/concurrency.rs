//! Multi-threaded stress test for the snapshot-isolated read path:
//! reader threads run `query` and `latest` continuously while writer
//! threads insert and a maintenance thread advances the simulated clock
//! and drives seals, flushes, and merges. Every observed view must be a
//! consistent snapshot — for each writer, the visible rows form a
//! contiguous prefix of that writer's insertion order with no gaps and
//! no duplicates, and the visible count never goes backwards between a
//! reader's successive queries.

use littletable::vfs::{Clock, SimClock, SimVfs, MICROS_PER_SEC};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

const START: i64 = 1_700_000_000 * MICROS_PER_SEC;
const WRITERS: usize = 2;
const ROWS_PER_WRITER: i64 = 4000;
const READERS: usize = 3;

fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("writer", ColumnType::I64),
            ColumnDef::new("seq", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::I64),
        ],
        &["writer", "seq", "ts"],
    )
    .unwrap()
}

#[test]
fn readers_see_consistent_snapshots_under_maintenance() {
    let clock = SimClock::new(START);
    let vfs = SimVfs::instant();
    let mut opts = Options::small_for_tests();
    // Small flushes so the run crosses many seal/flush/merge transitions.
    opts.flush_size = 4 << 10;
    let db = Db::open(Arc::new(vfs), Arc::new(clock.clone()), opts).unwrap();
    let table = db.create_table("s", schema(), None).unwrap();

    let writers_done = Arc::new(AtomicBool::new(false));
    // Per-writer count of fully completed inserts, for the final oracle.
    let committed: Arc<Vec<AtomicU64>> =
        Arc::new((0..WRITERS).map(|_| AtomicU64::new(0)).collect());

    thread::scope(|s| {
        for w in 0..WRITERS as i64 {
            let table = table.clone();
            let committed = committed.clone();
            // Writer 1 writes into an old period so two filling tablets
            // (with flush-dependency edges between them) stay live.
            let base = if w % 2 == 0 {
                START
            } else {
                START - 30 * 24 * 3600 * MICROS_PER_SEC
            };
            s.spawn(move || {
                for i in 0..ROWS_PER_WRITER {
                    let r = table
                        .insert(vec![vec![
                            Value::I64(w),
                            Value::I64(i),
                            Value::Timestamp(base + i),
                            Value::I64(w * 1_000_000 + i),
                        ]])
                        .unwrap();
                    assert_eq!(r.inserted, 1, "writer {w} row {i} must be unique");
                    committed[w as usize].fetch_add(1, Ordering::SeqCst);
                }
            });
        }

        for _ in 0..READERS {
            let table = table.clone();
            let writers_done = writers_done.clone();
            let committed = committed.clone();
            s.spawn(move || {
                // Visible-count floors: consistency requires the count per
                // writer never to shrink between successive snapshots.
                let mut floors = [0u64; WRITERS];
                let mut latest_floor = [-1i64; WRITERS];
                loop {
                    let done = writers_done.load(Ordering::SeqCst);
                    // Lower bounds taken BEFORE the query: rows committed
                    // before this point must all be visible.
                    let lower: Vec<u64> =
                        committed.iter().map(|c| c.load(Ordering::SeqCst)).collect();
                    let rows = table.query_all(&Query::all()).unwrap();
                    let mut seen: Vec<Vec<i64>> = vec![Vec::new(); WRITERS];
                    for row in &rows {
                        let (Value::I64(w), Value::I64(i)) = (&row.values[0], &row.values[1])
                        else {
                            panic!("unexpected row shape: {row:?}")
                        };
                        seen[*w as usize].push(*i);
                    }
                    for w in 0..WRITERS {
                        seen[w].sort_unstable();
                        // Contiguous prefix: no gap and no duplicate means
                        // the sorted seqs are exactly 0..len.
                        for (expect, got) in seen[w].iter().enumerate() {
                            assert_eq!(
                                *got,
                                expect as i64,
                                "writer {w}: gap or duplicate in {:?}...",
                                &seen[w][..seen[w].len().min(20)]
                            );
                        }
                        let n = seen[w].len() as u64;
                        assert!(
                            n >= lower[w],
                            "writer {w}: snapshot lost rows ({n} < committed {})",
                            lower[w]
                        );
                        assert!(
                            n >= floors[w],
                            "writer {w}: visible count went backwards ({n} < {})",
                            floors[w]
                        );
                        floors[w] = n;

                        // `latest` must agree with the same consistency
                        // floor: the newest seq it reports never regresses.
                        let latest = table.latest(&[Value::I64(w as i64)]).unwrap();
                        let latest_seq = match latest {
                            Some(row) => match row.values[1] {
                                Value::I64(i) => i,
                                ref v => panic!("bad latest seq {v:?}"),
                            },
                            None => -1,
                        };
                        assert!(
                            latest_seq >= latest_floor[w],
                            "writer {w}: latest() went backwards ({latest_seq} < {})",
                            latest_floor[w]
                        );
                        latest_floor[w] = latest_seq;
                    }
                    if done {
                        break;
                    }
                }
            });
        }

        // Maintenance: advance the simulated clock past the flush age and
        // run seal/flush/merge passes concurrently with everything else.
        let maintenance = {
            let table = table.clone();
            let writers_done = writers_done.clone();
            let clock = clock.clone();
            s.spawn(move || {
                while !writers_done.load(Ordering::SeqCst) {
                    clock.advance(61 * MICROS_PER_SEC);
                    table.maintain(clock.now_micros()).unwrap();
                }
            })
        };

        // First scope'd threads spawned are the writers; wait for their
        // counters instead of join handles so readers keep overlapping.
        while committed
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .sum::<u64>()
            < (WRITERS as i64 * ROWS_PER_WRITER) as u64
        {
            thread::yield_now();
        }
        writers_done.store(true, Ordering::SeqCst);
        maintenance.join().unwrap();
    });

    // Final oracle: everything every writer committed is visible exactly
    // once, after a last round of maintenance settles the tablet set.
    table.flush_all().unwrap();
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    let rows = table.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len() as i64, WRITERS as i64 * ROWS_PER_WRITER);
    for w in 0..WRITERS as i64 {
        let latest = table.latest(&[Value::I64(w)]).unwrap().unwrap();
        assert_eq!(latest.values[1], Value::I64(ROWS_PER_WRITER - 1));
    }
    // The read path really ran snapshot-based: every query and latest
    // call above loaded a published snapshot without the state mutex.
    let stats = table.stats().snapshot();
    assert!(stats.snapshot_loads > 0);
    assert!(stats.snapshot_publishes > 0);
    assert!(stats.latest_calls > 0);
}
