//! Multi-threaded stress test for the snapshot-isolated read path:
//! reader threads run `query` and `latest` continuously while writer
//! threads insert and a maintenance thread advances the simulated clock
//! and drives seals, flushes, and merges. Every observed view must be a
//! consistent snapshot — for each writer, the visible rows form a
//! contiguous prefix of that writer's insertion order with no gaps and
//! no duplicates, and the visible count never goes backwards between a
//! reader's successive queries.

use littletable::vfs::{Clock, SimClock, SimVfs, MICROS_PER_SEC};
use littletable::{
    ColumnDef, ColumnType, Db, Error, Options, Query, Schema, Session, SqlOutput, Value,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

const START: i64 = 1_700_000_000 * MICROS_PER_SEC;
const WRITERS: usize = 2;
const ROWS_PER_WRITER: i64 = 4000;
const READERS: usize = 3;

fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("writer", ColumnType::I64),
            ColumnDef::new("seq", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::I64),
        ],
        &["writer", "seq", "ts"],
    )
    .unwrap()
}

#[test]
fn readers_see_consistent_snapshots_under_maintenance() {
    let clock = SimClock::new(START);
    let vfs = SimVfs::instant();
    let mut opts = Options::small_for_tests();
    // Small flushes so the run crosses many seal/flush/merge transitions.
    opts.flush_size = 4 << 10;
    let db = Db::open(Arc::new(vfs), Arc::new(clock.clone()), opts).unwrap();
    let table = db.create_table("s", schema(), None).unwrap();

    let writers_done = Arc::new(AtomicBool::new(false));
    // Per-writer count of fully completed inserts, for the final oracle.
    let committed: Arc<Vec<AtomicU64>> =
        Arc::new((0..WRITERS).map(|_| AtomicU64::new(0)).collect());

    thread::scope(|s| {
        for w in 0..WRITERS as i64 {
            let table = table.clone();
            let committed = committed.clone();
            // Writer 1 writes into an old period so two filling tablets
            // (with flush-dependency edges between them) stay live.
            let base = if w % 2 == 0 {
                START
            } else {
                START - 30 * 24 * 3600 * MICROS_PER_SEC
            };
            s.spawn(move || {
                for i in 0..ROWS_PER_WRITER {
                    let r = table
                        .insert(vec![vec![
                            Value::I64(w),
                            Value::I64(i),
                            Value::Timestamp(base + i),
                            Value::I64(w * 1_000_000 + i),
                        ]])
                        .unwrap();
                    assert_eq!(r.inserted, 1, "writer {w} row {i} must be unique");
                    committed[w as usize].fetch_add(1, Ordering::SeqCst);
                }
            });
        }

        for _ in 0..READERS {
            let table = table.clone();
            let writers_done = writers_done.clone();
            let committed = committed.clone();
            s.spawn(move || {
                // Visible-count floors: consistency requires the count per
                // writer never to shrink between successive snapshots.
                let mut floors = [0u64; WRITERS];
                let mut latest_floor = [-1i64; WRITERS];
                loop {
                    let done = writers_done.load(Ordering::SeqCst);
                    // Lower bounds taken BEFORE the query: rows committed
                    // before this point must all be visible.
                    let lower: Vec<u64> =
                        committed.iter().map(|c| c.load(Ordering::SeqCst)).collect();
                    let rows = table.query_all(&Query::all()).unwrap();
                    let mut seen: Vec<Vec<i64>> = vec![Vec::new(); WRITERS];
                    for row in &rows {
                        let (Value::I64(w), Value::I64(i)) = (&row.values[0], &row.values[1])
                        else {
                            panic!("unexpected row shape: {row:?}")
                        };
                        seen[*w as usize].push(*i);
                    }
                    for w in 0..WRITERS {
                        seen[w].sort_unstable();
                        // Contiguous prefix: no gap and no duplicate means
                        // the sorted seqs are exactly 0..len.
                        for (expect, got) in seen[w].iter().enumerate() {
                            assert_eq!(
                                *got,
                                expect as i64,
                                "writer {w}: gap or duplicate in {:?}...",
                                &seen[w][..seen[w].len().min(20)]
                            );
                        }
                        let n = seen[w].len() as u64;
                        assert!(
                            n >= lower[w],
                            "writer {w}: snapshot lost rows ({n} < committed {})",
                            lower[w]
                        );
                        assert!(
                            n >= floors[w],
                            "writer {w}: visible count went backwards ({n} < {})",
                            floors[w]
                        );
                        floors[w] = n;

                        // `latest` must agree with the same consistency
                        // floor: the newest seq it reports never regresses.
                        let latest = table.latest(&[Value::I64(w as i64)]).unwrap();
                        let latest_seq = match latest {
                            Some(row) => match row.values[1] {
                                Value::I64(i) => i,
                                ref v => panic!("bad latest seq {v:?}"),
                            },
                            None => -1,
                        };
                        assert!(
                            latest_seq >= latest_floor[w],
                            "writer {w}: latest() went backwards ({latest_seq} < {})",
                            latest_floor[w]
                        );
                        latest_floor[w] = latest_seq;
                    }
                    if done {
                        break;
                    }
                }
            });
        }

        // Maintenance: advance the simulated clock past the flush age and
        // run seal/flush/merge passes concurrently with everything else.
        let maintenance = {
            let table = table.clone();
            let writers_done = writers_done.clone();
            let clock = clock.clone();
            s.spawn(move || {
                while !writers_done.load(Ordering::SeqCst) {
                    clock.advance(61 * MICROS_PER_SEC);
                    table.maintain(clock.now_micros()).unwrap();
                }
            })
        };

        // First scope'd threads spawned are the writers; wait for their
        // counters instead of join handles so readers keep overlapping.
        while committed
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .sum::<u64>()
            < (WRITERS as i64 * ROWS_PER_WRITER) as u64
        {
            thread::yield_now();
        }
        writers_done.store(true, Ordering::SeqCst);
        maintenance.join().unwrap();
    });

    // Final oracle: everything every writer committed is visible exactly
    // once, after a last round of maintenance settles the tablet set.
    table.flush_all().unwrap();
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    let rows = table.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len() as i64, WRITERS as i64 * ROWS_PER_WRITER);
    for w in 0..WRITERS as i64 {
        let latest = table.latest(&[Value::I64(w)]).unwrap().unwrap();
        assert_eq!(latest.values[1], Value::I64(ROWS_PER_WRITER - 1));
    }
    // The read path really ran snapshot-based: every query and latest
    // call above loaded a published snapshot without the state mutex.
    let stats = table.stats().snapshot();
    assert!(stats.snapshot_loads > 0);
    assert!(stats.snapshot_publishes > 0);
    assert!(stats.latest_calls > 0);
}

/// Catalog churn oracle: writer threads create and drop tables in a
/// tight loop while reader threads resolve names through the lock-free
/// catalog. Every observation must be consistent:
///
///  - a static anchor table is present in every `list_tables()` view,
///    and the listing is always sorted;
///  - a handle resolved for a churning slot either serves its single
///    generation-marker row, reports empty (marker not yet inserted),
///    or fails with `NoSuchTable` (drop published first) — never a
///    crash, a stale wrong-generation row, or a torn view;
///  - the generation a reader observes per slot never goes backwards,
///    since catalog publishes are totally ordered.
///
/// Runs under the TSan CI job, which is what actually checks that the
/// mutex-free `Db::table()` / `list_tables()` loads race cleanly with
/// concurrent `create_table` / `drop_table` publishes.
#[test]
fn catalog_churn_keeps_lookups_consistent() {
    const SLOTS: usize = 2;
    const ROUNDS: u64 = 150;
    const CHURN_READERS: usize = 3;

    let clock = SimClock::new(START);
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let anchor = db.create_table("anchor", schema(), None).unwrap();
    anchor
        .insert(vec![vec![
            Value::I64(0),
            Value::I64(0),
            Value::Timestamp(START),
            Value::I64(7),
        ]])
        .unwrap();

    let churn_done = Arc::new(AtomicBool::new(false));
    thread::scope(|s| {
        let mut churners = Vec::new();
        for slot in 0..SLOTS {
            let db = &db;
            churners.push(s.spawn(move || {
                let name = format!("churn{slot}");
                for generation in 0..ROUNDS {
                    let t = db.create_table(&name, schema(), None).unwrap();
                    t.insert(vec![vec![
                        Value::I64(slot as i64),
                        Value::I64(generation as i64),
                        Value::Timestamp(START + generation as i64),
                        Value::I64(generation as i64),
                    ]])
                    .unwrap();
                    thread::yield_now();
                    db.drop_table(&name).unwrap();
                }
            }));
        }

        for _ in 0..CHURN_READERS {
            let db = &db;
            let churn_done = churn_done.clone();
            s.spawn(move || {
                let mut gen_floor = [-1i64; SLOTS];
                loop {
                    let done = churn_done.load(Ordering::SeqCst);
                    let names = db.list_tables();
                    assert!(
                        names.windows(2).all(|w| w[0] < w[1]),
                        "list_tables not sorted/deduped: {names:?}"
                    );
                    assert!(
                        names.iter().any(|n| n == "anchor"),
                        "anchor table vanished from {names:?}"
                    );
                    let anchor = db.table("anchor").expect("anchor must always resolve");
                    assert_eq!(anchor.query_all(&Query::all()).unwrap().len(), 1);
                    for (slot, floor) in gen_floor.iter_mut().enumerate() {
                        let Ok(t) = db.table(&format!("churn{slot}")) else {
                            continue;
                        };
                        match t.query_all(&Query::all()) {
                            Ok(rows) => {
                                assert!(rows.len() <= 1, "slot {slot}: {rows:?}");
                                if let Some(row) = rows.first() {
                                    let Value::I64(generation) = row.values[1] else {
                                        panic!("bad marker row {row:?}");
                                    };
                                    assert!(
                                        generation >= *floor,
                                        "slot {slot}: generation went backwards \
                                         ({generation} < {floor})"
                                    );
                                    *floor = generation;
                                }
                            }
                            // The slot was dropped between the catalog
                            // load and the query; the handle must fail
                            // cleanly, not crash or serve another
                            // generation's data.
                            Err(Error::NoSuchTable(_)) => {}
                            Err(e) => panic!("slot {slot}: unexpected error {e}"),
                        }
                    }
                    if done {
                        break;
                    }
                }
            });
        }

        for c in churners {
            c.join().unwrap();
        }
        churn_done.store(true, Ordering::SeqCst);
    });

    // Every churner's last action was a drop: only the anchor remains.
    assert_eq!(db.list_tables(), vec!["anchor".to_string()]);
    let stats = db.stats();
    assert!(stats.catalog_loads > 0, "lookups must count catalog loads");
    // One publish per create and per drop: the anchor plus every
    // create/drop pair across all slots and rounds.
    assert_eq!(
        stats.catalog_publishes,
        1 + 2 * (SLOTS as u64) * ROUNDS,
        "unexpected publish count"
    );
    assert_eq!(stats.tables, 1);
}

/// Recreating a dropped name must yield a fresh, empty table, while
/// handles and cursors over the old generation keep serving the old
/// data (or fail with `NoSuchTable` for new calls) — they never bleed
/// into the new generation.
#[test]
fn drop_and_recreate_same_name_isolates_generations() {
    let clock = SimClock::new(START);
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();

    let old = db.create_table("t", schema(), None).unwrap();
    old.insert(vec![vec![
        Value::I64(1),
        Value::I64(1),
        Value::Timestamp(START),
        Value::I64(10),
    ]])
    .unwrap();

    // An in-flight cursor pins the old generation's snapshot before the
    // drop lands.
    let mut cursor = old.query(&Query::all()).unwrap();

    db.drop_table("t").unwrap();
    assert!(matches!(db.table("t"), Err(Error::NoSuchTable(_))));

    // The pinned cursor still drains the old generation's rows.
    let row = cursor
        .next_row()
        .unwrap()
        .expect("in-flight cursor lost its snapshot");
    assert_eq!(row.values[3], Value::I64(10));
    assert!(cursor.next_row().unwrap().is_none());

    // New calls through the old handle fail cleanly.
    assert!(matches!(
        old.query_all(&Query::all()),
        Err(Error::NoSuchTable(_))
    ));
    assert!(matches!(
        old.insert(vec![vec![
            Value::I64(2),
            Value::I64(2),
            Value::Timestamp(START),
            Value::I64(20),
        ]]),
        Err(Error::NoSuchTable(_))
    ));

    // Recreate under the same name: a distinct, empty table.
    let new = db.create_table("t", schema(), None).unwrap();
    assert!(!Arc::ptr_eq(&old, &new));
    assert_eq!(new.query_all(&Query::all()).unwrap().len(), 0);
    new.insert(vec![vec![
        Value::I64(3),
        Value::I64(3),
        Value::Timestamp(START),
        Value::I64(30),
    ]])
    .unwrap();
    assert_eq!(new.query_all(&Query::all()).unwrap().len(), 1);

    // The old handle still refuses to serve the new generation's data.
    assert!(matches!(
        old.query_all(&Query::all()),
        Err(Error::NoSuchTable(_))
    ));

    // Drop again with rows on disk this time: flush, then drop, then
    // recreate — the fresh table must not resurrect flushed tablets.
    new.flush_all().unwrap();
    db.drop_table("t").unwrap();
    let third = db.create_table("t", schema(), None).unwrap();
    assert_eq!(third.query_all(&Query::all()).unwrap().len(), 0);
    assert_eq!(third.num_disk_tablets(), 0);
}

/// The query-result cache keys on the table's generation, so a result
/// computed against generation N of a name must never be served for
/// generation N+1. One churner creates a table, inserts a
/// generation-marker row, primes the cache with an aggregate query, and
/// drops the table, in a tight loop; reader threads run the *identical*
/// SQL text the whole time and must only ever observe a marker from the
/// current or a newer generation — never a cached answer from a dead
/// one. Runs under the TSan CI job alongside the catalog-churn oracle.
#[test]
fn result_cache_never_crosses_generations() {
    const RC_ROUNDS: i64 = 120;
    const RC_READERS: usize = 3;
    const Q: &str = "SELECT MAX(v), COUNT(*) FROM churn_rc";

    let clock = SimClock::new(START);
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();

    let answer = |out: SqlOutput| -> (i64, i64) {
        let SqlOutput::Rows { rows, .. } = out else {
            panic!("aggregate query must return rows, got {out:?}");
        };
        assert_eq!(rows.len(), 1, "one aggregate row expected");
        let (Value::I64(max), Value::I64(count)) = (&rows[0][0], &rows[0][1]) else {
            panic!("bad aggregate row {:?}", rows[0]);
        };
        (*max, *count)
    };

    let churn_done = Arc::new(AtomicBool::new(false));
    thread::scope(|s| {
        let churner = {
            let db = db.clone();
            s.spawn(move || {
                let session = Session::new(db.clone());
                for generation in 0..RC_ROUNDS {
                    let t = db.create_table("churn_rc", schema(), None).unwrap();
                    t.insert(vec![vec![
                        Value::I64(0),
                        Value::I64(generation),
                        Value::Timestamp(START + generation),
                        Value::I64(generation),
                    ]])
                    .unwrap();
                    // Prime the cache against this generation; the
                    // session must see its own write, not a stale entry.
                    let (max, count) = answer(session.execute(Q).unwrap());
                    assert_eq!(
                        (max, count),
                        (generation, 1),
                        "churner read its own generation wrong"
                    );
                    thread::yield_now();
                    db.drop_table("churn_rc").unwrap();
                }
            })
        };

        for _ in 0..RC_READERS {
            let db = db.clone();
            let churn_done = churn_done.clone();
            s.spawn(move || {
                let session = Session::new(db);
                let mut floor = -1i64;
                loop {
                    let done = churn_done.load(Ordering::SeqCst);
                    match session.execute(Q) {
                        Ok(out) => {
                            let (max, count) = answer(out);
                            match count {
                                // A fresh generation before its marker
                                // landed.
                                0 => {}
                                1 => {
                                    assert!(
                                        (0..RC_ROUNDS).contains(&max),
                                        "impossible marker {max}"
                                    );
                                    assert!(
                                        max >= floor,
                                        "cached result crossed generations \
                                         ({max} < floor {floor})"
                                    );
                                    floor = max;
                                }
                                n => panic!("marker table held {n} rows"),
                            }
                        }
                        // Dropped between catalog load and execution.
                        Err(Error::NoSuchTable(_)) => {}
                        Err(e) => panic!("unexpected error {e}"),
                    }
                    if done {
                        break;
                    }
                }
            });
        }

        churner.join().unwrap();
        churn_done.store(true, Ordering::SeqCst);
    });

    // Deterministic tail: the final generation's answer is computed
    // once and then served from the cache, while the dead generations'
    // entries stay unreachable forever.
    let session = Session::new(db.clone());
    let t = db.create_table("churn_rc", schema(), None).unwrap();
    t.insert(vec![vec![
        Value::I64(0),
        Value::I64(7777),
        Value::Timestamp(START),
        Value::I64(7777),
    ]])
    .unwrap();
    assert_eq!(answer(session.execute(Q).unwrap()), (7777, 1));
    let before = db.stats();
    assert_eq!(answer(session.execute(Q).unwrap()), (7777, 1));
    let after = db.stats();
    assert_eq!(
        after.result_cache_hits,
        before.result_cache_hits + 1,
        "identical question on an unchanged table must be a cache hit"
    );
}
