//! Full-stack integration: real files (StdVfs), the TCP server, the
//! client adaptor, and the SQL session over one engine — the paper's
//! whole §3.1 deployment shape in one process.

use littletable::client::Client;
use littletable::server::Server;
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Session, SqlOutput, Value};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "lt-e2e-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

fn usage_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("network", ColumnType::I64),
            ColumnDef::new("device", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("bytes", ColumnType::I64),
        ],
        &["network", "device", "ts"],
    )
    .unwrap()
}

#[test]
fn tcp_client_sql_session_and_restart_on_real_files() {
    let dir = temp_dir("stack");
    {
        let db = Db::open_local(&dir, Options::small_for_tests()).unwrap();
        let mut server = Server::bind(db.clone(), "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let addr = server.local_addr();

        // Client creates the table and streams rows over TCP.
        let mut client = Client::connect(addr).unwrap();
        client.create_table("usage", usage_schema(), None).unwrap();
        let now = 1_700_000_000_000_000i64;
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                vec![
                    Value::I64(1 + i % 3),
                    Value::I64(1 + i % 7),
                    Value::Timestamp(now + i),
                    Value::I64(i),
                ]
            })
            .collect();
        let (inserted, dups) = client.insert("usage", rows).unwrap();
        assert_eq!((inserted, dups), (500, 0));

        // A SQL session against the same engine sees the data.
        let session = Session::new(db.clone());
        let SqlOutput::Rows { rows, .. } = session
            .execute("SELECT COUNT(*), SUM(bytes) FROM usage WHERE network = 1")
            .unwrap()
        else {
            panic!("expected rows")
        };
        let Value::I64(count) = rows[0][0] else {
            panic!()
        };
        assert!(count > 0);

        // The client reads its own writes through key-ordered queries.
        let got = client
            .query("usage", &Query::all().with_prefix(vec![Value::I64(2)]))
            .unwrap();
        assert!(!got.is_empty());

        db.flush_all().unwrap();
        server.shutdown();
        db.shutdown();
    }
    // A new process (new Db) recovers everything from the directory.
    {
        let db = Db::open_local(&dir, Options::small_for_tests()).unwrap();
        let table = db.table("usage").unwrap();
        assert_eq!(table.query_all(&Query::all()).unwrap().len(), 500);
        let session = Session::new(db);
        let SqlOutput::Rows { rows, .. } = session
            .execute("SELECT network, COUNT(*) FROM usage GROUP BY network")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(rows.len(), 3);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sql_ddl_dml_lifecycle_on_real_files() {
    let dir = temp_dir("sql");
    let db = Db::open_local(&dir, Options::small_for_tests()).unwrap();
    let session = Session::new(db.clone());
    session
        .execute(
            "CREATE TABLE events (net INT64, dev INT64, ts TIMESTAMP, \
             kind TEXT, PRIMARY KEY (net, dev, ts)) TTL '30d'",
        )
        .unwrap();
    session
        .execute(
            "INSERT INTO events (net, dev, kind) VALUES \
             (1, 1, 'assoc'), (1, 2, 'dhcp_lease'), (2, 1, 'disassoc')",
        )
        .unwrap();
    session
        .execute("ALTER TABLE events ADD COLUMN vlan INT64 DEFAULT -1")
        .unwrap();
    session
        .execute("INSERT INTO events (net, dev, kind, vlan) VALUES (2, 2, 'assoc', 7)")
        .unwrap();
    db.flush_all().unwrap();
    let SqlOutput::Rows { rows, .. } = session
        .execute("SELECT kind, vlan FROM events WHERE net = 2 ORDER BY net, dev")
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][1], Value::I64(-1)); // pre-evolution row translated
    assert_eq!(rows[1][1], Value::I64(7));
    session.execute("DROP TABLE events").unwrap();
    assert!(session.execute("SELECT * FROM events").is_err());
    db.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_maintenance_thread_flushes_by_age() {
    let dir = temp_dir("bg");
    let mut opts = Options::small_for_tests();
    opts.background = true;
    opts.maintenance_interval_ms = 20;
    opts.flush_age = 1; // everything is immediately age-due
    opts.flush_size = usize::MAX;
    let db = Db::open_local(&dir, opts).unwrap();
    let table = db.create_table("t", usage_schema(), None).unwrap();
    table
        .insert(vec![vec![
            Value::I64(1),
            Value::I64(1),
            Value::Timestamp(1_700_000_000_000_000),
            Value::I64(42),
        ]])
        .unwrap();
    // The background thread should flush it within a few intervals.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while table.num_disk_tablets() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "background flush never happened"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(table.query_all(&Query::all()).unwrap().len(), 1);
    db.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_writers_and_readers_do_not_interfere() {
    let dir = temp_dir("conc");
    let db = Db::open_local(&dir, Options::small_for_tests()).unwrap();
    let table = db.create_table("t", usage_schema(), None).unwrap();
    let now = 1_700_000_000_000_000i64;
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let t = table.clone();
            std::thread::spawn(move || {
                for i in 0..500i64 {
                    t.insert(vec![vec![
                        Value::I64(w),
                        Value::I64(i),
                        Value::Timestamp(now + w * 10_000 + i),
                        Value::I64(i),
                    ]])
                    .unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let t = table.clone();
            std::thread::spawn(move || {
                let key = |r: &littletable::Row| -> (i64, i64) {
                    match (&r.values[0], &r.values[1]) {
                        (Value::I64(a), Value::I64(b)) => (*a, *b),
                        _ => panic!("unexpected key types"),
                    }
                };
                for _ in 0..50 {
                    let rows = t.query_all(&Query::all()).unwrap();
                    // Results are always sorted and duplicate-free.
                    for w in rows.windows(2) {
                        assert!(key(&w[0]) < key(&w[1]), "unsorted or duplicate");
                    }
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    for h in readers {
        h.join().unwrap();
    }
    db.flush_all().unwrap();
    assert_eq!(table.query_all(&Query::all()).unwrap().len(), 2000);
    db.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
