//! Long-horizon behaviour of the time-period machinery (§3.4.2): as
//! virtual weeks pass, recent data stays finely clustered while history
//! coarsens into day- and week-sized tablets, merges never cross period
//! boundaries, and recent queries stay efficient regardless of how much
//! history accumulates ("retaining infrequently-read data does not affect
//! the access performance of data queried more often", §1).

use littletable::core::descriptor::TableDescriptor;
use littletable::core::period::period_for;
use littletable::vfs::{Clock, SimClock, SimVfs, Vfs};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Value};
use std::sync::Arc;

const START: i64 = 1_700_000_000_000_000;
const MINUTE: i64 = 60 * 1_000_000;
const HOUR: i64 = 60 * MINUTE;
const DAY: i64 = 24 * HOUR;

fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("dev", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::I64),
        ],
        &["dev", "ts"],
    )
    .unwrap()
}

/// Simulates `days` of steady inserts with maintenance, returning the
/// final descriptor and the engine handles.
fn simulate(days: i64) -> (SimVfs, SimClock, Db) {
    let clock = SimClock::new(START);
    let vfs = SimVfs::instant();
    let mut opts = Options::small_for_tests();
    opts.flush_size = 32 << 10;
    opts.merge_delay = 0;
    let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
    let table = db.create_table("t", schema(), None).unwrap();
    let step = 10 * MINUTE;
    while clock.now_micros() - START < days * DAY {
        let now = clock.now_micros();
        let rows: Vec<Vec<Value>> = (1..=4i64)
            .map(|d| vec![Value::I64(d), Value::Timestamp(now), Value::I64(d)])
            .collect();
        table.insert(rows).unwrap();
        clock.advance(step);
        db.maintain().unwrap();
    }
    db.maintain_until_quiescent().unwrap();
    (vfs, clock, db)
}

#[test]
fn history_coarsens_but_never_crosses_periods() {
    let (vfs, clock, _db) = simulate(18);
    let now = clock.now_micros();
    let desc = TableDescriptor::load(&vfs, "t").unwrap();
    assert!(desc.tablets.len() > 3);
    let mut kinds = std::collections::BTreeSet::new();
    for t in &desc.tablets {
        let p_lo = period_for(t.min_ts, now);
        let p_hi = period_for(t.max_ts, now);
        // No tablet spans more than one period (small overlap from the
        // multi-filling-tablet path is allowed only within merges of the
        // same period; assert the common case strictly for merged bulk).
        if t.max_ts < t.min_ts + p_lo.kind.len() {
            assert_eq!(p_lo, p_hi, "tablet {t:?} crosses periods");
        }
        kinds.insert(format!("{:?}", p_lo.kind));
    }
    // Old weeks exist as week-binned tablets, recent data as finer bins.
    assert!(kinds.contains("Week"), "kinds = {kinds:?}");
    assert!(kinds.len() >= 2, "expected mixed granularity: {kinds:?}");
}

#[test]
fn recent_query_cost_is_independent_of_history() {
    // A table with 3 days of history vs one with 18 days: the same
    // recent-window query should scan a similar number of rows.
    let ratios: Vec<f64> = [3i64, 18]
        .iter()
        .map(|&days| {
            let (_vfs, clock, db) = simulate(days);
            let table = db.table("t").unwrap();
            let now = clock.now_micros();
            let q = Query::all()
                .with_prefix(vec![Value::I64(2)])
                .with_ts_range(now - 2 * HOUR, now);
            let mut cur = table.query(&q).unwrap();
            let mut n = 0;
            while cur.next_row().unwrap().is_some() {
                n += 1;
            }
            assert!(n > 0);
            cur.scanned() as f64 / cur.returned() as f64
        })
        .collect();
    assert!(
        ratios[1] <= ratios[0] * 3.0 + 2.0,
        "recent-query scan ratio grew with history: {ratios:?}"
    );
}

#[test]
fn ttl_reaps_whole_weeks_as_they_expire() {
    let clock = SimClock::new(START);
    let vfs = SimVfs::instant();
    let mut opts = Options::small_for_tests();
    opts.flush_size = 32 << 10;
    opts.merge_delay = 0;
    let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
    let ttl = 7 * DAY;
    let table = db.create_table("t", schema(), Some(ttl)).unwrap();
    for day in 0..21i64 {
        for h in 0..24 {
            let now = START + day * DAY + h * HOUR;
            clock.set(now);
            table
                .insert(vec![vec![
                    Value::I64(1),
                    Value::Timestamp(now),
                    Value::I64(day),
                ]])
                .unwrap();
            db.maintain().unwrap();
        }
    }
    db.maintain_until_quiescent().unwrap();
    // Only the last week (plus period-boundary slack) remains queryable,
    // and the expired tablets' files are actually gone.
    let rows = table.query_all(&Query::all()).unwrap();
    let min_ts = rows
        .iter()
        .map(|r| match r.values[1] {
            Value::Timestamp(t) => t,
            _ => unreachable!(),
        })
        .min()
        .unwrap();
    assert!(min_ts >= clock.now_micros() - ttl);
    assert!(table.stats().snapshot().tablets_expired > 0);
    let desc = TableDescriptor::load(&vfs, "t").unwrap();
    let files = vfs.list_dir("t").unwrap();
    // Every tablet file on disk is referenced by the descriptor.
    assert_eq!(
        files.iter().filter(|f| f.ends_with(".lt")).count(),
        desc.tablets.len()
    );
}
