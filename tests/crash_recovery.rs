//! Cross-crate crash-recovery tests: LittleTable's durability contract is
//! exactly prefix durability per table (§3.1), with atomic descriptor
//! replacement and orphan cleanup — exercised here with the simulated
//! VFS's deterministic crash injection. Hand-picked scenarios live here;
//! the exhaustive every-op sweep lives in `tests/fault_sweep.rs`. Both
//! are built from the same harness (`tests/common/mod.rs`) so the
//! invariants they check cannot drift apart.

mod common;

use common::*;
use littletable::vfs::{Clock, FaultKind, FaultPlan, FaultRule, OpKind, SimClock, SimVfs, Vfs};
use littletable::{ColumnDef, ColumnType, Query, Value};

#[test]
fn repeated_crashes_always_preserve_a_prefix() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let mut next;
    let mut durable_floor = 0u64;
    for round in 0..8 {
        let db = open_db(&vfs, &clock).unwrap();
        let table = match db.table(TABLE) {
            Ok(t) => t,
            Err(_) => db.create_table(TABLE, schema(), None).unwrap(),
        };
        // Whatever survived must be exactly a prefix 0..k with
        // k >= durable_floor.
        let idx = visible_indices(&table);
        for (i, n) in idx.iter().enumerate() {
            assert_eq!(*n, i as u64, "round {round}: hole in prefix");
        }
        assert!(
            idx.len() as u64 >= durable_floor,
            "round {round}: lost flushed rows"
        );
        next = idx.len() as u64;
        // Insert more, flush some of it, crash.
        for _ in 0..50 {
            table.insert(vec![make_row(next, 3)]).unwrap();
            next += 1;
        }
        table.flush_all().unwrap();
        durable_floor = next;
        for _ in 0..30 {
            table.insert(vec![make_row(next, 3)]).unwrap();
            next += 1;
        }
        clock.advance(1_000_000);
        vfs.crash();
    }
}

#[test]
fn merge_then_crash_preserves_everything_durable() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open_db(&vfs, &clock).unwrap();
    let table = db.create_table(TABLE, schema(), None).unwrap();
    for i in 0..3000 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    table.flush_all().unwrap();
    let before_tablets = table.num_disk_tablets();
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    assert!(table.num_disk_tablets() < before_tablets);
    vfs.crash();
    let db2 = open_db(&vfs, &clock).unwrap();
    let rows = db2.table(TABLE).unwrap().query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 3000);
    check_descriptor_consistency(&vfs);
}

#[test]
fn crash_between_merge_file_write_and_commit_is_clean() {
    // Simulate the window where the merged tablet file exists durably but
    // the descriptor doesn't reference it: write a synced orphan by hand
    // (as if a dir-sync from a concurrent commit made it visible), crash,
    // and reopen — recovery must delete it, not serve it.
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open_db(&vfs, &clock).unwrap();
    let table = db.create_table(TABLE, schema(), None).unwrap();
    for i in 0..100 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    table.flush_all().unwrap();
    let orphan = format!("{TABLE}/tab-0000000000009999.lt");
    {
        let mut w = vfs.create(&orphan, 0).unwrap();
        w.append(b"unfinished merge output").unwrap();
        w.sync().unwrap();
        vfs.sync_dir(TABLE).unwrap();
    }
    vfs.crash();
    let db2 = open_db(&vfs, &clock).unwrap();
    let table2 = db2.table(TABLE).unwrap();
    assert_eq!(table2.query_all(&Query::all()).unwrap().len(), 100);
    assert!(!vfs.exists(&orphan), "orphan not cleaned");
    check_descriptor_consistency(&vfs);
}

#[test]
fn merge_crash_at_descriptor_commit_leaves_no_orphan() {
    // The same window, reached organically: run a real merge and crash at
    // the rename that would commit its descriptor. The merge output was
    // written and synced but never referenced; after reboot the store
    // must hold exactly the pre-merge data and no stray tablet file.
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open_db(&vfs, &clock).unwrap();
    let table = db.create_table(TABLE, schema(), None).unwrap();
    for i in 0..100 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    table.flush_all().unwrap();
    for i in 100..200 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    table.flush_all().unwrap();
    assert!(table.num_disk_tablets() >= 2, "need tablets worth merging");
    vfs.set_fault_plan(
        FaultPlan::new().rule(
            FaultRule::new(FaultKind::Crash)
                .on_ops(&[OpKind::Rename])
                .on_path("DESC"),
        ),
    );
    table
        .run_merge_once(clock.now_micros())
        .expect_err("merge must die at the injected crash");
    assert!(vfs.faults_injected() > 0, "crash never fired");
    vfs.crash();
    vfs.clear_fault_plan();
    let db2 = open_db(&vfs, &clock).unwrap();
    let table2 = db2.table(TABLE).unwrap();
    let idx = visible_indices(&table2);
    assert_eq!(
        idx,
        (0..200).collect::<Vec<u64>>(),
        "rows lost in merge crash"
    );
    check_descriptor_consistency(&vfs);
}

#[test]
fn desc_tmp_cleanup_survives_double_crash() {
    // Regression: reopening removes a stale `DESC.tmp`, and that removal
    // must itself be made durable. Without the dir-sync after the unlink,
    // a second crash resurrects the tmp file and every reopen repeats the
    // cleanup without ever retiring it.
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open_db(&vfs, &clock).unwrap();
    let table = db.create_table(TABLE, schema(), None).unwrap();
    for i in 0..20 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    table.flush_all().unwrap();
    drop((table, db));
    // A crash mid-save leaves a synced-but-unrenamed DESC.tmp behind.
    let tmp = format!("{TABLE}/DESC.tmp");
    {
        let mut w = vfs.create(&tmp, 0).unwrap();
        w.append(b"half-written descriptor").unwrap();
        w.sync().unwrap();
        vfs.sync_dir(TABLE).unwrap();
    }
    vfs.crash();
    assert!(vfs.exists(&tmp), "setup: tmp must survive the first crash");

    // First reopen retires the tmp file...
    let db2 = open_db(&vfs, &clock).unwrap();
    assert_eq!(
        db2.table(TABLE)
            .unwrap()
            .query_all(&Query::all())
            .unwrap()
            .len(),
        20
    );
    assert!(!vfs.exists(&tmp), "reopen must remove the stale tmp");
    drop(db2);

    // ...and a second crash must not resurrect it.
    vfs.crash();
    assert!(
        !vfs.exists(&tmp),
        "DESC.tmp resurrected: its removal was never made durable"
    );
    let db3 = open_db(&vfs, &clock).unwrap();
    assert_eq!(
        db3.table(TABLE)
            .unwrap()
            .query_all(&Query::all())
            .unwrap()
            .len(),
        20
    );
    check_descriptor_consistency(&vfs);
}

#[test]
fn ttl_state_survives_restart() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    {
        let db = open_db(&vfs, &clock).unwrap();
        let table = db.create_table(TABLE, schema(), Some(TTL)).unwrap();
        table.insert(vec![make_row(0, 3)]).unwrap();
        table
            .insert(vec![vec![
                Value::I64(1),
                Value::Timestamp(START + 2 * TTL),
                Value::I64(10),
            ]])
            .unwrap();
        table.flush_all().unwrap();
    }
    clock.set(START + 2 * TTL + 1);
    let db2 = open_db(&vfs, &clock).unwrap();
    let table = db2.table(TABLE).unwrap();
    assert_eq!(table.ttl(), Some(TTL));
    // Row 0 expired (filtered), row 1 current.
    let rows = table.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].values[0], Value::I64(1));
    // Reaping after restart removes the expired tablet's file.
    let reaped = table.ttl_reap(clock.now_micros()).unwrap();
    assert!(reaped >= 1);
    assert_eq!(table.query_all(&Query::all()).unwrap().len(), 1);
}

#[test]
fn schema_evolution_survives_crash() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    {
        let db = open_db(&vfs, &clock).unwrap();
        let table = db.create_table(TABLE, schema(), None).unwrap();
        table.insert(vec![make_row(0, 3)]).unwrap();
        table.flush_all().unwrap();
        table
            .add_column(ColumnDef::with_default(
                "extra",
                ColumnType::Str,
                Value::Str("-".into()),
            ))
            .unwrap();
        table
            .insert(vec![vec![
                Value::I64(1),
                Value::Timestamp(START + STEP),
                Value::I64(10),
                Value::Str("new".into()),
            ]])
            .unwrap();
        table.flush_all().unwrap();
    }
    vfs.crash();
    let db2 = open_db(&vfs, &clock).unwrap();
    let table = db2.table(TABLE).unwrap();
    assert_eq!(table.schema().num_columns(), 4);
    let rows = table.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].values[3], Value::Str("-".into()));
    assert_eq!(rows[1].values[3], Value::Str("new".into()));
}

#[test]
fn dropped_table_stays_dropped_after_crash() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    {
        let db = open_db(&vfs, &clock).unwrap();
        let t = db.create_table("gone", schema(), None).unwrap();
        t.insert(vec![make_row(0, 3)]).unwrap();
        db.flush_all().unwrap();
        db.drop_table("gone").unwrap();
        // Make the removal durable (files deleted; descriptor gone).
        vfs.sync_dir("gone").unwrap();
        vfs.sync_dir("").unwrap();
    }
    vfs.crash();
    let db2 = open_db(&vfs, &clock).unwrap();
    assert!(db2.table("gone").is_err());
}

#[test]
fn torn_rename_in_descriptor_swap_window_is_survivable() {
    // The nastiest moment in the descriptor lifecycle: the machine dies
    // *inside* the `DESC.tmp` -> `DESC` swap, with the rename's directory
    // entry journaled ahead of the file data (what a metadata-journaling
    // file system can do). Because `TableDescriptor::save` fsyncs the tmp
    // file before renaming it, the journaled entry points at fully
    // durable bytes: recovery must find the NEW descriptor, not a
    // truncated one, and lose nothing that was flushed.
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open_db(&vfs, &clock).unwrap();
    let table = db.create_table(TABLE, schema(), None).unwrap();
    for i in 0..40 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    table.flush_all().unwrap(); // DESC v1, durable
    for i in 40..80 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    // Tear the next descriptor swap: the flush writes tablets, then
    // saves DESC v2 — and the machine halts inside the rename.
    vfs.set_fault_plan(
        FaultPlan::new().rule(
            FaultRule::new(FaultKind::TornRename)
                .on_ops(&[OpKind::Rename])
                .on_path("DESC")
                .times(1),
        ),
    );
    table
        .flush_all()
        .expect_err("flush must surface the mid-swap crash");
    assert!(vfs.halted(), "torn rename must halt the machine");
    assert_eq!(vfs.faults_injected(), 1);

    // Reboot. The journaled rename committed a fully-synced descriptor
    // (the fsync-before-rename discipline), so the table must open
    // cleanly — no bricked store, no truncated-DESC decode error. The
    // interrupted flush never acked, so its rows may or may not have
    // made it; whatever survived must be a clean prefix no shorter than
    // the last acked flush (40 rows).
    vfs.crash();
    vfs.clear_fault_plan();
    let db2 = open_db(&vfs, &clock).expect("reopen after torn DESC swap");
    check_descriptor_consistency(&vfs);
    let t2 = db2.table(TABLE).unwrap();
    let idx = visible_indices(&t2);
    assert!(idx.len() >= 40, "acked flush lost: {} rows", idx.len());
    assert!(idx.len() <= 80, "rows invented: {} rows", idx.len());
    for (i, n) in idx.iter().enumerate() {
        assert_eq!(*n, i as u64, "hole in recovered prefix");
    }
    // The client's re-send contract completes the picture: the tail
    // re-sends exactly once, recovered rows deduplicate.
    let floor = idx.len() as u64;
    let rep = t2.insert(vec![make_row(floor - 1, 3)]).unwrap();
    assert_eq!((rep.inserted, rep.duplicates), (0, 1));
    for i in floor..80 {
        let rep = t2.insert(vec![make_row(i, 3)]).unwrap();
        assert_eq!((rep.inserted, rep.duplicates), (1, 0), "re-send of {i}");
    }
    t2.flush_all().unwrap();
    assert_eq!(visible_indices(&t2), (0..80).collect::<Vec<u64>>());
}

#[test]
fn torn_rename_outside_the_sync_discipline_loses_the_unsynced_tail() {
    // Companion negative control for the regression above: rename an
    // unsynced file and the journaled entry points at a truncated inode.
    // This is the failure mode `TableDescriptor::save`'s fsync-before-
    // rename discipline exists to rule out.
    let vfs = SimVfs::instant();
    vfs.mkdir_all("d").unwrap();
    let mut w = vfs.create("d/cfg.tmp", 0).unwrap();
    w.append(b"synced-half").unwrap();
    w.sync().unwrap();
    w.append(b"-unsynced-half").unwrap();
    drop(w);
    vfs.sync_dir("").unwrap();
    vfs.sync_dir("d").unwrap();
    vfs.set_fault_plan(
        FaultPlan::new().rule(FaultRule::new(FaultKind::TornRename).on_ops(&[OpKind::Rename])),
    );
    vfs.rename("d/cfg.tmp", "d/cfg").unwrap_err();
    vfs.crash();
    assert!(vfs.exists("d/cfg"), "journaled entry must survive");
    assert_eq!(
        vfs.file_size("d/cfg").unwrap(),
        b"synced-half".len() as u64,
        "unsynced tail must be gone"
    );
}
