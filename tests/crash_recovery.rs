//! Cross-crate crash-recovery tests: LittleTable's durability contract is
//! exactly prefix durability per table (§3.1), with atomic descriptor
//! replacement and orphan cleanup — exercised here with the simulated
//! VFS's deterministic crash injection.

use littletable::vfs::{Clock, SimClock, SimVfs};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Value};
use std::sync::Arc;

const START: i64 = 1_700_000_000_000_000;

fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("n", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::I64),
        ],
        &["n", "ts"],
    )
    .unwrap()
}

fn open(vfs: &SimVfs, clock: &SimClock) -> Db {
    Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap()
}

fn row(n: i64, ts: i64) -> Vec<Value> {
    vec![Value::I64(n), Value::Timestamp(ts), Value::I64(n)]
}

#[test]
fn repeated_crashes_always_preserve_a_prefix() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let mut next;
    let mut durable_floor = 0i64;
    for round in 0..8 {
        let db = open(&vfs, &clock);
        let table = match db.table("t") {
            Ok(t) => t,
            Err(_) => db.create_table("t", schema(), None).unwrap(),
        };
        // Whatever survived must be exactly a prefix 0..k with
        // k >= durable_floor.
        let rows = table.query_all(&Query::all()).unwrap();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.values[0],
                Value::I64(i as i64),
                "round {round}: hole in prefix"
            );
        }
        assert!(
            rows.len() as i64 >= durable_floor,
            "round {round}: lost flushed rows"
        );
        next = rows.len() as i64;
        // Insert more, flush some of it, crash.
        for _ in 0..50 {
            table.insert(vec![row(next, START + next)]).unwrap();
            next += 1;
        }
        table.flush_all().unwrap();
        durable_floor = next;
        for _ in 0..30 {
            table.insert(vec![row(next, START + next)]).unwrap();
            next += 1;
        }
        clock.advance(1_000_000);
        vfs.crash();
    }
}

#[test]
fn merge_then_crash_preserves_everything_durable() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open(&vfs, &clock);
    let table = db.create_table("t", schema(), None).unwrap();
    for i in 0..3000i64 {
        table.insert(vec![row(i, START + i)]).unwrap();
    }
    table.flush_all().unwrap();
    let before_tablets = table.num_disk_tablets();
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    assert!(table.num_disk_tablets() < before_tablets);
    vfs.crash();
    let db2 = open(&vfs, &clock);
    let rows = db2.table("t").unwrap().query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 3000);
}

#[test]
fn crash_between_merge_file_write_and_commit_is_clean() {
    // Simulate the window where the merged tablet file exists but the
    // descriptor doesn't reference it: write a fake orphan and crash.
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open(&vfs, &clock);
    let table = db.create_table("t", schema(), None).unwrap();
    for i in 0..100i64 {
        table.insert(vec![row(i, START + i)]).unwrap();
    }
    table.flush_all().unwrap();
    {
        use littletable::vfs::Vfs;
        let mut w = vfs.create("t/tab-0000000000009999.lt", 0).unwrap();
        w.append(b"unfinished merge output").unwrap();
        w.sync().unwrap();
        vfs.sync_dir("t").unwrap();
    }
    vfs.crash();
    let db2 = open(&vfs, &clock);
    let table2 = db2.table("t").unwrap();
    assert_eq!(table2.query_all(&Query::all()).unwrap().len(), 100);
    use littletable::vfs::Vfs;
    assert!(
        !vfs.exists("t/tab-0000000000009999.lt"),
        "orphan not cleaned"
    );
}

#[test]
fn ttl_state_survives_restart() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let ttl = 3600 * 1_000_000i64;
    {
        let db = open(&vfs, &clock);
        let table = db.create_table("t", schema(), Some(ttl)).unwrap();
        table.insert(vec![row(0, START)]).unwrap();
        table.insert(vec![row(1, START + 2 * ttl)]).unwrap();
        table.flush_all().unwrap();
    }
    clock.set(START + 2 * ttl + 1);
    let db2 = open(&vfs, &clock);
    let table = db2.table("t").unwrap();
    assert_eq!(table.ttl(), Some(ttl));
    // Row 0 expired (filtered), row 1 current.
    let rows = table.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].values[0], Value::I64(1));
    // Reaping after restart removes the expired tablet's file.
    let reaped = table.ttl_reap(clock.now_micros()).unwrap();
    assert!(reaped >= 1);
    assert_eq!(table.query_all(&Query::all()).unwrap().len(), 1);
}

#[test]
fn schema_evolution_survives_crash() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    {
        let db = open(&vfs, &clock);
        let table = db.create_table("t", schema(), None).unwrap();
        table.insert(vec![row(0, START)]).unwrap();
        table.flush_all().unwrap();
        table
            .add_column(ColumnDef::with_default(
                "extra",
                ColumnType::Str,
                Value::Str("-".into()),
            ))
            .unwrap();
        table
            .insert(vec![vec![
                Value::I64(1),
                Value::Timestamp(START + 1),
                Value::I64(1),
                Value::Str("new".into()),
            ]])
            .unwrap();
        table.flush_all().unwrap();
    }
    vfs.crash();
    let db2 = open(&vfs, &clock);
    let table = db2.table("t").unwrap();
    assert_eq!(table.schema().num_columns(), 4);
    let rows = table.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].values[3], Value::Str("-".into()));
    assert_eq!(rows[1].values[3], Value::Str("new".into()));
}

#[test]
fn dropped_table_stays_dropped_after_crash() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    {
        let db = open(&vfs, &clock);
        let t = db.create_table("gone", schema(), None).unwrap();
        t.insert(vec![row(0, START)]).unwrap();
        db.flush_all().unwrap();
        db.drop_table("gone").unwrap();
        // Make the removal durable (files deleted; descriptor gone).
        use littletable::vfs::Vfs;
        vfs.sync_dir("gone").unwrap();
        vfs.sync_dir("").unwrap();
    }
    vfs.crash();
    let db2 = open(&vfs, &clock);
    assert!(db2.table("gone").is_err());
}
