//! Model-independence tests: the simulated disk changes *when* things
//! happen (virtual time), never *what* the engine computes — plus sanity
//! checks that the disk model reproduces the paper's headline access
//! costs through the real engine stack.

use littletable::vfs::{Clock, DiskParams, SimClock, SimVfs};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Value};
use std::sync::Arc;

const START: i64 = 1_700_000_000_000_000;

fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("k", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::Blob),
        ],
        &["k", "ts"],
    )
    .unwrap()
}

/// Runs the same insert/flush/merge/query sequence on a given disk and
/// returns the query results.
fn run_sequence(params: DiskParams) -> Vec<Vec<Value>> {
    let clock = SimClock::new(START);
    let vfs = SimVfs::new(params, clock.clone());
    let db = Db::open(
        Arc::new(vfs),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let table = db.create_table("t", schema(), None).unwrap();
    for i in 0..2000i64 {
        table
            .insert(vec![vec![
                Value::I64(i * 7 % 2000),
                Value::Timestamp(START + i),
                Value::Blob(vec![(i % 251) as u8; 40]),
            ]])
            .unwrap();
        if i % 500 == 499 {
            table.flush_all().unwrap();
        }
    }
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    table
        .query_all(&Query::all().with_ts_range(START + 100, START + 1500))
        .unwrap()
        .into_iter()
        .map(|r| r.values)
        .collect()
}

#[test]
fn disk_model_never_changes_results() {
    let instant = run_sequence(DiskParams::instant());
    let paper = run_sequence(DiskParams::paper_disk());
    let big_ra = run_sequence(DiskParams::paper_disk().with_os_readahead(1 << 20));
    assert_eq!(instant, paper);
    assert_eq!(instant, big_ra);
    assert_eq!(instant.len(), 1400);
}

#[test]
fn cold_point_query_costs_about_four_seeks_per_tablet() {
    // The paper's headline: ~31 ms to the first row of an uncached table
    // (inode + trailer + footer + block = 4 seeks at 8 ms).
    let clock = SimClock::new(START);
    let vfs = SimVfs::new(DiskParams::paper_disk(), clock.clone());
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let table = db.create_table("t", schema(), None).unwrap();
    for i in 0..5000i64 {
        table
            .insert(vec![vec![
                Value::I64(i),
                Value::Timestamp(START + i),
                Value::Blob(vec![0u8; 100]),
            ]])
            .unwrap();
    }
    table.flush_all().unwrap();
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    assert_eq!(table.num_disk_tablets(), 1);
    // Cold: new engine, cleared caches.
    let db2 = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    vfs.clear_caches();
    let t2 = db2.table("t").unwrap();
    let t0 = clock.now_micros();
    let mut cur = t2
        .query(&Query::all().with_prefix(vec![Value::I64(2500)]))
        .unwrap();
    assert!(cur.next_row().unwrap().is_some());
    let ms = (clock.now_micros() - t0) as f64 / 1e3;
    assert!(
        (25.0..45.0).contains(&ms),
        "first-row latency {ms} ms, expected ~31 ms"
    );
}

#[test]
fn virtual_time_only_accrues_on_io() {
    let clock = SimClock::new(START);
    let vfs = SimVfs::new(DiskParams::paper_disk(), clock.clone());
    let db = Db::open(
        Arc::new(vfs),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let table = db.create_table("t", schema(), None).unwrap();
    let t0 = clock.now_micros();
    // Pure in-memory activity costs zero virtual time.
    table
        .insert(vec![vec![
            Value::I64(1),
            Value::Timestamp(START),
            Value::Blob(vec![0; 8]),
        ]])
        .unwrap();
    let _ = table.query_all(&Query::all()).unwrap();
    assert_eq!(clock.now_micros() - t0, 0);
    // Flushing pays for the write.
    table.flush_all().unwrap();
    assert!(clock.now_micros() > t0);
}
