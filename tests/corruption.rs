//! Corruption-path suite: every way a tablet file can rot on disk —
//! truncation, flipped magic, overflowing trailer geometry, footer CRC
//! damage, zeroed or bit-flipped block bytes — must surface as
//! `Error::Corrupt`, never a panic, with the two-tier block cache enabled
//! and disabled alike. Runs under the debug profile too, so checked
//! arithmetic (overflow panics on) is exercised for real.
//!
//! Footer-level damage is caught eagerly at open, where the default
//! policy quarantines the tablet (renamed aside, dropped from the
//! descriptor) and `Options::strict_open` restores fail-fast; block-level
//! damage passes open (the footer validates) and must fail the query.

use littletable::core::block::BlockFormat;
use littletable::core::descriptor::parse_tablet_file_name;
use littletable::core::table::{PushdownRequest, QUARANTINE_SUFFIX};
use littletable::vfs::{join, Clock, SimClock, SimVfs, Vfs};
use littletable::{ColumnDef, ColumnType, Db, Error, Options, Query, Schema, Value};
use std::sync::Arc;

const START: i64 = 1_700_000_000_000_000;

/// Trailer layout: [ulen u64][clen u64][footer_off u64][crc u32][magic u64].
const TRAILER_LEN: usize = 36;

fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("k", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::Blob),
        ],
        &["k", "ts"],
    )
    .unwrap()
}

fn read_file(vfs: &SimVfs, path: &str) -> Vec<u8> {
    let f = vfs.open(path).unwrap();
    let len = f.len().unwrap() as usize;
    let mut buf = vec![0u8; len];
    f.read_exact_at(0, &mut buf).unwrap();
    buf
}

fn write_file(vfs: &SimVfs, path: &str, bytes: &[u8]) {
    let mut f = vfs.create(path, bytes.len() as u64).unwrap();
    f.append(bytes).unwrap();
    f.sync().unwrap();
}

/// Writes a real merged tablet, applies `mutate` to its file bytes, and
/// returns the VFS + clock + corrupted file path, ready for reopening.
fn build_corrupted(mutate: &dyn Fn(&mut Vec<u8>)) -> (SimVfs, SimClock, String) {
    build_corrupted_as(BlockFormat::Columnar, mutate)
}

/// Like [`build_corrupted`], but writing blocks in the given format, so
/// the same damage is exercised against the row (footer v2) and
/// columnar (footer v3) layouts.
fn build_corrupted_as(
    format: BlockFormat,
    mutate: &dyn Fn(&mut Vec<u8>),
) -> (SimVfs, SimClock, String) {
    let clock = SimClock::new(START);
    let vfs = SimVfs::instant();
    let build_opts = Options {
        block_format: format,
        ..Options::small_for_tests()
    };
    let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), build_opts).unwrap();
    let table = db.create_table("t", schema(), None).unwrap();
    for i in 0..600i64 {
        table
            .insert(vec![vec![
                Value::I64(i),
                Value::Timestamp(START + i),
                Value::Blob(vec![(i % 251) as u8; 100]),
            ]])
            .unwrap();
    }
    table.flush_all().unwrap();
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    drop((table, db));

    let tablet_name = vfs
        .list_dir("t")
        .unwrap()
        .into_iter()
        .find(|name| parse_tablet_file_name(name).is_some())
        .expect("merged table must have a tablet file");
    let path = join("t", &tablet_name);
    let mut bytes = read_file(&vfs, &path);
    mutate(&mut bytes);
    write_file(&vfs, &path, &bytes);
    (vfs, clock, path)
}

/// Reopens the corrupted store and returns the error the query path
/// yields. Queried twice so a partial first read can't leave a cache tier
/// that masks (or worse, trips over) the corruption on the retry.
fn corrupt_and_query(
    format: BlockFormat,
    cache_bytes: usize,
    mutate: &dyn Fn(&mut Vec<u8>),
) -> Error {
    let (vfs, clock, _) = build_corrupted_as(format, mutate);
    let opts = Options {
        block_cache_bytes: cache_bytes,
        ..Options::small_for_tests()
    };
    let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
    let table = db.table("t").unwrap();
    let first = table.query_all(&Query::all());
    let second = table.query_all(&Query::all());
    assert!(second.is_err(), "retry after corruption must still fail");
    first.expect_err("corrupted tablet must fail the query")
}

/// Block-level damage: the footer validates at open, so the tablet is
/// served and the query path must yield `Error::Corrupt` with the cache
/// enabled (both tiers in play) and disabled (the paper's uncached path).
fn assert_corrupt(label: &str, mutate: &dyn Fn(&mut Vec<u8>)) {
    for format in [BlockFormat::Row, BlockFormat::Columnar] {
        for cache_bytes in [64 << 20, 0] {
            let err = corrupt_and_query(format, cache_bytes, mutate);
            assert!(
                matches!(err, Error::Corrupt(_)),
                "{label} (format={format:?}, cache_bytes={cache_bytes}): \
                 expected Corrupt, got {err:?}"
            );
        }
    }
}

/// Footer-level damage: caught eagerly at open. Default policy
/// quarantines the tablet and serves the (now empty) table; `strict_open`
/// refuses the open with `Error::Corrupt`.
fn assert_footer_corrupt(label: &str, mutate: &dyn Fn(&mut Vec<u8>)) {
    // Quarantine path.
    let (vfs, clock, path) = build_corrupted(mutate);
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap_or_else(|e| panic!("{label}: default open must quarantine, got {e:?}"));
    let table = db.table("t").unwrap();
    assert_eq!(
        table.stats().snapshot().tablets_quarantined,
        1,
        "{label}: quarantine not counted"
    );
    assert!(
        !vfs.exists(&path) && vfs.exists(&format!("{path}{QUARANTINE_SUFFIX}")),
        "{label}: file not renamed aside"
    );
    let rows = table.query_all(&Query::all()).unwrap();
    assert!(rows.is_empty(), "{label}: quarantined tablet still serving");
    // The table stays writable after losing the tablet.
    table
        .insert(vec![vec![
            Value::I64(9_999),
            Value::Timestamp(START + 9_999),
            Value::Blob(vec![1; 8]),
        ]])
        .unwrap();
    drop((table, db));

    // Fail-fast path.
    let (vfs, clock, _) = build_corrupted(mutate);
    let strict = Options {
        strict_open: true,
        ..Options::small_for_tests()
    };
    let err = Db::open(Arc::new(vfs), Arc::new(clock), strict)
        .err()
        .unwrap_or_else(|| panic!("{label}: strict_open must fail"));
    assert!(
        matches!(err, Error::Corrupt(_)),
        "{label}: expected Corrupt under strict_open, got {err:?}"
    );
}

#[test]
fn truncated_file_is_corrupt() {
    assert_footer_corrupt("truncate to 10 bytes", &|bytes| bytes.truncate(10));
}

#[test]
fn truncated_trailer_is_corrupt() {
    assert_footer_corrupt("drop the last byte", &|bytes| {
        bytes.truncate(bytes.len() - 1)
    });
}

#[test]
fn flipped_magic_is_corrupt() {
    assert_footer_corrupt("flip a magic byte", &|bytes| {
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
    });
}

#[test]
fn overflowing_footer_offset_is_corrupt() {
    // footer_off + clen + TRAILER_LEN overflows u64: the geometry check
    // must use checked arithmetic, not panic in debug builds.
    assert_footer_corrupt("footer_off = u64::MAX", &|bytes| {
        let at = bytes.len() - TRAILER_LEN + 16;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    });
}

#[test]
fn overflowing_compressed_len_is_corrupt() {
    assert_footer_corrupt("clen = u64::MAX", &|bytes| {
        let at = bytes.len() - TRAILER_LEN + 8;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    });
}

#[test]
fn flipped_footer_crc_is_corrupt() {
    assert_footer_corrupt("flip the footer CRC", &|bytes| {
        let at = bytes.len() - 12;
        bytes[at] ^= 0xFF;
    });
}

#[test]
fn flipped_footer_bytes_are_corrupt() {
    // Damage the compressed footer itself; the CRC must catch it.
    assert_footer_corrupt("flip first footer byte", &|bytes| {
        let at = bytes.len() - TRAILER_LEN + 16;
        let footer_off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
        bytes[footer_off] ^= 0xFF;
    });
}

#[test]
fn zeroed_block_bytes_are_corrupt() {
    // Zeroed compressed bytes fail the block's CRC (footer v2) before
    // the decompressor ever runs; under footer v1 they would still fail
    // inside the decompressor (a zero token is followed by a zero
    // back-reference offset, which is invalid).
    assert_corrupt("zero the first block", &|bytes| {
        let at = bytes.len() - TRAILER_LEN + 16;
        let footer_off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
        for b in &mut bytes[..64.min(footer_off)] {
            *b = 0;
        }
    });
}

#[test]
fn flipped_block_bit_is_corrupt() {
    // A single flipped bit inside a block's compressed bytes can keep
    // the compression framing intact and decompress to exactly the
    // expected length with silently wrong row data. The per-block CRC
    // in the footer's index (footer v2) must catch it on read.
    for at in [8usize, 40, 100] {
        assert_corrupt(&format!("flip one bit at offset {at}"), &move |bytes| {
            let trailer_at = bytes.len() - TRAILER_LEN + 16;
            let footer_off =
                u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
            assert!(at < footer_off, "offset must land inside block data");
            bytes[at] ^= 0x01;
        });
    }
}

#[test]
fn flipped_zone_map_bytes_are_corrupt() {
    // The per-column zone maps live in the footer's block index (footer
    // v3). Flip bytes across the compressed footer region — wherever the
    // zones land, the footer CRC must catch the damage at open, so a
    // poisoned zone can never silently prune (or admit) the wrong
    // blocks.
    for frac in [4usize, 2, 3] {
        assert_footer_corrupt(&format!("flip footer byte at len/{frac}"), &move |bytes| {
            let at = bytes.len() - TRAILER_LEN + 16;
            let footer_off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
            let footer_len = bytes.len() - TRAILER_LEN - footer_off;
            bytes[footer_off + footer_len / frac] ^= 0x10;
        });
    }
}

#[test]
fn aggregate_pushdown_surfaces_block_corruption() {
    // A flipped bit inside a columnar block's per-column slices must
    // fail the pushdown scan with `Error::Corrupt` — never feed a wrong
    // slice into an aggregate.
    let (vfs, clock, _) = build_corrupted(&|bytes| {
        let at = bytes.len() - TRAILER_LEN + 16;
        let footer_off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
        bytes[footer_off / 2] ^= 0x01;
    });
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let table = db.table("t").unwrap();

    // Value-reading scan: must hit the damaged block and fail.
    let req = PushdownRequest {
        query: Query::all(),
        predicates: Vec::new(),
        stats_cols: None,
    };
    let res = table.pushdown_scan(&req, &mut |_| Ok(()));
    assert!(
        matches!(res, Err(Error::Corrupt(_))),
        "pushdown over corrupt block must be Corrupt, got {res:?}"
    );

    // Stats-only scan: answered from the (CRC-validated) footer without
    // touching block bytes, so it still returns the exact row count.
    let req = PushdownRequest {
        query: Query::all(),
        predicates: Vec::new(),
        stats_cols: Some(Vec::new()),
    };
    let mut rows = 0u64;
    table
        .pushdown_scan(&req, &mut |u| {
            if let littletable::core::table::ScanUnit::Stats { rows: r, .. } = u {
                rows += r;
            }
            Ok(())
        })
        .unwrap();
    assert_eq!(rows, 600);
}
