//! Exhaustive crash-point / error-point sweep in the FoundationDB/ALICE
//! style: run the deterministic mixed workload once to count its I/O
//! operations, then replay it injecting a crash (or a transient error)
//! after every k-th operation, recover, and machine-check the paper's
//! recovery invariants (see `tests/common/mod.rs` for the oracle).
//!
//! Tier-1 runs a sampled stride across the op space; set `LT_FULL_SWEEP=1`
//! to sweep every single operation. Alongside the sweeps live the
//! graceful-degradation acceptance tests: transient `EIO` retried by
//! background maintenance, `ENOSPC` during flush leaving reads serving,
//! and seeded random fault fuzzing.

mod common;

use common::*;
use littletable::vfs::{
    FaultKind, FaultPlan, FaultRule, FaultVfs, OpKind, RandomFaults, SimClock, SimVfs, StdVfs, Vfs,
};
use littletable::{Db, Options, Query};
use std::path::PathBuf;
use std::sync::Arc;

fn full_sweep() -> bool {
    std::env::var("LT_FULL_SWEEP")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Crash after global op `k`, then run the crash oracle.
fn crash_point(k: u64) {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    vfs.set_fault_plan(FaultPlan::crash_at(k));
    let out = match open_db(&vfs, &clock) {
        Ok(db) => run_workload(&db, &clock, Mode::Stop),
        Err(_) => Outcome::default(),
    };
    assert!(vfs.faults_injected() > 0, "crash point {k} never fired");
    let trace = vfs.take_fault_trace();
    assert_eq!(trace[0].op_index, k, "crash fired at the wrong op");
    verify_crash_recovery(&vfs, &clock, &out);
}

/// Fail global op `k` once with `kind` (no crash), then run the
/// degraded-service oracle on the same live engine.
fn error_point(k: u64, kind: FaultKind) {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    vfs.set_fault_plan(FaultPlan::fail_at(k, kind));
    // If the fault lands inside `Db::open` itself, the client's recourse
    // is to reopen; the single-shot rule is already spent, so the retry
    // must succeed.
    let db = open_db(&vfs, &clock)
        .or_else(|_| open_db(&vfs, &clock))
        .expect("reopen after a single injected fault must succeed");
    let out = run_workload(&db, &clock, Mode::Continue);
    assert!(vfs.faults_injected() > 0, "error point {k} never fired");
    verify_degraded_service(&vfs, &clock, &db, &out);
}

/// Tear the `m`-th append (1-based) short, then verify degraded service.
/// Returns false when the workload performs fewer than `m` appends.
fn torn_point(m: u64) -> bool {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    vfs.set_fault_plan(
        FaultPlan::new().rule(
            FaultRule::new(FaultKind::TornWrite)
                .on_ops(&[OpKind::Append])
                .nth_match(m)
                .times(1),
        ),
    );
    let db = open_db(&vfs, &clock).expect("open performs no appends");
    let out = run_workload(&db, &clock, Mode::Continue);
    if vfs.faults_injected() == 0 {
        return false;
    }
    verify_degraded_service(&vfs, &clock, &db, &out);
    true
}

#[test]
fn workload_op_count_is_stable() {
    let a = count_workload_ops();
    let b = count_workload_ops();
    assert_eq!(a, b, "workload is not I/O-deterministic");
    // Sweep budget: every op gets a crash point and ~n/3 each get an EIO
    // and an ENOSPC point, so n >= 110 keeps the suite above 200 distinct
    // injection points even in sampled mode.
    assert!(
        a >= 110,
        "workload too small to honor the 200-point sweep budget: {a} ops"
    );
}

#[test]
fn crash_point_sweep() {
    let n = count_workload_ops();
    // Floor division so sampling never dips below the 120-point budget
    // as the workload grows (ceil(n / (n/150)) >= 150 for n >= 150).
    let stride = if full_sweep() { 1 } else { (n / 150).max(1) };
    let mut points = 0u64;
    let mut k = 0;
    while k < n {
        crash_point(k);
        points += 1;
        k += stride;
    }
    assert!(
        points >= 120.min(n),
        "crash sweep covered only {points} points"
    );
}

#[test]
fn eio_point_sweep() {
    let n = count_workload_ops();
    let stride = if full_sweep() {
        1
    } else {
        n.div_ceil(45).max(1)
    };
    let mut k = 1; // offset the strides so EIO and ENOSPC hit different ops
    let mut points = 0u64;
    while k < n {
        error_point(k, FaultKind::Eio);
        points += 1;
        k += stride;
    }
    assert!(
        points >= 40.min(n),
        "EIO sweep covered only {points} points"
    );
}

#[test]
fn enospc_point_sweep() {
    let n = count_workload_ops();
    let stride = if full_sweep() {
        1
    } else {
        n.div_ceil(45).max(1)
    };
    let mut k = 2;
    let mut points = 0u64;
    while k < n {
        error_point(k, FaultKind::Enospc);
        points += 1;
        k += stride;
    }
    assert!(
        points >= 40.min(n),
        "ENOSPC sweep covered only {points} points"
    );
}

#[test]
fn torn_write_sweep() {
    let stride = if full_sweep() { 1 } else { 3 };
    let mut m = 1;
    let mut points = 0u64;
    while torn_point(m) {
        points += 1;
        m += stride;
    }
    assert!(points >= 10, "torn sweep covered only {points} appends");
}

/// Fresh scratch directory for a real-filesystem run, kept inside the
/// cargo target tree (tests must not write outside the repo).
fn std_scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("lt-stdvfs-{tag}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn open_std_db(vfs: &FaultVfs<StdVfs>, clock: &SimClock) -> littletable::Result<Db> {
    Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts())
}

/// The real-filesystem analogue of [`error_point`]: the same workload
/// and degraded-service oracle, but the faults are injected by a
/// [`FaultVfs`] wrapped around [`StdVfs`], so the engine's error paths
/// run against genuine OS I/O. The durability epilogue is a graceful
/// process restart over the same directory — a real disk cannot be
/// power-cut, so the SimVfs crash epilogue stays simulation-only.
fn std_error_point(root: PathBuf, k: u64, kind: FaultKind) {
    let vfs = FaultVfs::new(StdVfs::new(&root).expect("create scratch root"));
    let clock = SimClock::new(START);
    vfs.set_fault_plan(FaultPlan::fail_at(k, kind));
    let db = open_std_db(&vfs, &clock)
        .or_else(|_| open_std_db(&vfs, &clock))
        .expect("reopen after a single injected fault must succeed");
    let out = run_workload(&db, &clock, Mode::Continue);
    assert!(
        vfs.faults_injected() > 0,
        "error point {k} never fired on StdVfs"
    );
    vfs.clear_fault_plan();
    if verify_degraded_live(&db, &out).is_some() {
        db.shutdown();
        drop(db);
        let db2 = open_std_db(&vfs, &clock).expect("reopen after degraded episode");
        check_descriptor_consistency(&vfs);
        let table2 = db2.table(TABLE).expect("table lost across restart");
        let expected: Vec<u64> = (EXPIRED_BELOW..TOTAL_ROWS).collect();
        assert_eq!(
            visible_indices(&table2),
            expected,
            "real-FS durability promise broken by a restart"
        );
        db2.shutdown();
    }
    std::fs::remove_dir_all(&root).expect("clean scratch dir");
}

#[test]
fn stdvfs_error_point_sweep() {
    // Baseline: the workload must complete fault-free on a real disk,
    // and its op count (as seen by the wrapper, which meters a slightly
    // different op set than SimVfs) sizes the sweep.
    let base = std_scratch("sweep");
    let n = {
        let root = base.join("baseline");
        let vfs = FaultVfs::new(StdVfs::new(&root).expect("create baseline root"));
        let clock = SimClock::new(START);
        let db = open_std_db(&vfs, &clock).expect("open on StdVfs");
        let out = run_workload(&db, &clock, Mode::Stop);
        assert_eq!(out.acked, TOTAL_ROWS, "fault-free StdVfs run incomplete");
        assert_eq!(out.floor, TOTAL_ROWS);
        db.shutdown();
        vfs.op_count()
    };
    assert!(n >= 16, "StdVfs workload too small to sweep: {n} ops");
    // Tier-1 samples ~8 points per error kind (real-FS runs are slower
    // than simulated ones); LT_FULL_SWEEP=1 visits every op.
    let stride = if full_sweep() { 1 } else { (n / 8).max(1) };
    for (name, kind) in [("eio", FaultKind::Eio), ("enospc", FaultKind::Enospc)] {
        let mut k = if name == "eio" { 1 } else { 2 };
        let mut points = 0u64;
        while k < n {
            std_error_point(base.join(format!("{name}-{k}")), k, kind);
            points += 1;
            k += stride;
        }
        assert!(
            points >= 8.min(n),
            "StdVfs {name} sweep covered only {points} points"
        );
    }
    std::fs::remove_dir_all(&base).expect("clean sweep scratch");
}

#[test]
fn random_fault_fuzz() {
    // Seeded pseudo-random EIO sprinkles: several independent schedules,
    // each deterministic, each ending in the no-data-loss oracle.
    for seed in 0..8u64 {
        let vfs = SimVfs::instant();
        let clock = SimClock::new(START);
        vfs.set_fault_plan(FaultPlan::new().random(RandomFaults {
            seed,
            one_in: 31,
            kind: FaultKind::Eio,
            ops: None,
        }));
        let db = (0..5)
            .find_map(|_| open_db(&vfs, &clock).ok())
            .expect("open keeps failing under sparse random EIO");
        let out = run_workload(&db, &clock, Mode::Continue);
        verify_degraded_service(&vfs, &clock, &db, &out);
    }
}

#[test]
fn random_crash_fuzz() {
    // A random-op crash per seed: equivalent to a crash point drawn from
    // a seeded distribution, checked with the full crash oracle.
    for seed in 0..8u64 {
        let vfs = SimVfs::instant();
        let clock = SimClock::new(START);
        vfs.set_fault_plan(FaultPlan::new().random(RandomFaults {
            seed,
            one_in: 101,
            kind: FaultKind::Crash,
            ops: None,
        }));
        let out = match open_db(&vfs, &clock) {
            Ok(db) => run_workload(&db, &clock, Mode::Stop),
            Err(_) => Outcome::default(),
        };
        verify_crash_recovery(&vfs, &clock, &out);
    }
}

#[test]
fn transient_eio_maintenance_is_retried() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open_db(&vfs, &clock).unwrap();
    let table = db.create_table(TABLE, schema(), None).unwrap();
    for i in 0..50 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    // Age the filling tablet past flush_age so maintenance seals and
    // flushes it, and make the flush's first sync fail once with EIO.
    clock.advance(opts().flush_age + 1);
    vfs.set_fault_plan(
        FaultPlan::new().rule(
            FaultRule::new(FaultKind::Eio)
                .on_ops(&[OpKind::Sync])
                .nth_match(1)
                .times(1),
        ),
    );
    db.maintain()
        .expect("transient EIO must be retried to success");
    let snap = table.stats().snapshot();
    assert!(snap.io_retries >= 1, "retry not counted: {snap:?}");
    assert_eq!(snap.maintenance_errors, 0, "retry should have succeeded");
    assert!(snap.tablets_flushed >= 1, "flush never completed");
    assert_eq!(vfs.faults_injected(), 1);

    // The flushed rows are durable: a crash must not lose them.
    vfs.crash();
    let db2 = open_db(&vfs, &clock).unwrap();
    let rows = db2.table(TABLE).unwrap().query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 50, "rows lost despite successful retry");
}

#[test]
fn enospc_flush_keeps_reads_serving_and_inserts_clean() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let tight = Options {
        max_sealed_backlog: 1,
        ..opts()
    };
    let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), tight).unwrap();
    let table = db.create_table(TABLE, schema(), None).unwrap();
    for i in 0..60 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    // The disk is full for every data write under the table's directory.
    vfs.set_fault_plan(
        FaultPlan::new().rule(FaultRule::new(FaultKind::Enospc).on_ops(&[
            OpKind::Create,
            OpKind::Append,
            OpKind::Sync,
        ])),
    );

    // Flush fails with a clean disk-full error; membership is untouched.
    let err = table.flush_all().expect_err("flush must fail on ENOSPC");
    assert!(err.is_disk_full(), "expected disk-full, got {err:?}");
    assert_eq!(table.num_disk_tablets(), 0, "partial flush published");

    // Reads keep serving everything from memory.
    assert_eq!(table.query_all(&Query::all()).unwrap().len(), 60);

    // More inserts are accepted until the sealed backlog fills; then the
    // inline flush surfaces the same clean error instead of a panic.
    for i in 60..80 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    let _ = table.flush_all(); // seals another group; still failing
    let insert_err = (80..200)
        .map(|i| table.insert(vec![make_row(i, 3)]))
        .find_map(|r| r.err())
        .expect("backlog pressure must surface the disk-full error");
    assert!(insert_err.is_disk_full(), "got {insert_err:?}");

    // Maintenance reports (and counts) the failure without retrying a
    // full disk: ENOSPC is not transient.
    db.maintain().expect_err("maintenance must surface ENOSPC");
    let snap = table.stats().snapshot();
    assert!(snap.maintenance_errors >= 1, "error not counted: {snap:?}");
    assert_eq!(snap.io_retries, 0, "ENOSPC must not be retried");

    // Space returns: everything drains with zero loss.
    vfs.clear_fault_plan();
    table
        .flush_all()
        .expect("flush succeeds once space returns");
    let visible = table.query_all(&Query::all()).unwrap().len();
    vfs.crash();
    let db2 = open_db(&vfs, &clock).unwrap();
    let recovered = db2.table(TABLE).unwrap().query_all(&Query::all()).unwrap();
    assert_eq!(recovered.len(), visible, "rows lost after ENOSPC episode");
}

#[test]
fn failed_sync_is_never_published() {
    // fsync-gate: if the flush's sync fails, the output file must not be
    // referenced by the descriptor nor left on disk.
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open_db(&vfs, &clock).unwrap();
    let table = db.create_table(TABLE, schema(), None).unwrap();
    for i in 0..40 {
        table.insert(vec![make_row(i, 3)]).unwrap();
    }
    vfs.set_fault_plan(
        FaultPlan::new().rule(
            FaultRule::new(FaultKind::Eio)
                .on_ops(&[OpKind::Sync])
                .on_path("tab-")
                .times(1),
        ),
    );
    table
        .flush_all()
        .expect_err("flush must fail on sync error");
    assert_eq!(table.num_disk_tablets(), 0, "unsynced tablet published");
    let leftovers: Vec<String> = vfs
        .list_dir(TABLE)
        .unwrap()
        .into_iter()
        .filter(|e| e.starts_with("tab-"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "partial files left behind: {leftovers:?}"
    );
    // The sealed rows survive in memory and flush cleanly on retry.
    table.flush_all().expect("retry must succeed");
    assert_eq!(table.query_all(&Query::all()).unwrap().len(), 40);
}
