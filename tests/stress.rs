//! Concurrency stress: writers, readers, and background maintenance
//! (flushes and merges) all running at once, then a full verification —
//! every accepted row present exactly once, in order.

use littletable::vfs::{SimClock, SimVfs};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("writer", ColumnType::I64),
            ColumnDef::new("seq", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
        ],
        &["writer", "seq", "ts"],
    )
    .unwrap()
}

#[test]
fn writers_readers_and_maintenance_race_safely() {
    const WRITERS: i64 = 4;
    const ROWS_PER_WRITER: i64 = 3_000;
    let opts = Options {
        flush_size: 16 << 10, // frequent flushes
        merge_delay: 0,       // eager merging
        background: true,
        maintenance_interval_ms: 5,
        ..Options::small_for_tests()
    };
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(SimClock::new(1_700_000_000_000_000)),
        opts,
    )
    .unwrap();
    let table = db.create_table("s", schema(), None).unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let t = table.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut observed_max = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let rows = t.query_all(&Query::all()).unwrap();
                    // Row count only grows (no reader-visible loss), and
                    // results stay sorted and duplicate-free.
                    assert!(rows.len() >= observed_max, "rows went missing");
                    observed_max = rows.len();
                    for w in rows.windows(2) {
                        let a = (&w[0].values[0], &w[0].values[1]);
                        let b = (&w[1].values[0], &w[1].values[1]);
                        let key = |v: (&Value, &Value)| match v {
                            (Value::I64(x), Value::I64(y)) => (*x, *y),
                            _ => unreachable!(),
                        };
                        assert!(key(a) < key(b), "unsorted or duplicate");
                    }
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let t = table.clone();
            std::thread::spawn(move || {
                let base = 1_700_000_000_000_000i64;
                let mut batch = Vec::new();
                for seq in 0..ROWS_PER_WRITER {
                    batch.push(vec![
                        Value::I64(w),
                        Value::I64(seq),
                        Value::Timestamp(base + w * ROWS_PER_WRITER + seq),
                    ]);
                    if batch.len() == 64 {
                        let r = t.insert(std::mem::take(&mut batch)).unwrap();
                        assert_eq!(r.duplicates, 0);
                    }
                }
                if !batch.is_empty() {
                    t.insert(batch).unwrap();
                }
            })
        })
        .collect();

    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    db.shutdown();
    table.flush_all().unwrap();
    while table.run_merge_once(db.now()).unwrap() {}

    let rows = table.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), (WRITERS * ROWS_PER_WRITER) as usize);
    for w in 0..WRITERS {
        let per = table
            .query_all(&Query::all().with_prefix(vec![Value::I64(w)]))
            .unwrap();
        assert_eq!(per.len(), ROWS_PER_WRITER as usize);
        for (i, row) in per.iter().enumerate() {
            assert_eq!(row.values[1], Value::I64(i as i64));
        }
    }
    // Merging happened under load (several tablets were created by the
    // small flush size) and the table converged to a compact structure.
    let snap = table.stats().snapshot();
    assert!(
        snap.tablets_flushed > 4,
        "flushes = {}",
        snap.tablets_flushed
    );
    assert!(snap.merges > 0, "no merges ran");
}
