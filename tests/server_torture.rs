//! Multi-connection torture test for the nonblocking ingest front end:
//! N client threads pipeline mixed insert and query requests over raw
//! sockets, writing the byte stream in random-size chunks so frames
//! routinely arrive split across reads. The surviving data is checked
//! against the `tests/common` oracle helpers.
//!
//! Every thread owns a disjoint index range, so the final table contents
//! are exact: one row per index, nothing else. Responses must come back
//! in FIFO order per connection with matching request ids — the ordering
//! guarantee the pipelined protocol documents.

mod common;

use littletable::proto::{decode_response_frame, encode_request_frame, read_frame, Response};
use littletable::server::Server;
use littletable::vfs::{SimClock, SimVfs};
use littletable::{Query, Value};
use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::TcpStream;

/// Threads (connections). Small so the test stays tier-1 fast.
const N: u64 = 4;
/// Rows each thread inserts.
const ROWS_PER: u64 = 64;
/// Max insert batches in flight per connection.
const WINDOW: usize = 8;

/// Deterministic per-thread RNG (64-bit LCG, high bits).
fn next(rng: &mut u64) -> u64 {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *rng >> 33
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// An insert batch of this many fresh rows.
    Insert(u64),
    /// A query; rows must be sorted and belong to the table.
    Rows,
}

/// Appends `[len][payload]` for one enveloped request to `wire`.
fn frame_into(wire: &mut Vec<u8>, id: u64, req: &littletable::proto::Request) {
    let payload = encode_request_frame(id, req);
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
}

/// Writes the whole buffer in random 1–13 byte chunks, occasionally
/// pausing, so the server sees torn length prefixes and split payloads.
fn drip(stream: &mut TcpStream, wire: &mut Vec<u8>, rng: &mut u64) {
    let mut off = 0;
    while off < wire.len() {
        let n = (1 + next(rng) as usize % 13).min(wire.len() - off);
        stream.write_all(&wire[off..off + n]).unwrap();
        off += n;
        if next(rng).is_multiple_of(29) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    wire.clear();
}

/// Reads one response and checks it against the oldest expectation.
fn check_one(
    reader: &mut BufReader<TcpStream>,
    expect: &mut VecDeque<(u64, Expect)>,
) -> (u64, u64) {
    let (want_id, want) = expect.pop_front().expect("response with nothing in flight");
    let payload = read_frame(reader).unwrap().expect("server closed early");
    let (id, resp) = decode_response_frame(&payload).unwrap();
    assert_eq!(id, want_id, "responses out of FIFO order");
    match (want, resp) {
        (
            Expect::Insert(n),
            Response::InsertResult {
                inserted,
                duplicates,
            },
        ) => {
            assert_eq!((inserted, duplicates), (n, 0), "batch of {n} mishandled");
            (n, 0)
        }
        (Expect::Rows, Response::Rows { rows, .. }) => {
            let key = |row: &[Value]| match (&row[0], &row[1]) {
                (Value::I64(n), Value::Timestamp(ts)) => (*n, *ts),
                other => panic!("unexpected key types {other:?}"),
            };
            for w in rows.windows(2) {
                assert!(
                    key(&w[0]) < key(&w[1]),
                    "query result unsorted or duplicated"
                );
            }
            (0, 0)
        }
        (want, resp) => panic!("expected {want:?}, got {resp:?}"),
    }
}

#[test]
fn torn_frames_and_pipelining_across_many_connections() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(common::START);
    let db = common::open_db(&vfs, &clock).unwrap();
    // No TTL: the oracle check below wants every index visible.
    db.create_table(common::TABLE, common::schema(), None)
        .unwrap();
    let mut server = Server::bind(db.clone(), "127.0.0.1:0").unwrap();
    server.start().unwrap();
    let addr = server.local_addr();

    std::thread::scope(|s| {
        for t in 0..N {
            s.spawn(move || {
                let mut rng = 0x9e3779b97f4a7c15u64 ^ (t + 1);
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.set_nodelay(true).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut expect: VecDeque<(u64, Expect)> = VecDeque::new();
                let mut wire = Vec::new();
                let mut next_id = 1u64;
                let (lo, hi) = (t * ROWS_PER, (t + 1) * ROWS_PER);
                let mut i = lo;
                let mut inserted = 0;
                while i < hi {
                    let batch = (1 + next(&mut rng) % 7).min(hi - i);
                    let rows: Vec<Vec<Option<Value>>> = (i..i + batch)
                        .map(|j| common::make_row(j, 3).into_iter().map(Some).collect())
                        .collect();
                    frame_into(
                        &mut wire,
                        next_id,
                        &littletable::proto::Request::Insert {
                            table: common::TABLE.into(),
                            rows,
                        },
                    );
                    expect.push_back((next_id, Expect::Insert(batch)));
                    next_id += 1;
                    i += batch;
                    // Interleave reads: a query rides along every few
                    // batches, pipelined behind the inserts.
                    if next(&mut rng).is_multiple_of(3) {
                        frame_into(
                            &mut wire,
                            next_id,
                            &littletable::proto::Request::Query {
                                table: common::TABLE.into(),
                                query: Query::all().with_limit(50),
                            },
                        );
                        expect.push_back((next_id, Expect::Rows));
                        next_id += 1;
                    }
                    drip(&mut stream, &mut wire, &mut rng);
                    while expect.len() >= WINDOW {
                        inserted += check_one(&mut reader, &mut expect).0;
                    }
                }
                drip(&mut stream, &mut wire, &mut rng);
                while !expect.is_empty() {
                    inserted += check_one(&mut reader, &mut expect).0;
                }
                assert_eq!(inserted, ROWS_PER, "thread {t} lost acks");
            });
        }
    });

    // Oracle: exactly one row per index, contiguous, nothing invented.
    let table = db.table(common::TABLE).unwrap();
    table.flush_all().unwrap();
    let idx = common::visible_indices(&table);
    let want: Vec<u64> = (0..N * ROWS_PER).collect();
    assert_eq!(idx, want, "rows lost or duplicated under torn frames");

    server.shutdown();
    db.shutdown();
}
