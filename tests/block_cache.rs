//! End-to-end tests of the shared two-tier block cache: warm reads are
//! byte-identical and cheap, the joint budget (decompressed tier +
//! compressed tier + cached footers) holds under concurrency and
//! pressure, the compressed tier serves overflow working sets faster
//! than a single-tier cache at the same budget, merges invalidate dead
//! tablets without flushing the hot set, and disabling the cache
//! reproduces the uncached read path exactly.

use littletable::vfs::{Clock, DiskParams, SimClock, SimVfs};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Row, Schema, Value};
use std::sync::Arc;

const START: i64 = 1_700_000_000_000_000;

fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("k", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::Blob),
        ],
        &["k", "ts"],
    )
    .unwrap()
}

fn row(k: i64, ts: i64, fill: u8, len: usize) -> Vec<Value> {
    vec![
        Value::I64(k),
        Value::Timestamp(ts),
        Value::Blob(vec![fill; len]),
    ]
}

/// Builds a table of `n` rows and leaves it fully merged on disk.
fn build_merged_table(db: &Db, clock: &SimClock, name: &str, n: i64) -> Arc<littletable::Table> {
    let table = db.create_table(name, schema(), None).unwrap();
    for i in 0..n {
        table
            .insert(vec![row(i, START + i, (i % 251) as u8, 100)])
            .unwrap();
    }
    table.flush_all().unwrap();
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    table
}

fn values_of(rows: Vec<Row>) -> Vec<Vec<Value>> {
    rows.into_iter().map(|r| r.values).collect()
}

#[test]
fn warm_reads_are_byte_identical_and_at_least_5x_faster() {
    let clock = SimClock::new(START);
    let vfs = SimVfs::new(DiskParams::paper_disk(), clock.clone());
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let table = build_merged_table(&db, &clock, "t", 5000);
    // Cold start: fresh engine, cleared page/drive caches.
    let db2 = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    vfs.clear_caches();
    drop((db, table));
    let t2 = db2.table("t").unwrap();
    let q = Query::all().with_prefix(vec![Value::I64(2500)]);

    let t0 = clock.now_micros();
    let cold = values_of(t2.query_all(&q).unwrap());
    let cold_micros = clock.now_micros() - t0;

    let t1 = clock.now_micros();
    let warm = values_of(t2.query_all(&q).unwrap());
    let warm_micros = clock.now_micros() - t1;

    assert_eq!(cold, warm, "cache must return byte-identical rows");
    assert_eq!(cold.len(), 1);
    let snap = t2.stats().snapshot();
    assert!(snap.cache_hits > 0, "warm read must hit the cache");
    assert!(snap.cache_misses > 0, "cold read must miss the cache");
    assert!(
        cold_micros >= 5 * warm_micros.max(1),
        "warm read not ≥5x faster: cold {cold_micros} µs, warm {warm_micros} µs"
    );
}

#[test]
fn disabled_cache_reproduces_uncached_read_counts() {
    // With block_cache_bytes = 0 every repeated point read pays the same
    // disk transfer again; with the cache on, repeats cost no disk reads.
    let run = |cache_bytes: usize| {
        let clock = SimClock::new(START);
        let vfs = SimVfs::new(DiskParams::paper_disk(), clock.clone());
        let opts = Options {
            block_cache_bytes: cache_bytes,
            ..Options::small_for_tests()
        };
        let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
        let table = build_merged_table(&db, &clock, "t", 3000);
        vfs.clear_caches();
        let q = Query::all().with_prefix(vec![Value::I64(1500)]);
        let first = values_of(table.query_all(&q).unwrap());
        let after_first = vfs.model().stats().bytes_read;
        // Clear the disk model's page/drive caches so the repeat can only
        // be free if the *engine's* cache serves it.
        vfs.clear_caches();
        let second = values_of(table.query_all(&q).unwrap());
        let after_second = vfs.model().stats().bytes_read;
        assert_eq!(first, second);
        let snap = table.stats().snapshot();
        (after_first, after_second - after_first, snap)
    };

    let (uncached_first, uncached_repeat, uncached_snap) = run(0);
    let (cached_first, cached_repeat, cached_snap) = run(64 << 20);

    // The first (cold) read does identical IO whether or not a cache is
    // configured: same bytes from disk, in the same order.
    assert_eq!(uncached_first, cached_first);
    // The repeat: uncached reads the block again, cached reads nothing.
    assert!(
        uncached_repeat > 0,
        "uncached repeat must re-read the block"
    );
    assert_eq!(cached_repeat, 0, "cached repeat must do zero disk reads");
    // Counters follow suit: disabled cache records nothing.
    assert_eq!(uncached_snap.cache_hits, 0);
    assert_eq!(uncached_snap.cache_misses, 0);
    assert!(cached_snap.cache_hits > 0);
}

#[test]
fn merge_invalidates_dead_tablet_entries() {
    let clock = SimClock::new(START);
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let table = db.create_table("t", schema(), None).unwrap();
    // Several separate tablets with a shared time period.
    for batch in 0..4i64 {
        for i in 0..400 {
            let k = batch * 400 + i;
            table.insert(vec![row(k, START + k, 7, 60)]).unwrap();
        }
        table.flush_all().unwrap();
    }
    assert!(table.num_disk_tablets() > 1);
    // Warm the cache from every tablet.
    for k in (0..1600).step_by(100) {
        let rows = table
            .query_all(&Query::all().with_prefix(vec![Value::I64(k)]))
            .unwrap();
        assert_eq!(rows.len(), 1);
    }
    let cache = db.block_cache().expect("cache on by default").clone();
    assert!(cache.entry_count() > 0);
    // Merge everything: the source tablets leave service, so every cached
    // block now describes a deleted file and must be unreachable.
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    assert_eq!(table.num_disk_tablets(), 1);
    assert_eq!(
        cache.entry_count(),
        0,
        "merged-away tablets must drop their cached blocks"
    );
    // The merged tablet serves the same data and re-warms the cache.
    for k in (0..1600).step_by(100) {
        let rows = table
            .query_all(&Query::all().with_prefix(vec![Value::I64(k)]))
            .unwrap();
        assert_eq!(rows.len(), 1);
    }
    assert!(cache.entry_count() > 0);
    assert!(cache.bytes_used() <= cache.capacity());
}

#[test]
fn scan_and_merge_pass_leaves_hot_set_hit_ratio_intact() {
    let clock = SimClock::new(START);
    let opts = Options {
        // One shard with room for ~12 of the 4 kB test blocks: holds the
        // hot set comfortably, but far smaller than the churn table, so
        // admit-everything caching would wipe the hot set.
        block_cache_bytes: 48 << 10,
        block_cache_shards: 1,
        ..Options::small_for_tests()
    };
    let db = Db::open(Arc::new(SimVfs::instant()), Arc::new(clock.clone()), opts).unwrap();
    // Hot table: small, merged, stable.
    let hot = build_merged_table(&db, &clock, "hot", 500);
    let hot_keys: Vec<i64> = (0..5).map(|i| i * 100).collect();
    let hit_ratio_over_pass = |label: &str| {
        let before = hot.stats().snapshot();
        for _ in 0..40 {
            for &k in &hot_keys {
                let rows = hot
                    .query_all(&Query::all().with_prefix(vec![Value::I64(k)]))
                    .unwrap();
                assert_eq!(rows.len(), 1, "{label}: key {k}");
            }
        }
        let after = hot.stats().snapshot();
        let hits = after.cache_hits - before.cache_hits;
        let misses = after.cache_misses - before.cache_misses;
        hits as f64 / (hits + misses) as f64
    };
    // Warm up, then measure the steady-state hit ratio.
    hit_ratio_over_pass("warmup");
    let before = hit_ratio_over_pass("pre-scan");
    assert!(before > 0.9, "hot set should be cache-resident: {before}");

    // Churn table: several times the cache budget, then a full merge
    // (which streams every block in ~1 MB runs) and a full scan.
    let churn = db.create_table("churn", schema(), None).unwrap();
    for i in 0..3000i64 {
        churn.insert(vec![row(i, START + i, 3, 120)]).unwrap();
        if i % 750 == 749 {
            churn.flush_all().unwrap();
        }
    }
    churn.flush_all().unwrap();
    let misses_before_merge = churn.stats().snapshot().cache_misses;
    while churn.run_merge_once(clock.now_micros()).unwrap() {}
    // The merge's run reads bypass the cache entirely.
    assert_eq!(
        churn.stats().snapshot().cache_misses,
        misses_before_merge,
        "merge reads must not go through the cache"
    );
    let scanned = churn.query_all(&Query::all()).unwrap();
    assert_eq!(scanned.len(), 3000);

    let after = hit_ratio_over_pass("post-scan");
    assert!(
        (before - after).abs() <= 0.1,
        "hot-set hit ratio moved too much: {before} -> {after}"
    );
    let cache = db.block_cache().unwrap();
    assert!(cache.bytes_used() <= cache.capacity());
}

#[test]
fn two_tier_budget_holds_with_footers_under_pressure() {
    // A working set of ~2x the decompressed slice: the overflow lives as
    // compressed bytes in the lower tier. Both tiers plus cached footers
    // must stay inside the joint budget at every step.
    let clock = SimClock::new(START);
    let opts = Options {
        block_cache_bytes: 96 << 10,
        block_cache_shards: 1,
        ..Options::small_for_tests()
    };
    let db = Db::open(Arc::new(SimVfs::instant()), Arc::new(clock.clone()), opts).unwrap();
    let table = build_merged_table(&db, &clock, "t", 2400);
    let cache = db.block_cache().unwrap().clone();
    assert!(cache.capacity() <= 96 << 10);
    assert!(cache.decompressed_capacity() + cache.compressed_capacity() <= 96 << 10);
    // ~38 distinct 4 kB blocks (~150 kB decompressed) cycled twice
    // through a 72 kB decompressed slice.
    for _ in 0..2 {
        for k in (0..1200).step_by(16) {
            let rows = table
                .query_all(&Query::all().with_prefix(vec![Value::I64(k)]))
                .unwrap();
            assert_eq!(rows.len(), 1);
            assert!(
                cache.bytes_used() <= cache.capacity(),
                "joint budget exceeded: {} > {}",
                cache.bytes_used(),
                cache.capacity()
            );
            assert!(cache.decompressed_bytes_used() <= cache.decompressed_capacity());
            assert!(cache.compressed_bytes_used() <= cache.compressed_capacity());
        }
    }
    let snap = table.stats().snapshot();
    assert!(
        snap.cache_compressed_hits > 0,
        "overflow re-reads must be served from the compressed tier"
    );
    assert!(snap.cache_hits > 0);
}

#[test]
fn two_tier_beats_single_tier_at_equal_budget() {
    // Same joint budget, same workload, on the simulated paper disk: the
    // default 25% compressed slice must serve the overflow from memory
    // where the single-tier config goes back to disk.
    let run = |fraction: f64| {
        let clock = SimClock::new(START);
        let vfs = SimVfs::new(DiskParams::paper_disk(), clock.clone());
        let opts = Options {
            block_cache_bytes: 96 << 10,
            block_cache_shards: 1,
            compressed_cache_fraction: fraction,
            // Static-split ablation: the adaptive tuner would float both
            // runs toward the same split and erase the contrast.
            adaptive_cache_split: false,
            ..Options::small_for_tests()
        };
        let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
        let table = build_merged_table(&db, &clock, "t", 2400);
        let probe = |table: &littletable::Table| {
            for k in (0..1200).step_by(16) {
                let rows = table
                    .query_all(&Query::all().with_prefix(vec![Value::I64(k)]))
                    .unwrap();
                assert_eq!(rows.len(), 1);
            }
        };
        // Warm both tiers, then clear the disk model's page/drive caches
        // so the measured pass pays real seeks for every engine miss.
        probe(&table);
        probe(&table);
        vfs.clear_caches();
        let t0 = clock.now_micros();
        probe(&table);
        probe(&table);
        let elapsed = clock.now_micros() - t0;
        (elapsed, table.stats().snapshot())
    };

    let (single_micros, single_snap) = run(0.0);
    let (two_tier_micros, two_tier_snap) = run(0.25);
    assert_eq!(single_snap.cache_compressed_hits, 0);
    assert!(two_tier_snap.cache_compressed_hits > 0);
    assert!(
        two_tier_micros < single_micros,
        "two-tier must be strictly faster at the same budget: \
         two-tier {two_tier_micros} µs vs single-tier {single_micros} µs"
    );
}

#[test]
fn footer_evictions_are_counted_and_queries_survive() {
    // Many one-tablet tables churning through a small cache: footers are
    // charged like blocks, so cold tables' footers get evicted — and the
    // counter must say so. Queries reload them transparently.
    let clock = SimClock::new(START);
    let opts = Options {
        block_cache_bytes: 32 << 10,
        block_cache_shards: 1,
        compressed_cache_fraction: 0.0,
        ..Options::small_for_tests()
    };
    let db = Db::open(Arc::new(SimVfs::instant()), Arc::new(clock.clone()), opts).unwrap();
    let tables: Vec<_> = (0..12)
        .map(|t| build_merged_table(&db, &clock, &format!("t{t}"), 300))
        .collect();
    let cache = db.block_cache().unwrap().clone();
    for round in 0..3 {
        for (t, table) in tables.iter().enumerate() {
            let k = (t as i64 * 25 + round) % 300;
            let rows = table
                .query_all(&Query::all().with_prefix(vec![Value::I64(k)]))
                .unwrap();
            assert_eq!(rows.len(), 1, "table t{t} round {round}");
            assert!(cache.bytes_used() <= cache.capacity());
        }
    }
    let footer_evictions: u64 = tables
        .iter()
        .map(|t| t.stats().snapshot().footer_evictions)
        .sum();
    assert!(
        footer_evictions > 0,
        "churning 12 tables through a 32 kB cache must evict footers"
    );
}

#[test]
fn concurrent_queries_never_exceed_cache_budget() {
    let clock = SimClock::new(START);
    let opts = Options {
        // Large enough for the whole table's decompressed blocks.
        block_cache_bytes: 1 << 20,
        ..Options::small_for_tests()
    };
    let db = Db::open(Arc::new(SimVfs::instant()), Arc::new(clock.clone()), opts).unwrap();
    let table = build_merged_table(&db, &clock, "t", 4000);
    let cache = db.block_cache().unwrap().clone();
    let mut handles = Vec::new();
    for t in 0..8i64 {
        let table = table.clone();
        let cache = cache.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..300 {
                let k = (t * 677 + i * 131) % 4000;
                let rows = table
                    .query_all(&Query::all().with_prefix(vec![Value::I64(k)]))
                    .unwrap();
                assert_eq!(rows.len(), 1);
                assert!(
                    cache.bytes_used() <= cache.capacity(),
                    "budget exceeded under concurrency"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = table.stats().snapshot();
    assert!(snap.cache_hits > 0);
    assert!(
        snap.cache_hit_ratio() > 0.5,
        "ratio {}",
        snap.cache_hit_ratio()
    );
    assert!(cache.bytes_used() <= cache.capacity());
}
