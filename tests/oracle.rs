//! Model-based testing: random interleavings of inserts, flushes, merges,
//! TTL advances, and queries run against both the engine and a trivial
//! in-memory oracle (a sorted map). Every query's results must match the
//! oracle exactly — ordering, bounds, duplicates, TTL filtering, limits.

use littletable::vfs::{Clock, SimClock, SimVfs};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const START: i64 = 1_700_000_000_000_000;

fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("a", ColumnType::I64),
            ColumnDef::new("b", ColumnType::Str),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::I64),
        ],
        &["a", "b", "ts"],
    )
    .unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Insert {
        a: i64,
        b: String,
        ts_off: i64,
        v: i64,
    },
    Flush,
    Merge,
    AdvanceClock {
        micros: i64,
    },
    QueryPrefix {
        a: i64,
        desc: bool,
        limit: Option<usize>,
    },
    QueryTs {
        lo_off: i64,
        hi_off: i64,
    },
    Latest {
        a: i64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..4i64, "[a-c]{0,2}", -50_000..50_000i64, any::<i64>()).prop_map(
            |(a, b, ts_off, v)| Op::Insert { a, b, ts_off, v }
        ),
        1 => Just(Op::Flush),
        1 => Just(Op::Merge),
        1 => (1..100_000i64).prop_map(|micros| Op::AdvanceClock { micros }),
        2 => (0..4i64, any::<bool>(), proptest::option::of(1..20usize))
            .prop_map(|(a, desc, limit)| Op::QueryPrefix { a, desc, limit }),
        2 => (-50_000..50_000i64, -50_000..50_000i64)
            .prop_map(|(lo_off, hi_off)| Op::QueryTs { lo_off, hi_off }),
        1 => (0..4i64).prop_map(|a| Op::Latest { a }),
    ]
}

type OracleKey = (i64, String, i64);

fn run_ops(ops: Vec<Op>) {
    let clock = SimClock::new(START);
    let vfs = SimVfs::instant();
    let mut opts = Options::small_for_tests();
    opts.flush_size = 2 << 10; // frequent seals: exercise the tablet paths
    let db = Db::open(Arc::new(vfs), Arc::new(clock.clone()), opts).unwrap();
    let table = db.create_table("t", schema(), None).unwrap();
    let mut oracle: BTreeMap<OracleKey, i64> = BTreeMap::new();

    let to_rows = |entries: Vec<(&OracleKey, &i64)>| -> Vec<Vec<Value>> {
        entries
            .into_iter()
            .map(|((a, b, ts), v)| {
                vec![
                    Value::I64(*a),
                    Value::Str(b.clone()),
                    Value::Timestamp(*ts),
                    Value::I64(*v),
                ]
            })
            .collect()
    };

    for op in ops {
        match op {
            Op::Insert { a, b, ts_off, v } => {
                let ts = START + ts_off;
                let report = table
                    .insert(vec![vec![
                        Value::I64(a),
                        Value::Str(b.clone()),
                        Value::Timestamp(ts),
                        Value::I64(v),
                    ]])
                    .unwrap();
                let key = (a, b, ts);
                if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(key.clone()) {
                    assert_eq!(report.inserted, 1, "engine rejected a fresh key {key:?}");
                    e.insert(v);
                } else {
                    assert_eq!(report.duplicates, 1, "engine accepted a duplicate {key:?}");
                }
            }
            Op::Flush => table.flush_all().unwrap(),
            Op::Merge => {
                table.run_merge_once(clock.now_micros()).unwrap();
            }
            Op::AdvanceClock { micros } => clock.advance(micros),
            Op::QueryPrefix { a, desc, limit } => {
                let mut q = Query::all().with_prefix(vec![Value::I64(a)]);
                if desc {
                    q = q.descending();
                }
                if let Some(n) = limit {
                    q = q.with_limit(n);
                }
                let got = table.query_all(&q).unwrap();
                let mut expect: Vec<_> = oracle.iter().filter(|((x, _, _), _)| *x == a).collect();
                if desc {
                    expect.reverse();
                }
                if let Some(n) = limit {
                    expect.truncate(n);
                }
                assert_eq!(
                    got.iter().map(|r| r.values.clone()).collect::<Vec<_>>(),
                    to_rows(expect),
                    "prefix query a={a} desc={desc} limit={limit:?}"
                );
            }
            Op::QueryTs { lo_off, hi_off } => {
                let (lo, hi) = (START + lo_off.min(hi_off), START + lo_off.max(hi_off));
                let q = Query::all().with_ts_min(lo, true).with_ts_max(hi, true);
                let got = table.query_all(&q).unwrap();
                let expect: Vec<_> = oracle
                    .iter()
                    .filter(|((_, _, ts), _)| *ts >= lo && *ts <= hi)
                    .collect();
                assert_eq!(
                    got.iter().map(|r| r.values.clone()).collect::<Vec<_>>(),
                    to_rows(expect),
                    "ts query [{lo}, {hi}]"
                );
            }
            Op::Latest { a } => {
                let got = table.latest(&[Value::I64(a)]).unwrap();
                let expect = oracle
                    .iter()
                    .filter(|((x, _, _), _)| *x == a)
                    .max_by_key(|((_, _, ts), _)| *ts);
                match (got, expect) {
                    (None, None) => {}
                    (Some(row), Some(((ea, eb, ets), ev))) => {
                        assert_eq!(row.values[0], Value::I64(*ea));
                        assert_eq!(row.values[1], Value::Str(eb.clone()));
                        assert_eq!(row.values[2], Value::Timestamp(*ets));
                        assert_eq!(row.values[3], Value::I64(*ev));
                    }
                    (got, expect) => panic!("latest({a}): {got:?} vs {expect:?}"),
                }
            }
        }
    }
    // Final full-table check after everything settles.
    table.flush_all().unwrap();
    while table.run_merge_once(clock.now_micros()).unwrap() {}
    let got = table.query_all(&Query::all()).unwrap();
    assert_eq!(
        got.iter().map(|r| r.values.clone()).collect::<Vec<_>>(),
        to_rows(oracle.iter().collect()),
        "final full scan"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
    })]

    #[test]
    fn engine_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run_ops(ops);
    }
}

#[test]
fn oracle_smoke_dense_duplicates() {
    // A hand-built sequence heavy on duplicate keys across flush
    // boundaries — historically the riskiest path.
    let mut ops = Vec::new();
    for i in 0..30 {
        ops.push(Op::Insert {
            a: i % 2,
            b: "x".into(),
            ts_off: i % 5,
            v: i,
        });
        if i % 7 == 0 {
            ops.push(Op::Flush);
        }
        if i % 11 == 0 {
            ops.push(Op::Merge);
        }
    }
    ops.push(Op::QueryPrefix {
        a: 0,
        desc: false,
        limit: None,
    });
    ops.push(Op::Latest { a: 1 });
    run_ops(ops);
}
