//! Whole-pipeline application tests: the simulated fleet feeding all
//! three grabbers, aggregators deriving rollups/sketches/tag tables, and
//! a mid-pipeline LittleTable crash — verifying the paper's claim that a
//! crash "appears to customers as no more than temporary unreachability
//! of their devices" (§4.1.1).

use littletable::apps::aggregate::{
    client_sketch_schema, estimate_clients, rollup_schema, rollup_usage_by_tag, tag_usage_schema,
    write_client_sketches, UsageRollup,
};
use littletable::apps::config::ConfigStore;
use littletable::apps::device::{Fleet, MINUTE};
use littletable::apps::events::{events_schema, EventsGrabber};
use littletable::apps::motion::{motion_heatmap, motion_schema, MotionGrabber};
use littletable::apps::usage::{bytes_per_device, usage_schema, UsageGrabber};
use littletable::vfs::{Clock, SimClock, SimVfs};
use littletable::{Db, Options, Query, Value};
use std::sync::Arc;

const EPOCH: i64 = 1_700_000_000_000_000;

fn open(vfs: &SimVfs, clock: &SimClock) -> Db {
    Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap()
}

#[test]
fn full_shard_pipeline_with_crash() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(EPOCH);
    let db = open(&vfs, &clock);
    let fleet = Fleet::new(EPOCH, 2, 3, 5);

    let usage = db.create_table("usage", usage_schema(), None).unwrap();
    let events = db.create_table("events", events_schema(), None).unwrap();
    let motion = db.create_table("motion", motion_schema(), None).unwrap();
    let rollup = db.create_table("rollup", rollup_schema(), None).unwrap();

    let mut ug = UsageGrabber::new(usage.clone(), 3600 * 1_000_000);
    let mut eg = EventsGrabber::new(events.clone(), None);
    let mut mg = MotionGrabber::new(motion.clone());

    // One hour of normal operation.
    for _ in 0..60 {
        let now = clock.now_micros();
        ug.poll_all(&fleet, now).unwrap();
        eg.poll_all(&fleet, now).unwrap();
        mg.poll_all(&fleet, now, MINUTE).unwrap();
        clock.advance(MINUTE);
        db.maintain().unwrap();
    }
    db.flush_all().unwrap();
    let usage_rows = usage.query_all(&Query::all()).unwrap().len();
    let event_rows = events.query_all(&Query::all()).unwrap().len();
    let motion_rows = motion.query_all(&Query::all()).unwrap().len();
    assert!(usage_rows > 0 && event_rows > 0 && motion_rows > 0);

    // Ten more minutes of unflushed activity, then the crash.
    for _ in 0..10 {
        let now = clock.now_micros();
        ug.poll_all(&fleet, now).unwrap();
        eg.poll_all(&fleet, now).unwrap();
        mg.poll_all(&fleet, now, MINUTE).unwrap();
        clock.advance(MINUTE);
    }
    vfs.crash();
    let db = open(&vfs, &clock);
    let usage = db.table("usage").unwrap();
    let events = db.table("events").unwrap();
    let motion = db.table("motion").unwrap();
    let rollup = {
        let _ = rollup; // old handle belongs to the dead engine
        db.table("rollup").unwrap()
    };
    assert_eq!(usage.query_all(&Query::all()).unwrap().len(), usage_rows);
    assert_eq!(events.query_all(&Query::all()).unwrap().len(), event_rows);

    // Fresh daemons recover their caches and carry on; events are
    // re-fetched from the devices (recoverable), usage shows a short gap.
    let mut ug = UsageGrabber::new(usage.clone(), 3600 * 1_000_000);
    ug.rebuild_cache(clock.now_micros()).unwrap();
    let mut eg = EventsGrabber::new(events.clone(), None);
    eg.rebuild_cache(&fleet, clock.now_micros(), 3600 * 1_000_000)
        .unwrap();
    let mut mg = MotionGrabber::new(motion.clone());
    for _ in 0..20 {
        let now = clock.now_micros();
        ug.poll_all(&fleet, now).unwrap();
        eg.poll_all(&fleet, now).unwrap();
        mg.poll_all(&fleet, now, 15 * MINUTE).unwrap();
        clock.advance(MINUTE);
        db.maintain().unwrap();
    }
    // Events caught back up completely: every device event up to the
    // final poll instant is present exactly once.
    let now = clock.now_micros();
    eg.poll_all(&fleet, now).unwrap();
    let mut expected_events = 0;
    for &dev in fleet.devices() {
        expected_events += fleet.poll_events(dev, None, now, usize::MAX).unwrap().len();
    }
    assert_eq!(
        events.query_all(&Query::all()).unwrap().len(),
        expected_events
    );

    // The rollup aggregator processes everything durable.
    let mut agg = UsageRollup::new(usage.clone(), rollup.clone(), 10 * MINUTE, 0);
    agg.recover(clock.now_micros()).unwrap();
    agg.run_once(clock.now_micros()).unwrap();
    assert!(!rollup.query_all(&Query::all()).unwrap().is_empty());

    // Dashboard-style reads work across the whole span.
    let per_dev = bytes_per_device(&usage, 1, EPOCH, clock.now_micros()).unwrap();
    assert_eq!(per_dev.len(), 3);
    let grid = motion_heatmap(&motion, fleet.devices()[0], EPOCH, clock.now_micros()).unwrap();
    assert!(grid.iter().flatten().sum::<u64>() > 0);
}

#[test]
fn sketches_and_tags_join_littletable_with_config() {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(EPOCH);
    let db = open(&vfs, &clock);
    let fleet = Fleet::new(EPOCH, 1, 4, 9);
    let usage = db.create_table("usage", usage_schema(), None).unwrap();
    let sketches = db
        .create_table("clients", client_sketch_schema(), None)
        .unwrap();
    let tags = db.create_table("bytag", tag_usage_schema(), None).unwrap();

    let mut ug = UsageGrabber::new(usage.clone(), 3600 * 1_000_000);
    for _ in 0..30 {
        ug.poll_all(&fleet, clock.now_micros()).unwrap();
        clock.advance(MINUTE);
    }

    // Client sightings → HLL sketches, across two buckets.
    write_client_sketches(&sketches, clock.now_micros(), (0..800).map(|c| (1i64, c))).unwrap();
    clock.advance(10 * MINUTE);
    write_client_sketches(
        &sketches,
        clock.now_micros(),
        (400..1200).map(|c| (1i64, c)),
    )
    .unwrap();
    let est = estimate_clients(&sketches, 1, EPOCH, clock.now_micros() + 1).unwrap();
    assert!((est - 1200.0).abs() / 1200.0 < 0.1, "est = {est}");

    // Tag joins against the config store.
    let config = ConfigStore::new();
    config.tag_device(fleet.devices()[0], "lobby");
    config.tag_device(fleet.devices()[1], "lobby");
    rollup_usage_by_tag(&usage, &tags, &config, EPOCH, clock.now_micros()).unwrap();
    let rows = tags.query_all(&Query::all()).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].values[0], Value::Str("lobby".into()));
}
