//! Shared fault-sweep harness: one deterministic mixed workload plus the
//! recovery oracle that machine-checks LittleTable's durability contract.
//!
//! The workload exercises every maintenance path the paper's durability
//! argument covers — inserts, explicit flushes, merges, a schema change,
//! a TTL advance with reaping, and more inserts — against a `SimVfs`.
//! Because both the engine and the simulated VFS are deterministic, the
//! workload performs the same I/O operations in the same order on every
//! run, so "crash after op k" (via `FaultPlan`) names the same point in
//! every replay. `tests/fault_sweep.rs` sweeps k across the whole run;
//! `tests/crash_recovery.rs` reuses the same oracle for its hand-picked
//! scenarios so the two suites cannot drift apart.
//!
//! The oracle asserts the paper's three recovery invariants (§3.1):
//!
//! 1. **Clean prefix** — the rows visible after recovery form one
//!    contiguous index range. Inserts carry monotonically increasing
//!    timestamps and reads filter expired rows, so durable data minus
//!    the expired head is exactly a contiguous `[j..=k]`.
//! 2. **No duplicates** — re-sending the unrecovered tail (the client's
//!    contract after a crash) inserts every row exactly once, and
//!    re-sending a recovered row is rejected as a duplicate.
//! 3. **Descriptor consistency** — the descriptor loads, references only
//!    files that exist with the recorded sizes, contains no id at or
//!    above `next_tablet_id`, and no uncommitted tablet file survives
//!    reopening (orphans are cleaned, `DESC.tmp` retired).

#![allow(dead_code)] // each integration-test crate uses a subset

use littletable::core::descriptor::{parse_tablet_file_name, TableDescriptor, DESC_FILE, DESC_TMP};
use littletable::core::table::QUARANTINE_SUFFIX;
use littletable::vfs::{join, SimClock, SimVfs, Vfs};
use littletable::{
    ColumnDef, ColumnType, Db, Options, Query, Schema, Session, SqlOutput, Table, Value,
};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Workload epoch, µs.
pub const START: i64 = 1_700_000_000_000_000;
/// µs between consecutive rows' timestamps.
pub const STEP: i64 = 1_000;
/// Table TTL: one hour, µs.
pub const TTL: i64 = 3_600 * 1_000_000;
/// Rows the full workload inserts.
pub const TOTAL_ROWS: u64 = 150;
/// After the workload's TTL advance, rows with index < this are expired.
pub const EXPIRED_BELOW: u64 = 55;
/// The table every workload run creates.
pub const TABLE: &str = "w";
/// The rollup the workload creates over [`TABLE`].
pub const ROLLUP: &str = "w_r";
/// The rollup's bucket period: 20 rows per bucket.
pub const ROLLUP_PERIOD: i64 = 20 * STEP;

/// The workload schema: `(n, ts)` primary key, one payload column.
pub fn schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("n", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::I64),
        ],
        &["n", "ts"],
    )
    .unwrap()
}

/// Engine options for the harness: small tablets so 150 rows produce a
/// realistic number of flushes and merges, no background thread so every
/// I/O op belongs to a deterministic workload step.
pub fn opts() -> Options {
    Options {
        max_sealed_backlog: 4,
        ..Options::small_for_tests()
    }
}

/// Opens (or reopens) the harness database.
pub fn open_db(vfs: &SimVfs, clock: &SimClock) -> littletable::Result<Db> {
    Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts())
}

/// Row `i` of the workload, padded with the schema-change column's
/// payload when the table has grown past the base three columns.
pub fn make_row(i: u64, ncols: usize) -> Vec<Value> {
    let mut row = vec![
        Value::I64(i as i64),
        Value::Timestamp(START + i as i64 * STEP),
        Value::I64(i as i64 * 10),
    ];
    while row.len() < ncols {
        row.push(Value::Str("x".into()));
    }
    row
}

/// How the workload reacts to a failed step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Stop at the first error — the crash-sweep mode, where the first
    /// error is the injected crash and everything after is the halted
    /// disk.
    Stop,
    /// Record the error and keep going — the error-sweep mode, which
    /// checks that one failed operation degrades service instead of
    /// poisoning the engine.
    Continue,
}

/// What the workload managed before stopping (or finishing).
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// The table was created (acked to the client).
    pub created: bool,
    /// Inserts acked. In [`Mode::Stop`] the acked set is exactly
    /// `0..acked`; in [`Mode::Continue`] subtract `failed_inserts`.
    pub acked: u64,
    /// Acked count at the last successful `flush_all` — rows below this
    /// were promised durable.
    pub floor: u64,
    /// Indices whose insert returned an error ([`Mode::Continue`] only).
    pub failed_inserts: Vec<u64>,
    /// Non-insert steps that returned an error ([`Mode::Continue`]).
    pub step_errors: u64,
    /// The TTL clock advance ran (it is not an I/O op, so in
    /// [`Mode::Continue`] it always does once the table exists).
    pub clock_advanced: bool,
}

/// Runs the deterministic mixed workload. Covers, in order: inserts,
/// flush, more inserts, flush, merge, inserts, schema change, inserts,
/// flush, TTL advance + reap, inserts, flush, final maintenance.
pub fn run_workload(db: &Db, clock: &SimClock, mode: Mode) -> Outcome {
    let mut out = Outcome::default();

    let table = match db.create_table(TABLE, schema(), Some(TTL)) {
        Ok(t) => t,
        Err(_) if mode == Mode::Continue => {
            out.step_errors += 1;
            match db.create_table(TABLE, schema(), Some(TTL)) {
                Ok(t) => t,
                Err(_) => return out,
            }
        }
        Err(_) => return out,
    };
    out.created = true;

    let insert_range = |table: &Arc<Table>, out: &mut Outcome, lo: u64, hi: u64| -> bool {
        for i in lo..hi {
            let ncols = table.schema().num_columns();
            match table.insert(vec![make_row(i, ncols)]) {
                Ok(_) => out.acked += 1,
                Err(_) if mode == Mode::Continue => out.failed_inserts.push(i),
                Err(_) => return false,
            }
        }
        true
    };
    macro_rules! step {
        ($e:expr) => {
            match $e {
                Ok(_) => true,
                Err(_) if mode == Mode::Continue => {
                    out.step_errors += 1;
                    true
                }
                Err(_) => false,
            }
        };
    }
    macro_rules! flush {
        () => {
            match table.flush_all() {
                Ok(()) => {
                    out.floor = out.acked;
                    true
                }
                Err(_) if mode == Mode::Continue => {
                    out.step_errors += 1;
                    true
                }
                Err(_) => false,
            }
        };
    }

    // Phase 1-2: two insert+flush rounds build two durable tablet sets.
    if !insert_range(&table, &mut out, 0, 40) || !flush!() {
        return out;
    }
    if !insert_range(&table, &mut out, 40, 80) || !flush!() {
        return out;
    }
    // Phase 2b: a continuous rollup over the flushed history. Creation
    // backfills the existing tablets; later maintenance passes fold the
    // rest, so crash points land before, during, and after folds.
    if !step!(db.create_rollup(ROLLUP, TABLE, ROLLUP_PERIOD, vec!["v".into()], vec![])) {
        return out;
    }
    // Phase 3: merge the flushed tablets.
    if !step!(db.maintain()) {
        return out;
    }
    // Phase 4: schema change with unflushed rows in memory.
    if !insert_range(&table, &mut out, 80, 100)
        || !step!(table.add_column(ColumnDef::with_default(
            "note",
            ColumnType::Str,
            Value::Str("-".into())
        )))
    {
        return out;
    }
    if !insert_range(&table, &mut out, 100, 130) || !flush!() {
        return out;
    }
    // Phase 5: TTL advance expires rows < EXPIRED_BELOW; reap them.
    clock.advance(TTL + EXPIRED_BELOW as i64 * STEP);
    out.clock_advanced = true;
    if !step!(db.maintain()) {
        return out;
    }
    // Phase 6: post-expiry inserts and a final flush + maintenance.
    if !insert_range(&table, &mut out, 130, TOTAL_ROWS) || !flush!() {
        return out;
    }
    step!(db.maintain());
    out
}

/// Extracts the sorted row indices visible in the table.
pub fn visible_indices(table: &Arc<Table>) -> Vec<u64> {
    table
        .query_all(&Query::all())
        .expect("recovered table must serve reads")
        .iter()
        .map(|r| match r.values[0] {
            Value::I64(n) => n as u64,
            ref v => panic!("unexpected index value {v:?}"),
        })
        .collect()
}

/// Invariant 3: the durable descriptor is self-consistent and the table
/// directory holds nothing uncommitted. Call after a reopen (which
/// retires `DESC.tmp` and deletes orphans). Works over any [`Vfs`] so
/// the same oracle runs against `SimVfs` sweeps and real-filesystem
/// (`FaultVfs<StdVfs>`) sweeps.
pub fn check_descriptor_consistency(vfs: &dyn Vfs) {
    if !vfs.exists(&join(TABLE, DESC_FILE)) {
        return;
    }
    let desc = TableDescriptor::load(vfs, TABLE).expect("descriptor must load after recovery");
    assert!(
        !vfs.exists(&join(TABLE, DESC_TMP)),
        "stale DESC.tmp survived reopen"
    );
    let mut ids = HashSet::new();
    for t in &desc.tablets {
        assert!(
            t.id < desc.next_tablet_id,
            "tablet id {} >= next_tablet_id {}",
            t.id,
            desc.next_tablet_id
        );
        assert!(ids.insert(t.id), "descriptor references id {} twice", t.id);
        let path = join(TABLE, &t.file_name());
        let size = vfs
            .file_size(&path)
            .unwrap_or_else(|_| panic!("referenced tablet {path} missing"));
        assert_eq!(size, t.bytes, "tablet {path} size mismatch");
    }
    for entry in vfs.list_dir(TABLE).unwrap() {
        if entry == DESC_FILE || entry.ends_with(QUARANTINE_SUFFIX) {
            continue;
        }
        assert_ne!(entry, DESC_TMP, "DESC.tmp present in listing");
        if let Some(id) = parse_tablet_file_name(&entry) {
            assert!(
                ids.contains(&id),
                "orphan tablet {entry} survived reopening"
            );
        }
    }
}

/// Rollup agreement oracle: the bucketed aggregate the SQL layer
/// computes — rollup partials merged with base-table tail scans when
/// the recovered `w_r` rollup is registered, a plain pushdown otherwise
/// — must equal a manual bucketing of a full base-table rescan. Run
/// after any recovery; whatever fold progress the crash or fault left
/// behind (unfolded tablets, partially inserted fold batches awaiting
/// their idempotent refold) must never change a query answer.
pub fn verify_rollup_agreement(db: &Db) {
    let Ok(table) = db.table(TABLE) else {
        return;
    };
    let mut expect: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
    for r in table
        .query_all(&Query::all())
        .expect("recovered table must serve reads")
    {
        let (Value::Timestamp(ts), Value::I64(v)) = (&r.values[1], &r.values[2]) else {
            panic!("unexpected row shape {r:?}");
        };
        let bucket = ts - ts.rem_euclid(ROLLUP_PERIOD);
        let e = expect.entry(bucket).or_insert((0, 0));
        e.0 += v;
        e.1 += 1;
    }
    let session = Session::new(db.clone());
    let out = session
        .execute(
            "SELECT TIME_BUCKET(ts, INTERVAL '20ms'), SUM(v), COUNT(*) FROM w \
             GROUP BY TIME_BUCKET(ts, INTERVAL '20ms')",
        )
        .expect("bucketed aggregate must run after recovery");
    let SqlOutput::Rows { rows, .. } = out else {
        panic!("aggregate returned {out:?}");
    };
    assert_eq!(
        rows.len(),
        expect.len(),
        "rollup-served buckets disagree with base rescan"
    );
    for (row, (bucket, (sum, count))) in rows.iter().zip(&expect) {
        assert_eq!(
            row,
            &vec![
                Value::Timestamp(*bucket),
                Value::I64(*sum),
                Value::I64(*count)
            ],
            "bucket {bucket} disagrees with base rescan"
        );
    }
}

/// The crash oracle: reboot the disk, reopen, and machine-check the
/// clean-prefix, no-duplicate, and descriptor-consistency invariants
/// against what the interrupted workload acked. `out` must come from a
/// [`Mode::Stop`] run.
pub fn verify_crash_recovery(vfs: &SimVfs, clock: &SimClock, out: &Outcome) {
    vfs.crash();
    vfs.clear_fault_plan();
    let db = open_db(vfs, clock).expect("reopen after crash must succeed");
    check_descriptor_consistency(vfs);
    let table = match db.table(TABLE) {
        Ok(t) => t,
        Err(_) => {
            assert!(
                !out.created,
                "table acked to the client but lost in the crash"
            );
            return;
        }
    };

    // Invariant 1: clean prefix (contiguous visible range).
    let idx = visible_indices(&table);
    for w in idx.windows(2) {
        assert_eq!(
            w[1],
            w[0] + 1,
            "hole in recovered range: {} -> {}",
            w[0],
            w[1]
        );
    }
    let vis_max = idx.last().copied();
    if let Some(m) = vis_max {
        assert!(m < out.acked, "recovered row {m} was never acked");
    }
    if out.floor > 0 {
        let m = vis_max.expect("flushed rows lost: nothing visible");
        assert!(
            m >= out.floor - 1,
            "flushed rows lost: floor {}, visible max {m}",
            out.floor
        );
    }

    // Invariant 2a: a recovered row re-sent by the client is a duplicate.
    let ncols = table.schema().num_columns();
    if let Some(m) = vis_max {
        let rep = table.insert(vec![make_row(m, ncols)]).unwrap();
        assert_eq!(
            (rep.inserted, rep.duplicates),
            (0, 1),
            "recovered row {m} not deduplicated"
        );
    }
    // Invariant 2b: the unrecovered tail re-sends cleanly, exactly once.
    let resume = vis_max.map(|m| m + 1).unwrap_or(0);
    for i in resume..out.acked {
        let rep = table.insert(vec![make_row(i, ncols)]).unwrap();
        assert_eq!(
            (rep.inserted, rep.duplicates),
            (1, 0),
            "re-sent row {i} rejected"
        );
    }
    table.flush_all().expect("post-recovery flush must succeed");

    // After the re-send, everything acked (minus any expired head) is
    // visible and still contiguous.
    let idx = visible_indices(&table);
    for w in idx.windows(2) {
        assert_eq!(w[1], w[0] + 1, "hole after re-send: {} -> {}", w[0], w[1]);
    }
    if out.acked > 0 {
        assert_eq!(idx.last().copied(), Some(out.acked - 1), "tail not re-sent");
    }
    verify_rollup_agreement(&db);
}

/// The live half of the degraded-service oracle, VFS-agnostic: no crash
/// happened, so after the fault plan is exhausted the same engine must
/// keep serving, accept the re-sent failures, and end with zero data
/// loss. The caller must have cleared the fault plan first. `out` must
/// come from a [`Mode::Continue`] run. Returns the table when it
/// exists, so VFS-specific epilogues can continue the check.
pub fn verify_degraded_live(db: &Db, out: &Outcome) -> Option<Arc<Table>> {
    let table = match db.table(TABLE) {
        Ok(t) => t,
        Err(_) => {
            assert!(!out.created, "created table vanished without a crash");
            return None;
        }
    };
    let ncols = table.schema().num_columns();
    for &i in &out.failed_inserts {
        if i < EXPIRED_BELOW && out.clock_advanced {
            continue; // already expired; invisible either way
        }
        // A failed insert must have either not happened (re-send lands)
        // or happened entirely (re-send is a duplicate) — never a
        // half-state that errors.
        let rep = table.insert(vec![make_row(i, ncols)]).unwrap();
        assert_eq!(rep.inserted + rep.duplicates, 1, "re-send of {i} lost");
    }
    table.flush_all().expect("flush after fault must succeed");
    db.maintain().expect("maintenance after fault must succeed");

    // A Continue-mode run with a live table always reaches the end of
    // the workload (only a double create failure returns early), so the
    // final picture is exact: every non-expired index, nothing else.
    assert!(out.clock_advanced, "continue-mode run stopped early");
    let idx = visible_indices(&table);
    let expected: Vec<u64> = (EXPIRED_BELOW..TOTAL_ROWS).collect();
    assert_eq!(idx, expected, "data lost or duplicated under I/O errors");
    verify_rollup_agreement(db);
    Some(table)
}

/// The degraded-service oracle for non-fatal faults on a `SimVfs`: the
/// live check above, then the durability epilogue across a simulated
/// power cut and reopen (which is where orphan cleanup and `DESC.tmp`
/// retirement are defined to run, so the descriptor-consistency check
/// comes after the reboot). `out` must come from a [`Mode::Continue`]
/// run.
pub fn verify_degraded_service(vfs: &SimVfs, clock: &SimClock, db: &Db, out: &Outcome) {
    vfs.clear_fault_plan();
    if verify_degraded_live(db, out).is_none() {
        return;
    }
    let expected: Vec<u64> = (EXPIRED_BELOW..TOTAL_ROWS).collect();

    // The healed store must also be durable: the last flush/maintain
    // succeeded fault-free, so a power cut right now loses nothing and
    // recovery leaves a self-consistent directory.
    vfs.crash();
    let db2 = open_db(vfs, clock).expect("reopen after degraded episode");
    check_descriptor_consistency(vfs);
    let table2 = db2.table(TABLE).expect("table lost after degraded episode");
    assert_eq!(
        visible_indices(&table2),
        expected,
        "degraded-mode durability promise broken by a crash"
    );
}

/// Runs the workload once on a pristine store with no faults and returns
/// the total number of VFS operations it performs — the sweep space.
pub fn count_workload_ops() -> u64 {
    let vfs = SimVfs::instant();
    let clock = SimClock::new(START);
    let db = open_db(&vfs, &clock).unwrap();
    let out = run_workload(&db, &clock, Mode::Stop);
    assert_eq!(out.acked, TOTAL_ROWS, "fault-free workload must complete");
    assert_eq!(out.floor, TOTAL_ROWS);
    vfs.op_count()
}
