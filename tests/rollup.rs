//! End-to-end tests for the continuous rollup tier and the
//! invalidation-aware query-result cache, through the public facade:
//! DDL via SQL, folding via `Db::maintain`, serving via the planner's
//! rollup rewrite, recovery via reopen, and the wire protocol via
//! `handle_request`. The two acceptance properties live here:
//!
//! 1. a `TIME_BUCKET` SUM/COUNT query whose window is fully covered by
//!    rollup buckets reads **zero** base-table data (`pushdown_scans`
//!    and `rows_materialized` stay flat while `rollup_hits` advances);
//! 2. a cached result is never served after an insert that overlaps its
//!    bounding box — the cache key pins the table's `insert_seq`.

use littletable::proto::{Request, Response};
use littletable::server::handle_request;
use littletable::vfs::{SimClock, SimVfs};
use littletable::{Db, Options, Session, SqlOutput, Value};
use std::sync::Arc;

const START: i64 = 1_700_000_000_000_000;
const HOUR: i64 = 3_600_000_000;

fn open() -> (Session, SimVfs, SimClock) {
    let clock = SimClock::new(START);
    let vfs = SimVfs::instant();
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    (Session::new(db), vfs, clock)
}

fn rows(out: SqlOutput) -> Vec<Vec<Value>> {
    match out {
        SqlOutput::Rows { rows, .. } => rows,
        o => panic!("expected rows, got {o:?}"),
    }
}

/// Creates `m`, loads 6 hours × 12 samples, flushes, and rolls up
/// hourly with SUM/MIN/MAX on `v` and a distinct sketch on `u`.
/// Returns the first bucket boundary at or before START.
fn seed(s: &Session) -> i64 {
    s.execute(
        "CREATE TABLE m (sensor INT64, ts TIMESTAMP, v INT64, u TEXT, \
         PRIMARY KEY (sensor, ts))",
    )
    .unwrap();
    for h in 0..6i64 {
        for i in 0..12i64 {
            s.execute(&format!(
                "INSERT INTO m VALUES (1, {}, {}, 'user{}')",
                START + h * HOUR + i * 60_000_000,
                h * 100 + i,
                (h * 12 + i) % 7
            ))
            .unwrap();
        }
    }
    s.db().flush_all().unwrap();
    s.execute("CREATE ROLLUP m_1h ON m PERIOD '1h' AGGREGATE (v) DISTINCT (u)")
        .unwrap();
    START - START.rem_euclid(HOUR)
}

#[test]
fn covered_window_reads_zero_base_blocks() {
    let (s, _, _) = open();
    let b0 = seed(&s);
    let before = s.db().table("m").unwrap().stats().snapshot();
    let q = format!(
        "SELECT TIME_BUCKET(ts, INTERVAL '1h'), SUM(v), COUNT(*) FROM m \
         WHERE ts >= {b0} AND ts < {} GROUP BY TIME_BUCKET(ts, INTERVAL '1h')",
        b0 + 7 * HOUR
    );
    let got = rows(s.execute(&q).unwrap());
    assert_eq!(got.len(), 6);
    for (h, row) in got.iter().enumerate() {
        let h = h as i64;
        // Sum of h*100 + (0..12): 12*h*100 + 66.
        assert_eq!(
            row,
            &vec![
                Value::Timestamp(b0 + h * HOUR),
                Value::I64(1200 * h + 66),
                Value::I64(12)
            ]
        );
    }
    let after = s.db().table("m").unwrap().stats().snapshot();
    assert_eq!(after.rollup_hits, before.rollup_hits + 1);
    assert_eq!(
        after.pushdown_scans, before.pushdown_scans,
        "covered window must not start a base-table scan"
    );
    assert_eq!(
        after.rows_materialized, before.rows_materialized,
        "covered window must not materialize base rows"
    );
}

#[test]
fn stale_cache_is_never_served_after_overlapping_insert() {
    let (s, _, _) = open();
    let b0 = seed(&s);
    let q = format!(
        "SELECT TIME_BUCKET(ts, INTERVAL '1h'), SUM(v) FROM m \
         WHERE ts >= {b0} AND ts < {} GROUP BY TIME_BUCKET(ts, INTERVAL '1h')",
        b0 + 7 * HOUR
    );
    // Prime and hit the cache.
    let first = rows(s.execute(&q).unwrap());
    assert_eq!(first[2][1], Value::I64(2466));
    let primed = s.db().table("m").unwrap().stats().snapshot();
    let again = rows(s.execute(&q).unwrap());
    assert_eq!(first, again);
    let hit = s.db().table("m").unwrap().stats().snapshot();
    assert_eq!(hit.result_cache_hits, primed.result_cache_hits + 1);
    // An insert overlapping the cached bounding box invalidates it:
    // the very next identical query recomputes and sees the row.
    s.execute(&format!(
        "INSERT INTO m VALUES (1, {}, 100000, 'fresh')",
        START + 2 * HOUR + 30 * 60_000_000
    ))
    .unwrap();
    let after = rows(s.execute(&q).unwrap());
    assert_eq!(after[2][1], Value::I64(102466), "stale cached sum served");
    let recomputed = s.db().table("m").unwrap().stats().snapshot();
    assert_eq!(recomputed.result_cache_hits, hit.result_cache_hits);
}

#[test]
fn maintenance_folds_new_tablets_and_serving_tracks_the_watermark() {
    let (s, _, clock) = open();
    let b0 = seed(&s);
    let q = format!(
        "SELECT TIME_BUCKET(ts, INTERVAL '1h'), COUNT(*) FROM m \
         WHERE ts >= {b0} AND ts < {} GROUP BY TIME_BUCKET(ts, INTERVAL '1h')",
        b0 + 8 * HOUR
    );
    // A seventh hour arrives in memory: served by the base tail.
    s.execute(&format!(
        "INSERT INTO m VALUES (1, {}, 600, 'user0')",
        START + 6 * HOUR
    ))
    .unwrap();
    let got = rows(s.execute(&q).unwrap());
    assert_eq!(got.len(), 7);
    assert_eq!(got[6][1], Value::I64(1));
    // Flush + maintain folds the new tablet; the same aggregate (asked
    // with a no-op LIMIT so the result cache cannot answer it) now
    // comes entirely from the rollup.
    s.db().flush_all().unwrap();
    let folds_before = s.db().table("m").unwrap().stats().snapshot().rollup_folds;
    clock.advance(HOUR);
    s.db().maintain().unwrap();
    let before = s.db().table("m").unwrap().stats().snapshot();
    assert!(
        before.rollup_folds > folds_before,
        "maintenance never folded the flushed tablet"
    );
    let got = rows(s.execute(&format!("{q} LIMIT 100")).unwrap());
    assert_eq!(got.len(), 7);
    assert_eq!(got[6][1], Value::I64(1));
    let after = s.db().table("m").unwrap().stats().snapshot();
    assert_eq!(after.rollup_hits, before.rollup_hits + 1);
    assert_eq!(
        after.pushdown_scans, before.pushdown_scans,
        "fully folded window must not scan the base table"
    );
}

#[test]
fn rollup_and_cache_survive_reopen() {
    let (s, vfs, clock) = open();
    let b0 = seed(&s);
    let q = format!(
        "SELECT TIME_BUCKET(ts, INTERVAL '1h'), SUM(v), COUNT(DISTINCT u) FROM m \
         WHERE ts >= {b0} AND ts < {} GROUP BY TIME_BUCKET(ts, INTERVAL '1h')",
        b0 + 7 * HOUR
    );
    let before = rows(s.execute(&q).unwrap());
    drop(s);

    // Reboot: the spec file is rediscovered, serving keeps working, and
    // the (empty again) result cache repopulates.
    vfs.crash();
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    assert_eq!(db.list_rollups().len(), 1, "rollup spec lost on reopen");
    let s = Session::new(db.clone());
    let hits0 = db.table("m").unwrap().stats().snapshot().rollup_hits;
    let after = rows(s.execute(&q).unwrap());
    assert_eq!(before, after, "reopened rollup changed the answer");
    assert_eq!(
        db.table("m").unwrap().stats().snapshot().rollup_hits,
        hits0 + 1
    );
}

#[test]
fn rollup_ddl_over_the_wire() {
    let clock = SimClock::new(START);
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(clock.clone()),
        Options::small_for_tests(),
    )
    .unwrap();
    let s = Session::new(db.clone());
    s.execute(
        "CREATE TABLE m (sensor INT64, ts TIMESTAMP, v INT64, \
         PRIMARY KEY (sensor, ts))",
    )
    .unwrap();
    s.execute(&format!("INSERT INTO m VALUES (1, {START}, 5)"))
        .unwrap();
    let req = Request::CreateRollup {
        name: "m_1h".into(),
        base: "m".into(),
        period: HOUR,
        value_cols: vec!["v".into()],
        distinct_cols: vec![],
    };
    // The request survives its wire encoding and creates a served
    // rollup.
    let req = Request::decode(&req.encode()).unwrap();
    assert_eq!(handle_request(&db, req), Response::Ok);
    let got = rows(
        s.execute("SELECT sensor, SUM(v), COUNT(*) FROM m GROUP BY sensor")
            .unwrap(),
    );
    assert_eq!(got, vec![vec![Value::I64(1), Value::I64(5), Value::I64(1)]]);
    assert!(db.table("m").unwrap().stats().snapshot().rollup_hits >= 1);
    assert_eq!(
        handle_request(
            &db,
            Request::DropRollup {
                name: "m_1h".into()
            }
        ),
        Response::Ok
    );
    assert!(db.table("m_1h").is_err());
}
