//! The deterministic node-kill harness (§2.2, §4): boot an in-process
//! fleet of 8 nodes (4 shards × primary + warm spare) over simulated
//! disks, drive the same scripted ingest/archive/repair workload through
//! [`FleetClient`], and kill one node per trial at a chosen disk-op
//! index — including indices *inside* an archive-sync window, where the
//! spare holds a half-copied replica. After every trial the oracle
//! recomputes ground truth and checks the fleet's whole contract at
//! once:
//!
//! 1. every acknowledged insert is readable after failover,
//! 2. no insert is duplicated by the client's idempotent re-send,
//! 3. the scatter-gather result equals a single-node reference run.
//!
//! Tier-1 samples ≥ 100 kill points; `LT_FULL_SWEEP=1` sweeps every op
//! on every node. A failing trial is replayed exactly with
//! `LT_KILL_NODE=<id> LT_KILL_OP=<k>`.

use littletable::fleet::{FleetClient, FleetError, FleetSim};
use littletable::proto::{Request, Response};
use littletable::server::handle_request;
use littletable::vfs::{Micros, SimClock, SimVfs};
use littletable::workload::FleetLoad;
use littletable::{Db, Options, Query, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

const SHARDS: u32 = 4;
const NODES: u64 = SHARDS as u64 * 2;
const SEED: u64 = 0xF1EE7;
const DEVICES: u32 = 32;
const START_US: Micros = 1_700_000_000_000_000;
const TS_BASE: i64 = 1_700_000_000_000_000;
const ROWS_PER_ROUND: usize = 25;
const ROUNDS: usize = 6;
const TOTAL: u64 = (ROWS_PER_ROUND * ROUNDS) as u64;
const TABLE: &str = "telemetry";

/// A small server row limit forces `more_available` continuations, so
/// every trial also exercises the scatter-gather merge across pages.
fn fleet_opts() -> Options {
    Options {
        server_row_limit: 16,
        ..Options::small_for_tests()
    }
}

fn full_sweep() -> bool {
    std::env::var("LT_FULL_SWEEP")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Sorts rows by `(device, ts)` — the schema's primary-key order, which
/// is also the order the fleet merge and the reference server emit.
fn sort_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by_key(|r| match (&r[0], &r[1]) {
        (Value::I64(d), Value::Timestamp(t)) => (*d, *t),
        _ => panic!("unexpected row shape: {r:?}"),
    });
    rows
}

/// Everything one scripted run produces: the final scatter-gather
/// result plus the op-count geometry the kill-point planner needs.
struct Trial {
    rows: Vec<Vec<Value>>,
    /// Per node: op count right after fleet boot (a kill below this can
    /// never fire — the plan is installed post-boot).
    boot_ops: Vec<u64>,
    /// Per node: op count after the final query.
    final_ops: Vec<u64>,
    /// Per node: `(pre, post)` op windows around each archive tick that
    /// moved its disk — kill points in here land mid-archive-sync.
    windows: Vec<Vec<(u64, u64)>>,
    /// Whether the installed kill plan actually fired.
    fired: bool,
    failovers: u64,
}

/// The scripted workload, identical on every run up to the injected
/// kill: insert a batch per round, archive every other round, then
/// repair — client-driven failover for dead mapped primaries (which
/// replays the acked-but-unarchived tail), restart of every dead node
/// in its map role, and a rollback-aware re-sync for the shards that
/// took a restart. Ends with a fleet-wide scatter-gather of everything.
fn run_script(kill: Option<(u64, u64)>) -> Result<Trial, FleetError> {
    let mut sim = FleetSim::new(SHARDS, START_US, fleet_opts())?;
    let boot_ops: Vec<u64> = (0..NODES).map(|id| sim.node(id).op_count()).collect();
    if let Some((node, op)) = kill {
        sim.kill_at(node, op);
    }
    let mut client = FleetClient::new(SHARDS);
    client.create_table(&mut sim, TABLE, FleetLoad::schema(), None)?;
    let mut load = FleetLoad::new(SEED, DEVICES, TS_BASE);
    let mut windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); NODES as usize];
    for round in 0..ROUNDS {
        client.insert(&mut sim, TABLE, load.batch(ROWS_PER_ROUND))?;
        if round % 2 == 1 {
            let pre: Vec<u64> = (0..NODES).map(|id| sim.node(id).op_count()).collect();
            client.archive(&mut sim);
            for id in 0..NODES as usize {
                let post = sim.node(id as u64).op_count();
                if post > pre[id] {
                    windows[id].push((pre[id], post));
                }
            }
        }
        // Repair order matters: fail over through the client *before*
        // restarting, so the promoted spare receives the replay; a
        // restart-as-primary would silently drop the dead memtable.
        client.repair(&mut sim)?;
        let mut restarted = Vec::new();
        for id in 0..NODES {
            if sim.node_down(id) {
                sim.restart_node(id)?;
                restarted.push(sim.node(id).shard());
            }
        }
        for shard in restarted {
            sim.resync_spare(shard)?;
        }
    }
    let rows = client.query(&mut sim, TABLE, &Query::all())?;
    let final_ops = (0..NODES).map(|id| sim.node(id).op_count()).collect();
    let fired = match kill {
        Some((node, _)) => sim.node(node).vfs().faults_injected() > 0,
        None => true,
    };
    Ok(Trial {
        rows,
        boot_ops,
        final_ops,
        windows,
        fired,
        failovers: sim.failovers(),
    })
}

/// A fault-free run of the same rows on one ordinary server — the
/// ground truth the fleet's scatter-gather must be indistinguishable
/// from.
fn single_node_reference() -> Vec<Vec<Value>> {
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(SimClock::new(START_US)),
        Options::small_for_tests(),
    )
    .expect("reference open");
    let mut load = FleetLoad::new(SEED, DEVICES, TS_BASE);
    match handle_request(
        &db,
        Request::CreateTable {
            table: TABLE.to_string(),
            schema: FleetLoad::schema(),
            ttl: None,
        },
    ) {
        Response::Ok => {}
        r => panic!("reference create failed: {r:?}"),
    }
    let rows = load
        .batch(TOTAL as usize)
        .into_iter()
        .map(|r| r.into_iter().map(Some).collect())
        .collect();
    match handle_request(
        &db,
        Request::Insert {
            table: TABLE.to_string(),
            rows,
        },
    ) {
        Response::InsertResult { inserted, .. } => assert_eq!(inserted, TOTAL),
        r => panic!("reference insert failed: {r:?}"),
    }
    match handle_request(
        &db,
        Request::Query {
            table: TABLE.to_string(),
            query: Query::all(),
        },
    ) {
        Response::Rows {
            rows,
            more_available,
        } => {
            assert!(!more_available, "reference run must fit one page");
            rows
        }
        r => panic!("reference query failed: {r:?}"),
    }
}

/// Kill points for one node: evenly spaced across its whole op range,
/// plus two inside each archive-sync window. Returns `(op, in_window)`.
fn kill_points(baseline: &Trial, id: u64) -> Vec<(u64, bool)> {
    let lo = baseline.boot_ops[id as usize];
    let hi = baseline.final_ops[id as usize];
    if hi <= lo {
        return Vec::new();
    }
    let in_window = |op: u64| {
        baseline.windows[id as usize]
            .iter()
            .any(|&(pre, post)| op >= pre && op < post)
    };
    let mut points: BTreeMap<u64, bool> = BTreeMap::new();
    if full_sweep() {
        for op in lo..hi {
            points.insert(op, in_window(op));
        }
    } else {
        let span = hi - lo;
        for j in 0..8 {
            let op = lo + span * j / 8;
            points.insert(op, in_window(op));
        }
        for &(pre, post) in &baseline.windows[id as usize] {
            let w = post - pre;
            points.insert(pre + w / 3, true);
            points.insert(pre + 2 * w / 3, true);
        }
    }
    points.into_iter().collect()
}

/// The oracle, with replay instructions baked into every failure.
fn check_trial(
    node: u64,
    op: u64,
    trial: &Trial,
    expected: &[Vec<Value>],
    reference: &[Vec<Value>],
) {
    let replay = format!("replay with: LT_KILL_NODE={node} LT_KILL_OP={op} cargo test --test fleet_sim node_kill_sweep");
    assert!(
        trial.fired,
        "kill point never fired (node {node}, op {op}) — stale baseline? {replay}"
    );
    if trial.rows != expected {
        let diff = trial
            .rows
            .iter()
            .zip(expected.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| trial.rows.len().min(expected.len()));
        panic!(
            "acked-insert oracle violated after killing node {node} at op {op} \
             ({} failovers): got {} rows, expected {}, first divergence at row {diff}; {replay}",
            trial.failovers,
            trial.rows.len(),
            expected.len(),
        );
    }
    assert_eq!(
        trial.rows, reference,
        "fleet scatter-gather diverged from the single-node reference \
         after killing node {node} at op {op}; {replay}"
    );
}

#[test]
fn node_kill_sweep_preserves_every_acked_insert() {
    // Ground truth first: the fault-free script must already satisfy the
    // oracle, otherwise kill trials would blame crashes for a bug the
    // fleet has anyway.
    let baseline = run_script(None).expect("fault-free fleet run failed");
    let expected = sort_rows(FleetLoad::new(SEED, DEVICES, TS_BASE).expected(TOTAL));
    assert_eq!(
        baseline.rows, expected,
        "fault-free fleet run fails the oracle"
    );
    let reference = single_node_reference();
    assert_eq!(
        baseline.rows, reference,
        "fault-free fleet and single-node reference disagree"
    );
    assert!(
        baseline.windows.iter().all(|w| !w.is_empty()),
        "some node took no archive I/O — mid-sync kill coverage is gone: {:?}",
        baseline.windows
    );

    // Exact single-trial replay for debugging a sweep failure.
    if let (Some(node), Some(op)) = (env_u64("LT_KILL_NODE"), env_u64("LT_KILL_OP")) {
        let trial = run_script(Some((node, op)))
            .unwrap_or_else(|e| panic!("fleet errored after killing node {node} at op {op}: {e}"));
        check_trial(node, op, &trial, &expected, &reference);
        return;
    }

    let mut trials = 0u64;
    let mut mid_archive = 0u64;
    let mut failovers = 0u64;
    for id in 0..NODES {
        for (op, in_window) in kill_points(&baseline, id) {
            let trial = run_script(Some((id, op))).unwrap_or_else(|e| {
                panic!(
                    "fleet errored after killing node {id} at op {op}: {e}; \
                     replay with: LT_KILL_NODE={id} LT_KILL_OP={op} \
                     cargo test --test fleet_sim node_kill_sweep"
                )
            });
            check_trial(id, op, &trial, &expected, &reference);
            trials += 1;
            if in_window {
                mid_archive += 1;
            }
            failovers += trial.failovers;
        }
    }
    assert!(trials >= 100, "kill sweep ran only {trials} trials");
    assert!(
        mid_archive >= 16,
        "only {mid_archive} mid-archive-sync kill points"
    );
    assert!(
        failovers > 0,
        "no trial ever failed over — the sweep is not reaching the failover path"
    );
}

#[test]
fn double_failover_then_failback_keeps_every_ack() {
    let mut sim = FleetSim::new(2, START_US, fleet_opts()).expect("boot");
    let mut client = FleetClient::new(2);
    client
        .create_table(&mut sim, TABLE, FleetLoad::schema(), None)
        .expect("create");
    let mut load = FleetLoad::new(SEED ^ 1, DEVICES, TS_BASE);

    // 40 rows archived (replicated), 20 more acked but memtable-only.
    client
        .insert(&mut sim, TABLE, load.batch(40))
        .expect("insert");
    assert!(client.archive(&mut sim).iter().all(|o| o.is_clean()));
    client
        .insert(&mut sim, TABLE, load.batch(20))
        .expect("insert");

    // First failover: shard 0's boot primary dies holding that memtable.
    let p0 = sim.map().route(0).primary;
    sim.kill_now(p0);
    client
        .insert(&mut sim, TABLE, load.batch(20))
        .expect("insert across first failover");
    assert_eq!(sim.failovers(), 1, "first kill did not fail over");
    sim.restart_node(p0).expect("restart old primary");
    sim.resync_spare(0).expect("resync restored node");

    // Second failover: the promoted node dies too; service returns to
    // the restored original, which must now hold every acked row.
    let p1 = sim.map().route(0).primary;
    sim.kill_now(p1);
    client
        .insert(&mut sim, TABLE, load.batch(20))
        .expect("insert across second failover");
    assert_eq!(sim.failovers(), 2, "second kill did not fail over");
    assert_eq!(
        sim.map().route(0).primary,
        p0,
        "second failover must land on the restored node"
    );
    sim.restart_node(p1).expect("restart second casualty");
    sim.resync_spare(0).expect("resync second casualty");

    // Failback: roles return to the boot layout at a fresh epoch, and
    // ingest continues without the client noticing.
    let epoch = sim.failback(0).expect("failback");
    assert_eq!(epoch, 3, "two failovers + failback = epoch 3");
    assert_eq!(sim.map().route(0).primary, p1);
    client
        .insert(&mut sim, TABLE, load.batch(20))
        .expect("insert after failback");

    let got = client.query(&mut sim, TABLE, &Query::all()).expect("query");
    let expected = sort_rows(FleetLoad::new(SEED ^ 1, DEVICES, TS_BASE).expected(120));
    assert_eq!(
        got, expected,
        "acked rows lost or duplicated across double failover + failback"
    );
}
