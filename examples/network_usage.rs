//! The paper's first application (§4.1): UsageGrabber polls device byte
//! counters into LittleTable, a rollup aggregator compresses the per-
//! device table into per-network buckets, and Dashboard-style reads render
//! graphs from either — including a LittleTable crash in the middle to
//! show how the grabber's threshold-T recovery hides it.
//!
//! Run with: `cargo run --example network_usage`

use littletable::apps::aggregate::{rollup_schema, UsageRollup};
use littletable::apps::device::{Fleet, MINUTE};
use littletable::apps::usage::{bytes_per_device, usage_schema, UsageGrabber};
use littletable::vfs::{Clock, SimClock, SimVfs};
use littletable::{Db, Options, Query};
use std::sync::Arc;

fn main() -> littletable::Result<()> {
    // Simulated time so hours pass in milliseconds; the same code runs on
    // the wall clock with Db::open_local + SystemClock.
    let epoch = 1_700_000_000_000_000;
    let clock = SimClock::new(epoch);
    let vfs = SimVfs::instant();
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::default(),
    )?;

    let usage = db.create_table("usage", usage_schema(), None)?;
    let _rollup = db.create_table("usage_rollup", rollup_schema(), None)?;
    let fleet = Fleet::new(epoch, 2, 5, 42);
    let mut grabber = UsageGrabber::new(usage.clone(), 3600 * 1_000_000);

    // Two hours of per-minute polling.
    println!(
        "polling {} devices every minute for 2 hours...",
        fleet.devices().len()
    );
    for _ in 0..120 {
        grabber.poll_all(&fleet, clock.now_micros())?;
        clock.advance(MINUTE);
        db.maintain()?;
    }
    println!(
        "usage table: {} rows",
        usage.query_all(&Query::all())?.len()
    );

    // Crash! Unflushed rows vanish; the grabber's cache is gone too.
    vfs.crash();
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::default(),
    )?;
    let usage = db.table("usage")?;
    let rollup_t = db.table("usage_rollup")?;
    let surviving = usage.query_all(&Query::all())?.len();
    println!("after crash + reopen: {surviving} rows survived (prefix durability)");

    // Recovery: rebuild the cache from the table (one bounded query) and
    // resume polling — devices replay their counters, so the gap closes.
    let mut grabber = UsageGrabber::new(usage.clone(), 3600 * 1_000_000);
    grabber.rebuild_cache(clock.now_micros())?;
    println!("grabber cache rebuilt for {} devices", grabber.cache_len());
    for _ in 0..30 {
        grabber.poll_all(&fleet, clock.now_micros())?;
        clock.advance(MINUTE);
        db.maintain()?;
    }

    // Roll up per-device minutes into per-network 10-minute buckets.
    let mut agg = UsageRollup::new(usage.clone(), rollup_t.clone(), 10 * MINUTE, 0);
    agg.recover(clock.now_micros())?;
    let buckets = agg.run_once(clock.now_micros())?;
    println!(
        "rollup wrote {buckets} buckets; {} rollup rows vs {} source rows",
        rollup_t.query_all(&Query::all())?.len(),
        usage.query_all(&Query::all())?.len(),
    );

    // Dashboard render: total bytes per device on network 1, last hour.
    let now = clock.now_micros();
    println!("network 1, last hour, bytes per device:");
    for (device, bytes) in bytes_per_device(&usage, 1, now - 60 * MINUTE, now)? {
        println!("  device {device}: {:.1} MB", bytes / 1e6);
    }

    let snap = usage.stats().snapshot();
    println!(
        "table stats: {} inserted, {} scanned / {} returned (ratio {:.2})",
        snap.rows_inserted,
        snap.rows_scanned,
        snap.rows_returned,
        snap.scan_ratio()
    );
    Ok(())
}
