//! The paper's third application (§4.3): video motion search. Cameras
//! encode motion per coarse cell into 32-bit words; MotionGrabber pulls
//! them into LittleTable; users select a rectangle of the frame and
//! search backwards in time, or render heatmaps of motion.
//!
//! Run with: `cargo run --example motion_search`

use littletable::apps::device::Fleet;
use littletable::apps::motion::{
    motion_heatmap, motion_schema, search_motion, CellRect, MotionGrabber,
};
use littletable::vfs::{Clock, SimClock, SimVfs};
use littletable::{Db, Options};
use std::sync::Arc;

fn main() -> littletable::Result<()> {
    let epoch = 1_700_000_000_000_000;
    let week = 7 * 24 * 3600 * 1_000_000i64;
    let clock = SimClock::new(epoch + week);
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(clock.clone()),
        Options::default(),
    )?;
    let table = db.create_table("motion", motion_schema(), None)?;
    // Two security cameras; pull a week of motion events, as in the
    // paper's sizing (51,000 rows/camera/week on average in production).
    let fleet = Fleet::new(epoch, 1, 2, 99);
    let mut grabber = MotionGrabber::new(table.clone());
    // Poll in day-sized chunks, as a daemon catching up would.
    let day = 24 * 3600 * 1_000_000i64;
    let mut polled = 0;
    for d in (0..7).rev() {
        clock.set((epoch + week - d * day).max(clock.now_micros()));
        polled += grabber.poll_all(&fleet, clock.now_micros(), day)?;
        db.maintain()?;
    }
    let cam = fleet.devices()[0];
    println!(
        "stored {polled} motion rows for {} cameras",
        fleet.devices().len()
    );

    // A security incident near the door (cells rows 2-4, cols 3-5):
    // search backwards for the last 10 motion events there.
    let rect = CellRect {
        row_min: 2,
        row_max: 4,
        col_min: 3,
        col_max: 5,
    };
    let hits = search_motion(&table, cam, rect, clock.now_micros(), 10)?;
    println!(
        "last {} motion events in the doorway rectangle:",
        hits.len()
    );
    for (ts, duration_ms) in &hits {
        let ago = (clock.now_micros() - ts) / 1_000_000;
        println!("  {ago:>7}s ago, {duration_ms} ms of motion");
    }

    // Heatmap of the whole week.
    let grid = motion_heatmap(&table, cam, epoch, clock.now_micros())?;
    println!("week heatmap (motion seconds per coarse cell):");
    for row in grid.iter().take(9) {
        let cells: Vec<String> = row
            .iter()
            .take(10)
            .map(|&ms| format!("{:>5}", ms / 1000))
            .collect();
        println!("  {}", cells.join(" "));
    }
    let snap = table.stats().snapshot();
    println!(
        "stats: {} rows inserted, scan ratio {:.2}",
        snap.rows_inserted,
        snap.scan_ratio()
    );
    Ok(())
}
