//! The paper's second application (§4.2): EventsGrabber pulls device
//! event logs (DHCP leases, wireless associations, 802.1X) into
//! LittleTable using monotonically increasing per-device event ids, and
//! recovers from a LittleTable crash by re-fetching — duplicate keys make
//! the re-insertion idempotent.
//!
//! Run with: `cargo run --example event_logs`

use littletable::apps::device::Fleet;
use littletable::apps::events::{browse_events, events_schema, sentinel_schema, EventsGrabber};
use littletable::vfs::{Clock, SimClock, SimVfs};
use littletable::{Db, Options, Query};
use std::sync::Arc;

fn main() -> littletable::Result<()> {
    let epoch = 1_700_000_000_000_000;
    let clock = SimClock::new(epoch + 3600 * 1_000_000);
    let vfs = SimVfs::instant();
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::default(),
    )?;
    let events = db.create_table("events", events_schema(), None)?;
    let sentinels = db.create_table("event_sentinels", sentinel_schema(), None)?;
    let fleet = Fleet::new(epoch, 2, 4, 11);

    let mut grabber = EventsGrabber::new(events.clone(), Some(sentinels.clone()));
    let n = grabber.poll_all(&fleet, clock.now_micros())?;
    println!("first poll: {n} rows (events + sentinels)");

    // An hour passes; more events accumulate on the devices.
    clock.advance(3600 * 1_000_000);
    let n = grabber.poll_all(&fleet, clock.now_micros())?;
    println!("second poll: {n} new rows");
    db.flush_all()?;

    // More events arrive but the next poll's rows die in a crash.
    clock.advance(1800 * 1_000_000);
    grabber.poll_all(&fleet, clock.now_micros())?;
    let before = events.query_all(&Query::all())?.len();
    vfs.crash();
    let db = Db::open(
        Arc::new(vfs.clone()),
        Arc::new(clock.clone()),
        Options::default(),
    )?;
    let events = db.table("events")?;
    let sentinels = db.table("event_sentinels")?;
    let after = events.query_all(&Query::all())?.len();
    println!("crash: {before} rows -> {after} rows survived");

    // Recovery: recent window + sentinels + latest-for-prefix, then
    // re-poll. The devices replay; uniqueness drops what survived.
    let mut grabber = EventsGrabber::new(events.clone(), Some(sentinels));
    grabber.rebuild_cache(&fleet, clock.now_micros(), 3600 * 1_000_000)?;
    println!("cache rebuilt for {} devices", grabber.cache_len());
    grabber.poll_all(&fleet, clock.now_micros())?;
    let recovered = events.query_all(&Query::all())?.len();
    println!(
        "after re-poll: {recovered} rows — the devices replayed what the \
         crash lost ({} re-inserted rows were dropped as duplicate keys)",
        events.stats().snapshot().duplicate_keys
    );

    // Dashboard: browse one device's recent events, newest first.
    let dev = fleet.devices()[0];
    println!(
        "recent events for network {} device {}:",
        dev.network, dev.device
    );
    for (ts, kind, detail) in browse_events(
        &events,
        dev,
        clock.now_micros() - 1800 * 1_000_000,
        clock.now_micros(),
        5,
    )? {
        println!("  [{ts}] {kind}: {detail}");
    }
    Ok(())
}
