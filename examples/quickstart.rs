//! Quickstart: create a table, insert time-series rows, and query the
//! two-dimensional bounding box — via both the Rust API and SQL.
//!
//! Run with: `cargo run --example quickstart`

use littletable::vfs::{Clock, SystemClock};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Session, SqlOutput, Value};

fn main() -> littletable::Result<()> {
    // A real on-disk database in a temp directory.
    let dir = std::env::temp_dir().join(format!("littletable-quickstart-{}", std::process::id()));
    let db = Db::open_local(&dir, Options::default())?;
    println!("database at {}", dir.display());

    // --- Rust API ------------------------------------------------------
    // A table clustered by (network, device, ts): any network's or
    // device's rows over any time range are contiguous on disk.
    let schema = Schema::new(
        vec![
            ColumnDef::new("network", ColumnType::I64),
            ColumnDef::new("device", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("bytes", ColumnType::I64),
        ],
        &["network", "device", "ts"],
    )?;
    let ttl = Some(390 * 24 * 3600 * 1_000_000); // 390 days, like Dashboard
    let table = db.create_table("usage", schema, ttl)?;

    let now = SystemClock.now_micros();
    let minute = 60 * 1_000_000i64;
    let mut rows = Vec::new();
    for m in 0..60i64 {
        for device in 1..=3i64 {
            rows.push(vec![
                Value::I64(1),
                Value::I64(device),
                Value::Timestamp(now - (60 - m) * minute),
                Value::I64(1000 * device + m),
            ]);
        }
    }
    let report = table.insert(rows)?;
    println!(
        "inserted {} rows ({} duplicates)",
        report.inserted, report.duplicates
    );

    // One device, the last 10 minutes — a single contiguous rectangle.
    let q = Query::all()
        .with_prefix(vec![Value::I64(1), Value::I64(2)])
        .with_ts_range(now - 10 * minute, now);
    let rows = table.query_all(&q)?;
    println!("device 2, last 10 min: {} rows", rows.len());

    // The most recent row for a key prefix (§3.4.5).
    let latest = table.latest(&[Value::I64(1), Value::I64(3)])?.unwrap();
    println!("latest row for device 3: bytes = {}", latest.values[3]);

    // --- SQL -----------------------------------------------------------
    let session = Session::new(db.clone());
    if let SqlOutput::Rows { columns, rows } = session.execute(
        "SELECT device, SUM(bytes), COUNT(*) FROM usage \
         WHERE network = 1 GROUP BY device",
    )? {
        println!("{}", columns.join(" | "));
        for row in rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("{}", cells.join(" | "));
        }
    }

    // Flush and reopen: everything durable survives.
    db.flush_all()?;
    db.shutdown();
    drop(db);
    let db2 = Db::open_local(&dir, Options::default())?;
    let n = db2.table("usage")?.query_all(&Query::all())?.len();
    println!("after reopen: {n} rows");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
