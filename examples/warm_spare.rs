//! Continuous archival and failover (§2.2): a primary shard replicates to
//! a warm spare with the rsync-until-quiescent loop, the primary "fails",
//! and the spare takes over serving queries.
//!
//! Run with: `cargo run --example warm_spare`

use littletable::core::archive::{sync_once, sync_until_quiescent};
use littletable::vfs::{Clock, SimClock, SimVfs};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Value};
use std::sync::Arc;

fn main() -> littletable::Result<()> {
    let clock = SimClock::new(1_700_000_000_000_000);
    let primary_vfs = SimVfs::instant();
    let spare_vfs = SimVfs::instant();
    let primary = Db::open(
        Arc::new(primary_vfs.clone()),
        Arc::new(clock.clone()),
        Options::default(),
    )?;
    let schema = Schema::new(
        vec![
            ColumnDef::new("sensor", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::F64),
        ],
        &["sensor", "ts"],
    )?;
    let table = primary.create_table("metrics", schema, None)?;

    // The shard takes writes while the archiver runs every "10 minutes".
    for round in 0..3 {
        let now = clock.now_micros();
        let rows: Vec<Vec<Value>> = (0..5000)
            .map(|i| {
                vec![
                    Value::I64(i % 50),
                    Value::Timestamp(now + i),
                    Value::F64(i as f64),
                ]
            })
            .collect();
        table.insert(rows)?;
        primary.flush_all()?;
        clock.advance(600 * 1_000_000);
        let reports = sync_until_quiescent(&primary_vfs, &spare_vfs, 10)?;
        let copied: u64 = reports.iter().map(|r| r.files_copied).sum();
        println!(
            "archival round {round}: {copied} files copied over {} passes, quiescent = {}",
            reports.len(),
            reports.last().map(|r| r.quiescent()).unwrap_or(false)
        );
    }

    // Disaster strikes the primary's datacenter. Operations fail over:
    // the spare opens the replicated directory and serves.
    drop(primary);
    let spare = Db::open(
        Arc::new(spare_vfs.clone()),
        Arc::new(clock.clone()),
        Options::default(),
    )?;
    let served = spare.table("metrics")?.query_all(&Query::all())?;
    println!("spare serving {} rows after failover", served.len());

    // The spare becomes the new primary; replication reverses direction
    // toward a fresh spare. (Same code, swapped arguments.)
    let new_spare = SimVfs::instant();
    let r = sync_once(&spare_vfs, &new_spare)?;
    println!(
        "reseeded a new spare: {} files, {:.1} MB",
        r.files_copied,
        r.bytes_copied as f64 / 1e6
    );
    Ok(())
}
