//! A miniature Dashboard shard over TCP: the LittleTable server fronting
//! an engine, a client adaptor connecting like the paper's SQLite
//! virtual-table layer (§3.1), batching inserts and continuing truncated
//! queries transparently.
//!
//! Run with: `cargo run --example shard`

use littletable::client::{BatchInserter, Client};
use littletable::server::Server;
use littletable::vfs::{SimClock, SimVfs};
use littletable::{ColumnDef, ColumnType, Db, Options, Query, Schema, Value};
use std::sync::Arc;

fn main() {
    // Server side: a LittleTable engine with a deliberately small row cap
    // per response, so the client's continuation logic is visible.
    let opts = Options {
        server_row_limit: 100,
        ..Options::default()
    };
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(SimClock::new(1_700_000_000_000_000)),
        opts,
    )
    .unwrap();
    let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
    server.start().unwrap();
    let addr = server.local_addr();
    println!("littletable server on {addr}");

    // Client side: persistent connection, schema cache, batching.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let schema = Schema::new(
        vec![
            ColumnDef::new("sensor", ColumnType::Str),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("celsius", ColumnType::F64),
        ],
        &["sensor", "ts"],
    )
    .unwrap();
    client.create_table("temps", schema, None).unwrap();

    let mut batcher = BatchInserter::new(&mut client, "temps", 512);
    for i in 0..1000i64 {
        batcher
            .push(vec![
                Value::Str(format!("sensor-{}", i % 4)),
                Value::Timestamp(1_700_000_000_000_000 + i),
                Value::F64(20.0 + (i % 10) as f64 / 10.0),
            ])
            .unwrap();
    }
    let (inserted, dups) = batcher.finish().unwrap();
    println!("batch inserter sent {inserted} rows ({dups} duplicates)");

    // 250 rows match but the server caps each response at 100; the client
    // re-submits from the last key automatically.
    let rows = client
        .query(
            "temps",
            &Query::all().with_prefix(vec![Value::Str("sensor-1".into())]),
        )
        .unwrap();
    println!("sensor-1 rows fetched across continuations: {}", rows.len());
    assert_eq!(rows.len(), 250);

    let latest = client
        .latest("temps", vec![Value::Str("sensor-3".into())])
        .unwrap()
        .unwrap();
    println!("latest sensor-3 reading: {}", latest[2]);

    server.shutdown();
}
